#![forbid(unsafe_code)]
//! Criterion benches live in `benches/`; see the crate description.
//!
//! The lib target is empty but still asserts the workspace's no-unsafe
//! discipline. The one sanctioned `unsafe` in this crate is the
//! `GlobalAlloc` tracking allocator in `benches/engine_throughput.rs`
//! (path-allowlisted by `speakup lint`'s `forbid-unsafe` rule).
