//! Criterion benches live in `benches/`; see the crate description.
