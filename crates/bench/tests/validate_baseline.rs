//! Audits the committed `BENCH_engine.json` baseline: every speedup
//! ratio in the document must re-derive from the raw fields next to it,
//! and the asserted engine properties (allocation-free steady state,
//! fully devirtualized dispatch) must hold in the committed numbers.
//!
//! The bench binary computes the ratios at measurement time; nothing
//! else rechecks them, and a hand-edited or merge-mangled baseline
//! would silently corrupt every later PR's "X× over the baseline"
//! claim. This test makes the committed document self-consistent by
//! construction.

use speakup_exp::json::Json;

fn load() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path).expect("read committed BENCH_engine.json");
    Json::parse(&text).expect("parse committed BENCH_engine.json")
}

fn f(doc: &Json, section: &str, field: &str) -> f64 {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing number {section}.{field}"))
}

fn workload<'a>(doc: &'a Json, name: &str) -> &'a Json {
    let Some(Json::Arr(ws)) = doc.get("workloads") else {
        panic!("missing workloads array");
    };
    ws.iter()
        .find(|w| w.get("name").and_then(Json::as_str) == Some(name))
        .unwrap_or_else(|| panic!("missing workload {name}"))
}

/// The bench emits ratios rounded to two decimals; re-derivation must
/// agree to within that rounding.
fn assert_ratio(claimed: f64, numer: f64, denom: f64, what: &str) {
    let derived = numer / denom;
    assert!(
        (claimed - derived).abs() <= 0.005 + 1e-9,
        "{what}: claims {claimed} but {numer}/{denom} = {derived:.4}"
    );
}

#[test]
fn committed_baseline_is_full_profile() {
    let doc = load();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("speakup-bench-engine/4"),
        "unexpected schema"
    );
    // Quick-profile output goes to BENCH_engine.quick.json; a quick run
    // masquerading as the baseline would make every ratio meaningless.
    assert_eq!(
        doc.get("quick"),
        Some(&Json::Bool(false)),
        "committed baseline must be a full-profile run"
    );
}

#[test]
fn end_to_end_speedups_rederive_from_raw_fields() {
    let doc = load();
    for wl in ["fig2", "fig7"] {
        let current = workload(&doc, wl)
            .get("events_per_sec")
            .and_then(Json::as_f64)
            .expect("workload events_per_sec");
        for section in [
            "pre_pr_heap_engine",
            "pr4_wheel_engine",
            "pr6_engine",
            "pr8_engine",
        ] {
            assert_ratio(
                f(&doc, section, &format!("{wl}_end_to_end_speedup")),
                current,
                f(&doc, section, &format!("{wl}_events_per_sec")),
                &format!("{section}.{wl}_end_to_end_speedup"),
            );
        }
    }
}

#[test]
fn replay_speedups_rederive_from_raw_fields() {
    let doc = load();
    let wheel = f(&doc, "hot_path_replay", "wheel_slab_events_per_sec");
    assert_ratio(
        f(&doc, "hot_path_replay", "speedup"),
        wheel,
        f(&doc, "hot_path_replay", "heap_btreemap_events_per_sec"),
        "hot_path_replay.speedup",
    );
    for section in ["pr4_wheel_engine", "pr6_engine", "pr8_engine"] {
        assert_ratio(
            f(&doc, section, "replay_speedup"),
            wheel,
            f(&doc, section, "hot_path_replay_events_per_sec"),
            &format!("{section}.replay_speedup"),
        );
    }
    assert_ratio(
        f(&doc, "pr8_engine", "fig2_xl_speedup"),
        f(&doc, "fig2_xl", "events_per_sec"),
        f(&doc, "pr8_engine", "fig2_xl_events_per_sec"),
        "pr8_engine.fig2_xl_speedup",
    );
}

/// Schema v3's crowd-scaling baseline must carry a real measurement:
/// the full 10^5 population, a positive event rate, a setup time, and
/// a peak RSS inside the ceiling recorded beside it (the committed
/// form of the bench's own assertion). The dispatch map must show the
/// cohort fast path doing the background work and the fully simulated
/// foreground still present — with nothing falling back to boxed
/// dispatch.
#[test]
fn fig2_xl_baseline_is_sound() {
    let doc = load();
    assert_eq!(
        f(&doc, "fig2_xl", "population") as u64,
        100_000,
        "fig2_xl population"
    );
    assert!(f(&doc, "fig2_xl", "events") > 0.0);
    assert!(f(&doc, "fig2_xl", "events_per_sec") > 0.0);
    assert!(f(&doc, "fig2_xl", "setup_secs") > 0.0);
    let rss = f(&doc, "fig2_xl", "peak_rss_bytes");
    let ceiling = f(&doc, "fig2_xl", "peak_rss_ceiling_bytes");
    assert!(
        rss > 0.0 && rss < ceiling,
        "fig2_xl peak RSS {rss} outside (0, {ceiling})"
    );
    let dispatch = doc
        .get("fig2_xl")
        .and_then(|s| s.get("dispatch"))
        .expect("fig2_xl dispatch map");
    let count = |v: &str| dispatch.get(v).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(count("boxed"), 0, "fig2_xl used the boxed fallback");
    assert!(count("cohort") > 0, "fig2_xl dispatched no cohort events");
    assert!(
        count("client") > 0,
        "fig2_xl dispatched no foreground-client events"
    );
}

/// Schema v4's replicated-thinner row must carry a real measurement and
/// must witness the acceptance claim: fig2 at `--thinners 4` leaves
/// shard 0 with under 10% of all events (the single-thinner engine
/// pinned ~25% there).
#[test]
fn replicated_thinner_baseline_is_sound() {
    let doc = load();
    assert_eq!(f(&doc, "replicated_thinners", "thinners") as u64, 4);
    assert!(f(&doc, "replicated_thinners", "shards") >= 4.0);
    assert!(f(&doc, "replicated_thinners", "events") > 0.0);
    assert!(f(&doc, "replicated_thinners", "events_per_sec") > 0.0);
    let share = f(&doc, "replicated_thinners", "shard0_event_share");
    assert!(
        (0.0..0.10).contains(&share),
        "committed shard-0 share {share} is not under the 10% acceptance bar"
    );
}

#[test]
fn steady_state_stays_allocation_free() {
    let doc = load();
    // Same bounds the bench asserts at measurement time (see
    // engine_throughput.rs for why the replay bound is one per
    // thousand events rather than literal zero).
    let allocs = f(&doc, "hot_path_replay", "steady_state_allocs");
    let pops = f(&doc, "hot_path_replay", "schedule_pops");
    assert!(
        allocs * 1_000.0 < pops / 2.0,
        "committed replay steady state allocates {allocs} times over {pops} pops"
    );
    for wl in ["fig2", "fig7"] {
        let rate = workload(&doc, wl)
            .get("steady_state_allocs_per_event")
            .and_then(Json::as_f64)
            .expect("workload steady_state_allocs_per_event");
        assert!(
            rate < 0.05,
            "{wl} steady state allocates {rate} times/event in the committed baseline"
        );
    }
}

#[test]
fn dispatch_is_fully_devirtualized() {
    let doc = load();
    for wl in ["fig2", "fig7"] {
        let dispatch = workload(&doc, wl).get("dispatch").expect("dispatch map");
        let boxed = dispatch
            .get("boxed")
            .and_then(Json::as_u64)
            .expect("boxed dispatch count");
        let concrete: u64 = ["client", "thinner", "web", "wget", "cohort"]
            .iter()
            .map(|v| dispatch.get(v).and_then(Json::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(
            boxed, 0,
            "{wl} dispatched {boxed} events through the boxed fallback"
        );
        assert!(concrete > 0, "{wl} recorded no concrete-variant dispatches");
    }
}
