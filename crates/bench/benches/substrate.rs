//! Substrate performance: how fast the simulator itself runs. Not a
//! paper figure, but it bounds how cheaply the figure binaries can run
//! their 600-second experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speakup_net::link::LinkConfig;
use speakup_net::packet::NodeId;
use speakup_net::sim::{flow_id, App, Ctx, Simulator};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::topology::TopologyBuilder;
use std::hint::black_box;

struct Blaster {
    dst: NodeId,
    bytes: u64,
}

impl App for Blaster {
    fn start(&mut self, ctx: &mut Ctx) {
        let f = ctx.open_default_flow(self.dst);
        ctx.send(f, self.bytes, 1);
    }
}

#[derive(Default)]
struct Sink;
impl App for Sink {}

fn bench_bulk_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_bulk_transfer");
    let bytes: u64 = 10 << 20; // 10 MB over a 100 Mbit/s link ≈ 0.9 sim-seconds
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(20);
    g.bench_function("one_flow_100mbps", |b| {
        b.iter(|| {
            let mut tb = TopologyBuilder::new();
            let a = tb.node();
            let z = tb.node();
            tb.duplex(
                a,
                z,
                LinkConfig::new(100_000_000, SimDuration::from_millis(5)),
            );
            let mut sim = Simulator::new(tb.build(), 1);
            sim.add_app(a, Box::new(Blaster { dst: z, bytes }));
            sim.add_app(z, Box::new(Sink));
            sim.run_until(SimTime::from_secs(30));
            let f = sim.world().flow(flow_id(a, 0));
            assert_eq!(f.acked_bytes(), bytes);
            black_box(f.stats.segments_sent)
        })
    });
    g.finish();
}

fn bench_many_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_fan_in");
    g.sample_size(10);
    for n in [10usize, 50] {
        g.bench_with_input(BenchmarkId::new("clients", n), &n, |b, &n| {
            b.iter(|| {
                let mut tb = TopologyBuilder::new();
                let hub = tb.node();
                let z = tb.node();
                tb.duplex(
                    hub,
                    z,
                    LinkConfig::new(1_000_000_000, SimDuration::from_micros(100)),
                );
                let clients: Vec<NodeId> = (0..n)
                    .map(|_| {
                        let cnode = tb.node();
                        tb.duplex(
                            cnode,
                            hub,
                            LinkConfig::new(2_000_000, SimDuration::from_micros(500)),
                        );
                        cnode
                    })
                    .collect();
                let mut sim = Simulator::new(tb.build(), 2);
                for &cn in &clients {
                    sim.add_app(
                        cn,
                        Box::new(Blaster {
                            dst: z,
                            bytes: 1 << 20,
                        }),
                    );
                }
                sim.add_app(z, Box::new(Sink));
                sim.run_until(SimTime::from_secs(10));
                black_box(sim.world().flow_count())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bulk_transfer, bench_many_flows);
criterion_main!(benches);
