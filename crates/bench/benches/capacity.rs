//! §7.1 / Table 1: thinner capacity.
//!
//! The paper measures its unoptimized C++ thinner sinking payment traffic
//! at 1451 Mbit/s with 1500-byte packets and 379 Mbit/s with 120-byte
//! packets (per-packet costs dominate). We benchmark the equivalent
//! in-process path — HTTP parsing of POST body chunks plus auction
//! payment accounting — with both frame sizes, reporting bytes/second so
//! the packet-size effect is directly visible. Absolute numbers differ
//! from a 2006 Xeon; the 1500 ≫ 120 shape must hold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speakup_core::thinner::{AuctionConfig, AuctionFrontEnd, FrontEnd};
use speakup_core::types::{ClientId, RequestId, RequestKey};
use speakup_net::time::SimTime;
use speakup_proto::http::{ParseEvent, RequestParser};
use speakup_proto::message::encode_payment_head;
use std::hint::black_box;

/// Sink `total` body bytes arriving in `frame`-sized reads through the
/// parser and into the front end's payment accounting.
fn sink_payment(total: u64, frame: usize) -> u64 {
    let mut fe = AuctionFrontEnd::new(AuctionConfig::default());
    let mut out = Vec::new();
    let t0 = SimTime::ZERO;
    // One busy request plus one contender whose channel we feed.
    fe.on_request(t0, RequestKey::new(ClientId(0), RequestId(0)), &mut out);
    let key = RequestKey::new(ClientId(1), RequestId(1));
    fe.on_request(t0, key, &mut out);
    out.clear();

    let mut parser = RequestParser::new();
    parser.push(&encode_payment_head(1, total));
    // Drain the head.
    while let Ok(Some(ev)) = parser.next_event() {
        if matches!(ev, ParseEvent::Head(_)) {
            break;
        }
    }
    let chunk = vec![0x5au8; frame];
    let mut sent = 0u64;
    let mut sunk = 0u64;
    while sent < total {
        let n = (total - sent).min(frame as u64);
        parser.push(&chunk[..n as usize]);
        sent += n;
        while let Ok(Some(ev)) = parser.next_event() {
            match ev {
                ParseEvent::BodyChunk(b) => {
                    fe.on_payment(t0, key, b, &mut out);
                    sunk += b;
                }
                _ => break,
            }
        }
    }
    assert_eq!(fe.bid_of(key), Some(total));
    sunk
}

fn thinner_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_thinner_capacity");
    let total: u64 = 8 << 20; // 8 MB of payment per iteration
    for frame in [1500usize, 120] {
        g.throughput(Throughput::Bytes(total));
        g.bench_with_input(
            BenchmarkId::new("sink_payment_bytes", frame),
            &frame,
            |b, &frame| b.iter(|| black_box(sink_payment(total, frame))),
        );
    }
    g.finish();
}

/// The per-auction decision cost with many concurrent contenders — the
/// thinner supports "tens or even hundreds of thousands of concurrent
/// clients" (§7.1); the auction scan is the per-request hot path.
fn auction_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_auction_scan");
    for contenders in [100u32, 1_000, 10_000, 100_000] {
        g.bench_with_input(
            BenchmarkId::new("hold_auction", contenders),
            &contenders,
            |b, &n| {
                let mut fe = AuctionFrontEnd::new(AuctionConfig::default());
                let mut out = Vec::new();
                let t0 = SimTime::ZERO;
                let busy = RequestKey::new(ClientId(0), RequestId(0));
                fe.on_request(t0, busy, &mut out);
                for i in 1..=n {
                    let k = RequestKey::new(ClientId(i), RequestId(i as u64));
                    fe.on_request(t0, k, &mut out);
                    fe.on_payment(t0, k, (i as u64) * 13 % 50_000, &mut out);
                }
                out.clear();
                // Measure one completion + auction + re-registration cycle.
                let mut current = busy;
                let mut next_id = (n as u64) * 2 + 10;
                b.iter(|| {
                    out.clear();
                    fe.on_server_done(t0, current, &mut out);
                    let winner = out
                        .iter()
                        .find_map(|d| match d {
                            speakup_core::types::Directive::Admit(k) => Some(*k),
                            _ => None,
                        })
                        .expect("auction admits someone");
                    // Re-enter a fresh request for the winner's client to
                    // keep the pool size constant.
                    current = winner;
                    next_id += 1;
                    let replacement = RequestKey::new(winner.client, RequestId(next_id));
                    fe.on_request(t0, replacement, &mut out);
                    fe.on_payment(t0, replacement, 25_000, &mut out);
                    black_box(&out);
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, thinner_capacity, auction_scan);
criterion_main!(benches);
