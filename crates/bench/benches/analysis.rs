//! §3.4 / Theorem 3.1: the auction game, timed and shape-checked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speakup_core::analysis::{play_auction_game, theorem_bound, AdversaryStrategy};
use std::hint::black_box;

fn bench_game(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm3_1_auction_game");
    let rounds = 100_000u64;
    g.throughput(Throughput::Elements(rounds));
    for (name, strat) in [
        ("uniform", AdversaryStrategy::Uniform),
        ("just_enough", AdversaryStrategy::JustEnough),
        ("bursty", AdversaryStrategy::Bursty { period: 10 }),
        ("random", AdversaryStrategy::Random { seed: 3 }),
    ] {
        g.bench_with_input(BenchmarkId::new("eps_0_2", name), &strat, |b, strat| {
            b.iter(|| {
                let o = play_auction_game(0.2, rounds, strat);
                assert!(o.x_fraction >= theorem_bound(0.2) * 0.97);
                black_box(o.x_fraction)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_game);
criterion_main!(benches);
