//! Figures 6–7 (§7.5) and the §5 quantum auction, at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::{fig6, fig7, heterogeneous_requests};
use speakup_net::time::SimDuration;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_bandwidth_proportionality");
    g.sample_size(10);
    g.bench_function("five_bandwidth_categories", |b| {
        b.iter(|| {
            let s = fig6().duration(SimDuration::from_secs(30));
            let r = speakup_exp::run(&s);
            let mut cat = [0u64; 5];
            for (i, pc) in r.per_client.iter().enumerate() {
                cat[i / 10] += pc.served;
            }
            let total: u64 = cat.iter().sum();
            // Shape: monotone in bandwidth and near the i/15 ideal.
            for i in 1..5 {
                assert!(
                    cat[i] >= cat[i - 1],
                    "shares must rise with bandwidth: {cat:?}"
                );
            }
            let top = cat[4] as f64 / total as f64;
            assert!((top - 5.0 / 15.0).abs() < 0.12, "top category share {top}");
            black_box(cat)
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_rtt_sensitivity");
    g.sample_size(10);
    for all_bad in [false, true] {
        let name = if all_bad { "all_bad" } else { "all_good" };
        g.bench_with_input(BenchmarkId::new("rtt_ladder", name), &all_bad, |b, &bad| {
            b.iter(|| {
                let s = fig7(bad).duration(SimDuration::from_secs(30));
                let r = speakup_exp::run(&s);
                let mut cat = [0u64; 5];
                for (i, pc) in r.per_client.iter().enumerate() {
                    cat[i / 10] += pc.served;
                }
                let total: u64 = cat.iter().sum::<u64>().max(1);
                // Paper's bound: no category more than ~2x off the 0.2 ideal.
                for (i, &v) in cat.iter().enumerate() {
                    let share = v as f64 / total as f64;
                    assert!(
                        (0.07..=0.42).contains(&share),
                        "category {i} share {share} out of the paper's range"
                    );
                }
                black_box(cat)
            })
        });
    }
    g.finish();
}

fn bench_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec5_heterogeneous_requests");
    g.sample_size(10);
    let hard = 5.0;
    for (name, mode) in [
        ("plain_auction", Mode::Auction),
        (
            "quantum_auction",
            Mode::Quantum {
                quantum: SimDuration::from_millis(10),
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::new("work_share", name), &mode, |b, mode| {
            b.iter(|| {
                let s = heterogeneous_requests(*mode, hard).duration(SimDuration::from_secs(30));
                let r = speakup_exp::run(&s);
                let good_work = r.allocation.good as f64;
                let share = good_work / (good_work + r.allocation.bad as f64 * hard);
                match mode {
                    Mode::Quantum { .. } => {
                        assert!(share > 0.32, "quantum work share {share}")
                    }
                    _ => assert!(share < 0.45, "plain-auction work share {share}"),
                }
                black_box(share)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig6, bench_fig7, bench_quantum);
criterion_main!(benches);
