//! Shard-layer performance: the same scenario run on one event loop and
//! split over K synchronized shard loops. Results are byte-identical by
//! construction (asserted here on a fingerprint), so the interesting
//! number is the per-shard-count runtime: cliffs in the barrier or
//! cross-shard exchange path show up as the K > 1 rows regressing
//! against K = 1. CI runs this with `--quick`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speakup_core::client::ClientProfile;
use speakup_exp::runner::{run, run_sharded};
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_exp::scenarios;
use speakup_net::time::SimDuration;
use std::hint::black_box;

fn scenario() -> Scenario {
    let mut s = Scenario::new("bench shard", 50.0, Mode::Auction);
    s.add_clients(15, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(15, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(5))
}

fn bench_shard_scaling(c: &mut Criterion) {
    let baseline = run(&scenario());
    let fingerprint = (
        baseline.allocation.good,
        baseline.allocation.bad,
        baseline.payment_bytes_total,
    );
    // Load balance first: with the split hub, shard 0 should hold only
    // the thinner's share of the events (the old engine pinned the hub,
    // every hub link, and all receiver flow halves there — about half
    // of everything). Printed alongside the timings so regressions in
    // placement are as visible as regressions in barrier cost.
    for shards in [1u32, 2, 4, 8] {
        let r = run_sharded(&scenario(), shards);
        let total: u64 = r.shard_events.iter().sum();
        let share = r.shard_events.first().copied().unwrap_or(0) as f64 / total.max(1) as f64;
        println!(
            "shard_scaling/balance: shards={shards} shard0_share={share:.3} events={:?}",
            r.shard_events
        );
        assert!(
            shards == 1 || share < 0.5,
            "shard 0 regressed to the pre-split-hub bottleneck: {share:.3} of all events"
        );
    }
    // Replicated thinners: the single thinner was the last serial
    // component (~25% of all events on shard 0 after the split-hub
    // work). With R = 4 replicas, each placed on the shard holding the
    // plurality of its clients, shard 0 keeps only its own replica's
    // slice — the acceptance bar is under 10% of all events.
    let replicated = scenarios::fig2(0.5, Mode::Auction)
        .duration(SimDuration::from_secs(5))
        .thinners(4)
        .sync_period(SimDuration::from_millis(10));
    for shards in [4u32, 8] {
        let r = run_sharded(&replicated, shards);
        let total: u64 = r.shard_events.iter().sum();
        let share = r.shard_events.first().copied().unwrap_or(0) as f64 / total.max(1) as f64;
        println!(
            "shard_scaling/replicated: fig2 thinners=4 shards={shards} \
             shard0_share={share:.3} events={:?}",
            r.shard_events
        );
        assert!(
            share < 0.10,
            "fig2 with 4 thinner replicas still concentrates {share:.3} of all \
             events on shard 0 — replica placement regressed"
        );
    }
    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(10);
    for shards in [1u32, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &k| {
            b.iter(|| {
                let r = run_sharded(&scenario(), k);
                assert_eq!(
                    (r.allocation.good, r.allocation.bad, r.payment_bytes_total),
                    fingerprint,
                    "shard-count invariance broke under the bench scenario"
                );
                black_box(r.thinner_drops)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
