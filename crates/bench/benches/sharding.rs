//! Shard-layer performance: the same scenario run on one event loop and
//! split over K synchronized shard loops. Results are byte-identical by
//! construction (asserted here on a fingerprint), so the interesting
//! number is the per-shard-count runtime: cliffs in the barrier or
//! cross-shard exchange path show up as the K > 1 rows regressing
//! against K = 1. CI runs this with `--quick`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speakup_core::client::ClientProfile;
use speakup_exp::runner::{run, run_sharded};
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;
use std::hint::black_box;

fn scenario() -> Scenario {
    let mut s = Scenario::new("bench shard", 50.0, Mode::Auction);
    s.add_clients(15, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(15, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(5))
}

fn bench_shard_scaling(c: &mut Criterion) {
    let baseline = run(&scenario());
    let fingerprint = (
        baseline.allocation.good,
        baseline.allocation.bad,
        baseline.payment_bytes_total,
    );
    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(10);
    for shards in [1u32, 2, 4] {
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &k| {
            b.iter(|| {
                let r = run_sharded(&scenario(), k);
                assert_eq!(
                    (r.allocation.good, r.allocation.bad, r.payment_bytes_total),
                    fingerprint,
                    "shard-count invariance broke under the bench scenario"
                );
                black_box(r.thinner_drops)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
