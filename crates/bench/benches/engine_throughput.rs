//! Engine hot-path throughput: the benchmark baseline the ROADMAP's
//! perf trajectory is gated against.
//!
//! Three measurements, written to `BENCH_engine.json` at the workspace
//! root (machine-readable, uploaded as a CI artifact so later PRs can
//! diff against it):
//!
//! * **End-to-end events/sec** of fig2- and fig7-shaped workloads run
//!   single-shard through the full engine (agents, transport, links,
//!   timing-wheel queue, slab flow tables). This is the number that
//!   tracks across PRs. Each workload also reports its dispatch
//!   breakdown (events per app variant, from the devirtualized
//!   `AppSet` counters) and its steady-state allocation rate.
//! * **Crowd scaling** (`fig2_xl`): fig2's f=0.5 point at 10^5 clients
//!   via flyweight cohorts, measured over a milliseconds-long window
//!   (the workload moves ~2 x 10^8 events per simulated second).
//!   Reports events/sec, setup time, and peak RSS (`/proc/self/status`
//!   `VmHWM`), and asserts the RSS stays under a ceiling — the checked
//!   form of the claim that 10^5 clients do not need 10^5 agents.
//! * **Hot-path replay**: an identical fig2-shaped schedule of event
//!   pushes, pops, per-event flow-table accesses, and RTO rearm
//!   cancellations driven through both generations of the per-event
//!   hot path — the timing wheel + `FlowSlab` tables of this engine,
//!   and the pre-wheel binary heap (kept in
//!   `speakup_net::event::reference`) + the `BTreeMap` flow/RTO tables
//!   it ran with. The replay doubles as a differential test — both
//!   paths must pop the byte-identical event sequence — and reports the
//!   new hot path's speedup in isolation, independent of agent logic.
//! * **Steady-state allocations**, counted by a tracking allocator
//!   installed for this binary only, so "0 allocs/event steady-state"
//!   is a checked property, not a hope. The replay's second half
//!   (after wheel slots, the ready heap, and cancel slots have grown
//!   to their working capacity) is asserted to allocate less than once
//!   per *thousand* events — it cannot be literally zero on an
//!   unbounded horizon, because as simulated time advances past ever
//!   higher block boundaries the wheel files the occasional entry into
//!   a never-before-touched high-level slot, a logarithmically decaying
//!   trickle (measured ~1 allocation per 10,000 events). The
//!   end-to-end workloads additionally report fractional
//!   allocations/event for the back half of each run, asserted below
//!   one per twenty events (flow opens box their config; each served
//!   request records metrics).
//!
//! Not a criterion bench: it needs its own timing loop to emit JSON.
//! `--quick` (the CI profile) runs one timed iteration per measurement
//! and shorter simulated runs.
//!
//! * **Replicated thinners** (schema v4): fig2 with the auction split
//!   over 4 replicas (`--thinners 4`, 10 ms digest cadence) on 4
//!   shards — events/sec with the digest traffic included, plus the
//!   shard-0 event share the replication exists to shrink (asserted
//!   under 10%, vs ~25% with the single thinner).
//!
//! The JSON also carries frozen baselines so the speedups each PR
//! claims stay auditable from the emitted document alone:
//! [`PRE_PR_FIG2_EVENTS_PER_SEC`] (the pre-wheel engine), the
//! [`PR4_FIG2_EVENTS_PER_SEC`] family (the wheel engine before the
//! devirtualized-dispatch / allocation-free-loop work), and so on up
//! to the [`PR8_FIG2_EVENTS_PER_SEC`] family (the engine just before
//! the replicated-thinner work). None can be re-measured here — the
//! current engine is the only one the scenarios run through — so the
//! constants pin the history.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations (not bytes, not frees): the hot-loop
/// property under test is "no allocator traffic per event", and a
/// single counter keeps the timed loops honest — one relaxed
/// `fetch_add` per allocation, nothing on the (allocation-free) fast
/// path being measured.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Workspace code forbids `unsafe`; this bench binary is the one spot
// that needs it, to interpose on the global allocator. The impl defers
// every operation to `System` untouched.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// End-to-end events/sec of the pre-wheel engine (binary-heap queue +
/// `BTreeMap` flow tables) on the same fig2/fig7 workloads as below:
/// full profile (best of 3, 20 s simulated), single shard, measured at
/// commit 73cde59 (the last pre-wheel commit) on the reference 1-core
/// CI host. Both engines process byte-identical event streams, so
/// events/sec ratios are end-to-end speedups. To re-measure: check out
/// 73cde59 and drive `runner::run` on the same scenarios with this
/// file's timing loop. Run-to-run spread on that host is ±15%;
/// interleaved paired measurements of the two engines put the fig2
/// end-to-end speedup in the 1.9–2.2× band.
const PRE_PR_FIG2_EVENTS_PER_SEC: f64 = 1_914_426.0;
/// See [`PRE_PR_FIG2_EVENTS_PER_SEC`].
const PRE_PR_FIG7_EVENTS_PER_SEC: f64 = 3_242_600.0;

/// The wheel engine as of PR 4 (commit a35c553): timing wheel + slab
/// tables, but box-dispatched apps, per-packet RNG draws on every
/// link, and per-send route walks. Full profile on the same 1-core
/// host; same ±15% caveat as the pre-wheel constants. These are the
/// committed `BENCH_engine.json` numbers that PR predecessor left
/// behind, frozen here so the current engine's speedup over it stays
/// in the emitted document.
const PR4_FIG2_EVENTS_PER_SEC: f64 = 4_002_431.0;
/// See [`PR4_FIG2_EVENTS_PER_SEC`].
const PR4_FIG7_EVENTS_PER_SEC: f64 = 4_604_613.0;
/// PR 4's hot-path replay rate (wheel + slab side), full profile.
const PR4_REPLAY_EVENTS_PER_SEC: f64 = 9_636_320.0;

/// The engine as of PR 6 (commit 8e5ba0f): devirtualized dispatch and
/// the allocation-free hot loop, but 32-byte wheel entries, per-window
/// cross-shard buffer churn, and no crowd abstraction — every client a
/// full agent. Frozen from the `BENCH_engine.json` that PR committed
/// (full profile, same 1-core host, same ±15% spread caveat) so this
/// PR's written delta — the 32 → 24-byte `Entry` cache repack plus the
/// cohort/SoA restructuring — stays auditable from the document alone.
const PR6_FIG2_EVENTS_PER_SEC: f64 = 6_118_981.0;
/// See [`PR6_FIG2_EVENTS_PER_SEC`].
const PR6_FIG7_EVENTS_PER_SEC: f64 = 8_169_609.0;
/// PR 6's hot-path replay rate (wheel + slab side), full profile.
const PR6_REPLAY_EVENTS_PER_SEC: f64 = 11_026_723.0;

/// The engine as of PR 8 (commit 91c25d1): flyweight cohorts, recycled
/// cross-shard buffers, repacked wheel entries — the last single-thinner
/// engine before the replicated-thinner work. Frozen from the
/// `BENCH_engine.json` that PR committed (full profile, same 1-core
/// host, same ±15% spread caveat) so the replicated engine's zero-cost
/// claim at `--thinners 1` stays auditable from the document alone.
const PR8_FIG2_EVENTS_PER_SEC: f64 = 6_669_491.0;
/// See [`PR8_FIG2_EVENTS_PER_SEC`].
const PR8_FIG7_EVENTS_PER_SEC: f64 = 8_718_979.0;
/// PR 8's hot-path replay rate (wheel + slab side), full profile.
const PR8_REPLAY_EVENTS_PER_SEC: f64 = 12_374_843.0;
/// PR 8's fig2_xl crowd-scaling rate, full profile.
const PR8_XL_EVENTS_PER_SEC: f64 = 2_436_624.0;

/// Ceiling on `fig2_xl`'s peak RSS, enforced at measurement time (and
/// re-checked against the committed document by `validate_baseline`).
/// The flyweight-cohort population keeps 10^5 clients well under half
/// a GB today; the ceiling leaves headroom for flow-table growth in
/// longer runs while still catching a regression to per-member agents
/// (which would cost an order of magnitude more).
const XL_PEAK_RSS_CEILING_BYTES: u64 = 8 << 30;

use speakup_exp::runner::{run, run_sharded};
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios;
use speakup_net::event::{reference::HeapQueue, EventHandle, EventQueue};
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::rng::Pcg32;
use speakup_net::sim::flow_id;
use speakup_net::slab::FlowSlab;
use speakup_net::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

struct Workload {
    name: &'static str,
    sim_secs: u64,
    events: u64,
    events_per_sec: f64,
    /// Allocations per event over the back half of the run (see
    /// `steady_state_allocs_per_event` in `main`).
    steady_allocs_per_event: f64,
    /// (variant name, events dispatched to that variant).
    dispatch: Vec<(&'static str, u64)>,
}

/// Stand-in for the transport's per-flow state (`tcp::Flow` is ~this
/// size); the replay mutates a couple of fields per event the way
/// `on_ack`/`on_data` do.
struct FakeFlow {
    acked: u64,
    delivered: u64,
    _pad: [u64; 20],
}

impl FakeFlow {
    fn new() -> Self {
        FakeFlow {
            acked: 0,
            delivered: 0,
            _pad: [0; 20],
        }
    }
}

/// One step of the recorded fig2-shaped schedule.
enum Op {
    /// A packet-lifecycle event for `flow`, `delay` ns after the last
    /// popped event.
    Push { delay: u64, lane: u64, flow: u32 },
    /// Rearm `flow`'s RTO (cancel the armed one, push a fresh timer) —
    /// the transport's per-ack pattern, and the pre-PR engine's
    /// tombstone + `BTreeMap` hot spot.
    Rearm { delay: u64, flow: u32 },
    /// Pop the earliest event and touch its flow's table entry.
    Pop,
}

/// Number of flows fig2 accumulates over a ~30 s run (flow state is
/// append-only in the engine; lookups walk the full table).
const FLOWS: usize = 12_000;
/// Clients a fig2 population has; flow ids pack (node, per-node count).
const NODES: u32 = 50;

fn flow_of(i: u32) -> FlowId {
    flow_id(NodeId(i % NODES), i / NODES)
}

/// A fig2-shaped schedule: steady state around `pending` in-queue
/// events; delays mix aggregation-link transmissions (~12 µs), access
/// propagation (~500 µs), access-link transmissions (~6 ms), and
/// application timers; ~40% of events are acks that rearm their flow's
/// ~1 s RTO, so both queues carry a realistic population of
/// cancelled-but-unexpired timers. Deterministic, so both hot paths
/// replay byte-identical operation streams.
fn fig2_shaped_schedule(pending: usize, steps: usize) -> Vec<Op> {
    let mut rng = Pcg32::new(0x5ea4_bee5, 1);
    let mut ops = Vec::with_capacity(pending + 2 * steps);
    let step = |ops: &mut Vec<Op>, rng: &mut Pcg32| {
        let flow = rng.below(FLOWS as u32);
        let r = rng.below(100);
        match r {
            0..=29 => ops.push(Op::Push {
                delay: rng.range_u64(8_000, 16_000), // ~12 µs serialization
                lane: flow as u64,
                flow,
            }),
            30..=49 => ops.push(Op::Push {
                delay: rng.range_u64(400_000, 600_000), // ~500 µs propagation
                lane: flow as u64,
                flow,
            }),
            50..=54 => ops.push(Op::Push {
                delay: rng.range_u64(20_000_000, 80_000_000), // app timers
                lane: (1 << 32) | flow as u64,
                flow,
            }),
            55..=59 => ops.push(Op::Push {
                delay: rng.range_u64(5_000_000, 7_000_000), // ~6 ms access tx
                lane: flow as u64,
                flow,
            }),
            _ => ops.push(Op::Rearm {
                delay: rng.range_u64(900_000_000, 1_100_000_000), // ~1 s RTO
                flow,
            }),
        }
    };
    for _ in 0..pending {
        step(&mut ops, &mut rng);
    }
    for _ in 0..steps {
        ops.push(Op::Pop);
        step(&mut ops, &mut rng);
    }
    ops
}

/// Replay state for this engine's hot path: timing wheel + `FlowSlab`.
struct WheelReplay {
    q: EventQueue<u32>,
    table: FlowSlab<FakeFlow>,
    rto: FlowSlab<EventHandle>,
    now: SimTime,
    pops: u64,
    checksum: u64,
}

impl WheelReplay {
    fn new() -> Self {
        let mut table: FlowSlab<FakeFlow> = FlowSlab::new(NODES as usize);
        for i in 0..FLOWS as u32 {
            table.insert(flow_of(i), FakeFlow::new());
        }
        WheelReplay {
            q: EventQueue::new(),
            table,
            rto: FlowSlab::new(NODES as usize),
            now: SimTime::ZERO,
            pops: 0,
            checksum: 0,
        }
    }

    #[inline]
    fn step(&mut self, op: &Op) {
        match *op {
            Op::Push { delay, lane, flow } => {
                self.q
                    .push_lane(self.now + SimDuration::from_nanos(delay), lane, flow);
            }
            Op::Rearm { delay, flow } => {
                let id = flow_of(flow);
                if let Some(h) = self.rto.take(id) {
                    self.q.cancel(h);
                }
                let h = self.q.push_lane_handle(
                    self.now + SimDuration::from_nanos(delay),
                    flow as u64,
                    flow,
                );
                self.rto.insert(id, h);
            }
            Op::Pop => {
                if let Some((t, flow)) = self.q.pop() {
                    self.now = t;
                    self.pops += 1;
                    let f = self.table.get_mut(flow_of(flow)).expect("replay flow");
                    f.acked += t.as_nanos() & 0xff;
                    f.delivered += 1;
                    self.checksum = self
                        .checksum
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(t.as_nanos() ^ flow as u64);
                }
            }
        }
    }
}

/// Replay through the wheel + slab hot path. Returns
/// (pops, checksum, allocations performed over the second half of the
/// schedule). The first half doubles as warmup: by midway the wheel's
/// slot vectors, ready heap, and cancel slots have hit their working
/// capacity, so the back half is the steady state the engine claims is
/// allocation-free.
fn replay_wheel_slab(ops: &[Op]) -> (u64, u64, u64) {
    let mut r = WheelReplay::new();
    let (warmup, steady) = ops.split_at(ops.len() / 2);
    for op in warmup {
        r.step(op);
    }
    let base = alloc_count();
    for op in steady {
        r.step(op);
    }
    let steady_allocs = alloc_count() - base;
    (r.pops, r.checksum, steady_allocs)
}

/// Replay through the pre-PR hot path: binary heap with tombstone
/// cancellation + `BTreeMap` flow/RTO tables.
fn replay_heap_btreemap(ops: &[Op]) -> (u64, u64) {
    let mut q = HeapQueue::new();
    let mut table: BTreeMap<FlowId, FakeFlow> = BTreeMap::new();
    let mut rto = BTreeMap::new();
    for i in 0..FLOWS as u32 {
        table.insert(flow_of(i), FakeFlow::new());
    }
    let mut now = SimTime::ZERO;
    let (mut pops, mut checksum) = (0u64, 0u64);
    for op in ops {
        match *op {
            Op::Push { delay, lane, flow } => {
                q.push_lane(now + SimDuration::from_nanos(delay), lane, flow);
            }
            Op::Rearm { delay, flow } => {
                let id = flow_of(flow);
                if let Some(h) = rto.remove(&id) {
                    q.cancel(h);
                }
                let h = q.push_lane(now + SimDuration::from_nanos(delay), flow as u64, flow);
                rto.insert(id, h);
            }
            Op::Pop => {
                if let Some((t, flow)) = q.pop() {
                    now = t;
                    pops += 1;
                    let f = table.get_mut(&flow_of(flow)).expect("replay flow");
                    f.acked += t.as_nanos() & 0xff;
                    f.delivered += 1;
                    checksum = checksum
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(t.as_nanos() ^ flow as u64);
                }
            }
        }
    }
    (pops, checksum)
}

/// Process-lifetime peak resident set, from `/proc/self/status`
/// `VmHWM`, in bytes. Returns 0 where procfs is unavailable (non-Linux
/// dev hosts); callers skip the RSS assertions then rather than fail.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        // Benches time the host by definition (see clippy.toml).
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one iteration"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 3 };
    let sim_secs = if quick { 5 } else { 20 };

    // ---- end-to-end engine throughput ----
    let shapes = [
        ("fig2", scenarios::fig2(0.5, Mode::Auction)),
        ("fig7", scenarios::fig7(false)),
    ];
    let mut workloads = Vec::new();
    for (name, mut sc) in shapes {
        sc.duration = SimDuration::from_secs(sim_secs);
        let (wall, report) = best_of(iters, || run(&sc));
        let events: u64 = report.shard_events.iter().sum();
        let events_per_sec = events as f64 / wall;

        // Steady-state allocation rate, measured end-to-end and
        // black-box: run the same scenario at half duration, then at
        // full duration. The half run's event stream is a prefix of the
        // full run's (same seeds, same schedule), so subtracting its
        // allocation count cancels everything the two runs share —
        // topology build, slab/wheel warmup growth, the common prefix
        // of the simulation — and what remains is the back half of the
        // run: the steady state. Flow opens still happen there (each
        // boxes a config) as does per-request metrics accounting, so
        // the rate is fractional-but-tiny rather than literally zero
        // (~0.01: a handful of allocations per served request, spread
        // over the ~100 events each request costs); the assert pins it
        // below one allocation per *twenty* events.
        let mut half = sc.clone();
        half.duration = SimDuration::from_secs(sim_secs / 2);
        let before_half = alloc_count();
        let half_report = run(&half);
        let half_allocs = alloc_count() - before_half;
        let before_full = alloc_count();
        let _ = run(&sc);
        let full_allocs = alloc_count() - before_full;
        let half_events: u64 = half_report.shard_events.iter().sum();
        let steady_events = events - half_events;
        let steady_allocs = full_allocs.saturating_sub(half_allocs);
        let steady_allocs_per_event = steady_allocs as f64 / steady_events as f64;
        assert!(
            steady_allocs_per_event < 0.05,
            "{name} steady state allocates {steady_allocs_per_event:.4} times/event \
             ({steady_allocs} allocations over {steady_events} events) — \
             the hot loop is supposed to be allocation-free"
        );

        let dispatched: u64 = report.dispatch_counts.iter().map(|(_, c)| c).sum();
        let mut breakdown = String::new();
        for (variant, count) in &report.dispatch_counts {
            let _ = write!(
                breakdown,
                "{}{variant} {:.1}%",
                if breakdown.is_empty() { "" } else { ", " },
                100.0 * *count as f64 / dispatched.max(1) as f64
            );
        }
        println!(
            "engine_throughput/{name}: {events} events in {wall:.3}s = {events_per_sec:.0} events/sec"
        );
        println!(
            "engine_throughput/{name}: {steady_allocs_per_event:.4} allocs/event steady-state; dispatch {breakdown}"
        );
        workloads.push(Workload {
            name,
            sim_secs,
            events,
            events_per_sec,
            steady_allocs_per_event,
            dispatch: report.dispatch_counts,
        });
    }

    // ---- fig2_xl: crowd-scaling memory/throughput baseline ----
    // 10^5 clients of fig2's f=0.5 shape move ~2 x 10^8 events per
    // *simulated* second (50k attackers' payment traffic saturating
    // 100 Gbit/s of aggregate access bandwidth), so the window is
    // milliseconds where the small workloads run whole seconds: long
    // enough to push tens of millions of events through every cohort
    // and measure a stable rate, short enough to finish in CI. One
    // timed iteration — at this event count, best-of adds minutes for
    // a rate that is already averaged over ~10^7 events.
    let xl_ms = if quick { 40 } else { 150 };
    let mut xl = scenarios::fig2_xl();
    let xl_population = xl.population();
    xl.duration = SimDuration::from_millis(xl_ms);
    // Setup cost in isolation: a run truncated to one simulated
    // microsecond is all topology/agent/table construction.
    let mut xl_setup = xl.clone();
    xl_setup.duration = SimDuration::from_micros(1);
    // Benches time the host by definition (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    let setup_start = Instant::now();
    let _ = run(&xl_setup);
    let xl_setup_secs = setup_start.elapsed().as_secs_f64();
    #[allow(clippy::disallowed_methods)]
    let xl_start = Instant::now();
    let xl_report = run(&xl);
    let xl_wall = xl_start.elapsed().as_secs_f64();
    let xl_events: u64 = xl_report.shard_events.iter().sum();
    let xl_eps = xl_events as f64 / xl_wall;
    // VmHWM is the process high-water mark; the fig2/fig7 workloads
    // above stay under ~100 MB, so the figure is fig2_xl's.
    let xl_rss = peak_rss_bytes();
    if xl_rss > 0 {
        assert!(
            xl_rss < XL_PEAK_RSS_CEILING_BYTES,
            "fig2_xl peaked at {} MB resident — over the {} MB ceiling; \
             did per-member state leak back into the cohort path?",
            xl_rss >> 20,
            XL_PEAK_RSS_CEILING_BYTES >> 20
        );
    }
    println!(
        "engine_throughput/fig2_xl: {xl_population} clients, {xl_events} events in {xl_wall:.3}s = {xl_eps:.0} events/sec ({xl_ms} ms simulated)"
    );
    println!(
        "engine_throughput/fig2_xl: setup {xl_setup_secs:.3}s, peak RSS {} MB",
        xl_rss >> 20
    );

    // ---- replicated thinners: fig2 with the auction split 4 ways ----
    // The single thinner was the last serial component (~25% of all
    // events pinned to its shard); with R = 4 replicas exchanging bid
    // digests every 10 ms, shard 0 keeps only its replica's slice. The
    // measured events/sec includes the digest control traffic, so this
    // row is the throughput price of replication, and the shard-0 share
    // beside it is what replication buys.
    let rep_shards = 4u32;
    let mut rep = scenarios::fig2(0.5, Mode::Auction)
        .thinners(4)
        .sync_period(SimDuration::from_millis(10));
    rep.duration = SimDuration::from_secs(sim_secs);
    let (rep_wall, rep_report) = best_of(iters, || run_sharded(&rep, rep_shards));
    let rep_events: u64 = rep_report.shard_events.iter().sum();
    let rep_eps = rep_events as f64 / rep_wall;
    let rep_share =
        rep_report.shard_events.first().copied().unwrap_or(0) as f64 / rep_events.max(1) as f64;
    assert!(
        rep_share < 0.10,
        "fig2 with 4 thinner replicas still concentrates {rep_share:.3} of all \
         events on shard 0 — replica placement regressed"
    );
    println!(
        "engine_throughput/fig2_replicated: thinners=4 shards={rep_shards} \
         {rep_events} events in {rep_wall:.3}s = {rep_eps:.0} events/sec, \
         shard0_share={rep_share:.3}"
    );

    // ---- hot-path replay: wheel + slab vs pre-PR heap + BTreeMap ----
    let steps = if quick { 1_000_000 } else { 4_000_000 };
    let ops = fig2_shaped_schedule(1_000, steps);
    let (new_wall, (new_pops, new_sum, steady_allocs)) = best_of(iters, || replay_wheel_slab(&ops));
    let (old_wall, (old_pops, old_sum)) = best_of(iters, || replay_heap_btreemap(&ops));
    assert_eq!(
        (new_pops, new_sum),
        (old_pops, old_sum),
        "timing wheel diverged from the reference heap on the replay schedule"
    );
    // The asserted tentpole property: once warm, the engine hot path
    // (wheel push/pop/cancel + slab access) amortizes to zero allocator
    // calls per event. See the module docs for why the bound is "under
    // one per thousand events" and not literal zero.
    let steady_pops = (new_pops / 2).max(1);
    assert!(
        steady_allocs * 1_000 < steady_pops,
        "wheel+slab replay allocated {steady_allocs} times over its steady-state \
         half ({steady_pops} pops) — the hot path is supposed to be allocation-free"
    );
    let new_rate = new_pops as f64 / new_wall;
    let old_rate = old_pops as f64 / old_wall;
    let speedup = new_rate / old_rate;
    println!(
        "engine_throughput/hot_path_replay: wheel+slab {new_rate:.0} ev/s, pre-PR heap+btreemap {old_rate:.0} ev/s, speedup {speedup:.2}x, steady-state allocs {steady_allocs}"
    );

    // ---- BENCH_engine.json at the workspace root ----
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"speakup-bench-engine/4\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let mut dispatch = String::new();
        for (variant, count) in &w.dispatch {
            let _ = write!(
                dispatch,
                "{}\"{variant}\": {count}",
                if dispatch.is_empty() { "" } else { ", " }
            );
        }
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"sim_secs\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \"steady_state_allocs_per_event\": {:.4}, \"dispatch\": {{{}}}}}",
            w.name, w.sim_secs, w.events, w.events_per_sec, w.steady_allocs_per_event, dispatch
        );
        json.push_str(if i + 1 < workloads.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Schema v3: the crowd-scaling baseline. `peak_rss_bytes` is the
    // process VmHWM after the run (0 where procfs is absent);
    // `setup_secs` is the one-microsecond-run construction cost.
    let mut xl_dispatch = String::new();
    for (variant, count) in &xl_report.dispatch_counts {
        let _ = write!(
            xl_dispatch,
            "{}\"{variant}\": {count}",
            if xl_dispatch.is_empty() { "" } else { ", " }
        );
    }
    let _ = writeln!(
        json,
        "  \"fig2_xl\": {{\"population\": {xl_population}, \"sim_ms\": {xl_ms}, \"events\": {xl_events}, \"events_per_sec\": {xl_eps:.0}, \"setup_secs\": {xl_setup_secs:.3}, \"peak_rss_bytes\": {xl_rss}, \"peak_rss_ceiling_bytes\": {XL_PEAK_RSS_CEILING_BYTES}, \"dispatch\": {{{xl_dispatch}}}}},"
    );
    let ratio = |current: Option<f64>, baseline: f64| -> String {
        match current {
            Some(c) if !quick => format!("{:.2}", c / baseline),
            _ => "null".into(),
        }
    };
    let e2e = |name: &str| {
        workloads
            .iter()
            .find(|w| w.name == name)
            .map(|w| w.events_per_sec)
    };
    let _ = writeln!(
        json,
        "  \"pre_pr_heap_engine\": {{\"measured_at\": \"commit 73cde59, full profile\", \"fig2_events_per_sec\": {PRE_PR_FIG2_EVENTS_PER_SEC:.0}, \"fig7_events_per_sec\": {PRE_PR_FIG7_EVENTS_PER_SEC:.0}, \"fig2_end_to_end_speedup\": {}, \"fig7_end_to_end_speedup\": {}}},",
        ratio(e2e("fig2"), PRE_PR_FIG2_EVENTS_PER_SEC),
        ratio(e2e("fig7"), PRE_PR_FIG7_EVENTS_PER_SEC)
    );
    let _ = writeln!(
        json,
        "  \"pr4_wheel_engine\": {{\"measured_at\": \"commit a35c553, full profile\", \"fig2_events_per_sec\": {PR4_FIG2_EVENTS_PER_SEC:.0}, \"fig7_events_per_sec\": {PR4_FIG7_EVENTS_PER_SEC:.0}, \"hot_path_replay_events_per_sec\": {PR4_REPLAY_EVENTS_PER_SEC:.0}, \"fig2_end_to_end_speedup\": {}, \"fig7_end_to_end_speedup\": {}, \"replay_speedup\": {}}},",
        ratio(e2e("fig2"), PR4_FIG2_EVENTS_PER_SEC),
        ratio(e2e("fig7"), PR4_FIG7_EVENTS_PER_SEC),
        ratio(Some(new_rate), PR4_REPLAY_EVENTS_PER_SEC)
    );
    let _ = writeln!(
        json,
        "  \"pr6_engine\": {{\"measured_at\": \"commit 8e5ba0f, full profile\", \"delta\": \"this PR: flyweight cohorts, dirty-flow payment sync + lazy auction heaps (both O(1), byte-identical), 32->24-byte wheel entries, recycled cross-shard buffers\", \"fig2_events_per_sec\": {PR6_FIG2_EVENTS_PER_SEC:.0}, \"fig7_events_per_sec\": {PR6_FIG7_EVENTS_PER_SEC:.0}, \"hot_path_replay_events_per_sec\": {PR6_REPLAY_EVENTS_PER_SEC:.0}, \"fig2_end_to_end_speedup\": {}, \"fig7_end_to_end_speedup\": {}, \"replay_speedup\": {}}},",
        ratio(e2e("fig2"), PR6_FIG2_EVENTS_PER_SEC),
        ratio(e2e("fig7"), PR6_FIG7_EVENTS_PER_SEC),
        ratio(Some(new_rate), PR6_REPLAY_EVENTS_PER_SEC)
    );
    let _ = writeln!(
        json,
        "  \"pr8_engine\": {{\"measured_at\": \"commit 91c25d1, full profile\", \"delta\": \"this PR: replicated thinners (--thinners R) with epoch bid-digest sync over in-sim control packets; --thinners 1 is byte-identical, so any fig2/fig7 delta vs this block is noise or digest-path overhead\", \"fig2_events_per_sec\": {PR8_FIG2_EVENTS_PER_SEC:.0}, \"fig7_events_per_sec\": {PR8_FIG7_EVENTS_PER_SEC:.0}, \"hot_path_replay_events_per_sec\": {PR8_REPLAY_EVENTS_PER_SEC:.0}, \"fig2_xl_events_per_sec\": {PR8_XL_EVENTS_PER_SEC:.0}, \"fig2_end_to_end_speedup\": {}, \"fig7_end_to_end_speedup\": {}, \"replay_speedup\": {}, \"fig2_xl_speedup\": {}}},",
        ratio(e2e("fig2"), PR8_FIG2_EVENTS_PER_SEC),
        ratio(e2e("fig7"), PR8_FIG7_EVENTS_PER_SEC),
        ratio(Some(new_rate), PR8_REPLAY_EVENTS_PER_SEC),
        ratio(Some(xl_eps), PR8_XL_EVENTS_PER_SEC)
    );
    // Schema v4: the replicated-thinner row. `shard0_event_share` is
    // the acceptance metric (the old single-thinner engine pinned ~25%
    // of fig2's events to the thinner's shard; the bar here is 10%).
    let _ = writeln!(
        json,
        "  \"replicated_thinners\": {{\"scenario\": \"fig2 f=0.5\", \"thinners\": 4, \"sync_period_ms\": 10, \"shards\": {rep_shards}, \"sim_secs\": {sim_secs}, \"events\": {rep_events}, \"events_per_sec\": {rep_eps:.0}, \"shard0_event_share\": {rep_share:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"hot_path_replay\": {{\"schedule_pops\": {new_pops}, \"wheel_slab_events_per_sec\": {new_rate:.0}, \"heap_btreemap_events_per_sec\": {old_rate:.0}, \"speedup\": {speedup:.2}, \"steady_state_allocs\": {steady_allocs}}}"
    );
    json.push_str("}\n");
    // The committed BENCH_engine.json is the full-profile baseline future
    // PRs diff against; `--quick` runs (CI, local smoke) are measured
    // under an incomparable profile and go to a sibling file so they can
    // never clobber or masquerade as the baseline.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json")
    };
    std::fs::write(path, &json).expect("write BENCH_engine json");
    println!("engine_throughput: wrote {path}");
}
