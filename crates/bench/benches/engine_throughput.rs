//! Engine hot-path throughput: the benchmark baseline the ROADMAP's
//! perf trajectory is gated against.
//!
//! Two measurements, written to `BENCH_engine.json` at the workspace
//! root (machine-readable, uploaded as a CI artifact so later PRs can
//! diff against it):
//!
//! * **End-to-end events/sec** of fig2- and fig7-shaped workloads run
//!   single-shard through the full engine (agents, transport, links,
//!   timing-wheel queue, slab flow tables). This is the number that
//!   tracks across PRs.
//! * **Hot-path replay**: an identical fig2-shaped schedule of event
//!   pushes, pops, per-event flow-table accesses, and RTO rearm
//!   cancellations driven through both generations of the per-event
//!   hot path — the timing wheel + `FlowSlab` tables of this engine,
//!   and the pre-wheel binary heap (kept in
//!   `speakup_net::event::reference`) + the `BTreeMap` flow/RTO tables
//!   it ran with. The replay doubles as a differential test — both
//!   paths must pop the byte-identical event sequence — and reports the
//!   new hot path's speedup in isolation, independent of agent logic.
//!
//! Not a criterion bench: it needs its own timing loop to emit JSON.
//! `--quick` (the CI profile) runs one timed iteration per measurement
//! and shorter simulated runs.
//!
//! The JSON also carries [`PRE_PR_FIG2_EVENTS_PER_SEC`] /
//! [`PRE_PR_FIG7_EVENTS_PER_SEC`]: the pre-wheel engine's *end-to-end*
//! events/sec on the same workloads, measured once (this cannot be
//! re-measured here — the wheel is now the only engine the scenarios
//! run through) so the end-to-end speedup the wheel PR claims stays
//! auditable from the emitted document.

/// End-to-end events/sec of the pre-wheel engine (binary-heap queue +
/// `BTreeMap` flow tables) on the same fig2/fig7 workloads as below:
/// full profile (best of 3, 20 s simulated), single shard, measured at
/// commit 73cde59 (the last pre-wheel commit) on the reference 1-core
/// CI host. Both engines process byte-identical event streams (fig2:
/// 1146506 events, fig7: 726520), so events/sec ratios are end-to-end
/// speedups. To re-measure: check out 73cde59 and drive
/// `runner::run` on the same scenarios with this file's timing loop.
/// Run-to-run spread on that host is ±15%; interleaved paired
/// measurements of the two engines put the fig2 end-to-end speedup in
/// the 1.9–2.2× band.
const PRE_PR_FIG2_EVENTS_PER_SEC: f64 = 1_914_426.0;
/// See [`PRE_PR_FIG2_EVENTS_PER_SEC`].
const PRE_PR_FIG7_EVENTS_PER_SEC: f64 = 3_242_600.0;

use speakup_exp::runner::run;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios;
use speakup_net::event::{reference::HeapQueue, EventQueue};
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::rng::Pcg32;
use speakup_net::sim::flow_id;
use speakup_net::slab::FlowSlab;
use speakup_net::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

struct Workload {
    name: &'static str,
    sim_secs: u64,
    events: u64,
    events_per_sec: f64,
}

/// Stand-in for the transport's per-flow state (`tcp::Flow` is ~this
/// size); the replay mutates a couple of fields per event the way
/// `on_ack`/`on_data` do.
struct FakeFlow {
    acked: u64,
    delivered: u64,
    _pad: [u64; 20],
}

impl FakeFlow {
    fn new() -> Self {
        FakeFlow {
            acked: 0,
            delivered: 0,
            _pad: [0; 20],
        }
    }
}

/// One step of the recorded fig2-shaped schedule.
enum Op {
    /// A packet-lifecycle event for `flow`, `delay` ns after the last
    /// popped event.
    Push { delay: u64, lane: u64, flow: u32 },
    /// Rearm `flow`'s RTO (cancel the armed one, push a fresh timer) —
    /// the transport's per-ack pattern, and the pre-PR engine's
    /// tombstone + `BTreeMap` hot spot.
    Rearm { delay: u64, flow: u32 },
    /// Pop the earliest event and touch its flow's table entry.
    Pop,
}

/// Number of flows fig2 accumulates over a ~30 s run (flow state is
/// append-only in the engine; lookups walk the full table).
const FLOWS: usize = 12_000;
/// Clients a fig2 population has; flow ids pack (node, per-node count).
const NODES: u32 = 50;

fn flow_of(i: u32) -> FlowId {
    flow_id(NodeId(i % NODES), i / NODES)
}

/// A fig2-shaped schedule: steady state around `pending` in-queue
/// events; delays mix aggregation-link transmissions (~12 µs), access
/// propagation (~500 µs), access-link transmissions (~6 ms), and
/// application timers; ~40% of events are acks that rearm their flow's
/// ~1 s RTO, so both queues carry a realistic population of
/// cancelled-but-unexpired timers. Deterministic, so both hot paths
/// replay byte-identical operation streams.
fn fig2_shaped_schedule(pending: usize, steps: usize) -> Vec<Op> {
    let mut rng = Pcg32::new(0x5ea4_bee5, 1);
    let mut ops = Vec::with_capacity(pending + 2 * steps);
    let step = |ops: &mut Vec<Op>, rng: &mut Pcg32| {
        let flow = rng.below(FLOWS as u32);
        let r = rng.below(100);
        match r {
            0..=29 => ops.push(Op::Push {
                delay: rng.range_u64(8_000, 16_000), // ~12 µs serialization
                lane: flow as u64,
                flow,
            }),
            30..=49 => ops.push(Op::Push {
                delay: rng.range_u64(400_000, 600_000), // ~500 µs propagation
                lane: flow as u64,
                flow,
            }),
            50..=54 => ops.push(Op::Push {
                delay: rng.range_u64(20_000_000, 80_000_000), // app timers
                lane: (1 << 32) | flow as u64,
                flow,
            }),
            55..=59 => ops.push(Op::Push {
                delay: rng.range_u64(5_000_000, 7_000_000), // ~6 ms access tx
                lane: flow as u64,
                flow,
            }),
            _ => ops.push(Op::Rearm {
                delay: rng.range_u64(900_000_000, 1_100_000_000), // ~1 s RTO
                flow,
            }),
        }
    };
    for _ in 0..pending {
        step(&mut ops, &mut rng);
    }
    for _ in 0..steps {
        ops.push(Op::Pop);
        step(&mut ops, &mut rng);
    }
    ops
}

/// Replay through this engine's hot path: timing wheel + `FlowSlab`.
/// Returns (pops, checksum).
fn replay_wheel_slab(ops: &[Op]) -> (u64, u64) {
    let mut q = EventQueue::new();
    let mut table: FlowSlab<FakeFlow> = FlowSlab::new(NODES as usize);
    let mut rto: FlowSlab<_> = FlowSlab::new(NODES as usize);
    for i in 0..FLOWS as u32 {
        table.insert(flow_of(i), FakeFlow::new());
    }
    let mut now = SimTime::ZERO;
    let (mut pops, mut checksum) = (0u64, 0u64);
    for op in ops {
        match *op {
            Op::Push { delay, lane, flow } => {
                q.push_lane(now + SimDuration::from_nanos(delay), lane, flow);
            }
            Op::Rearm { delay, flow } => {
                let id = flow_of(flow);
                if let Some(h) = rto.take(id) {
                    q.cancel(h);
                }
                let h = q.push_lane_handle(now + SimDuration::from_nanos(delay), flow as u64, flow);
                rto.insert(id, h);
            }
            Op::Pop => {
                if let Some((t, flow)) = q.pop() {
                    now = t;
                    pops += 1;
                    let f = table.get_mut(flow_of(flow)).expect("replay flow");
                    f.acked += t.as_nanos() & 0xff;
                    f.delivered += 1;
                    checksum = checksum
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(t.as_nanos() ^ flow as u64);
                }
            }
        }
    }
    (pops, checksum)
}

/// Replay through the pre-PR hot path: binary heap with tombstone
/// cancellation + `BTreeMap` flow/RTO tables.
fn replay_heap_btreemap(ops: &[Op]) -> (u64, u64) {
    let mut q = HeapQueue::new();
    let mut table: BTreeMap<FlowId, FakeFlow> = BTreeMap::new();
    let mut rto = BTreeMap::new();
    for i in 0..FLOWS as u32 {
        table.insert(flow_of(i), FakeFlow::new());
    }
    let mut now = SimTime::ZERO;
    let (mut pops, mut checksum) = (0u64, 0u64);
    for op in ops {
        match *op {
            Op::Push { delay, lane, flow } => {
                q.push_lane(now + SimDuration::from_nanos(delay), lane, flow);
            }
            Op::Rearm { delay, flow } => {
                let id = flow_of(flow);
                if let Some(h) = rto.remove(&id) {
                    q.cancel(h);
                }
                let h = q.push_lane(now + SimDuration::from_nanos(delay), flow as u64, flow);
                rto.insert(id, h);
            }
            Op::Pop => {
                if let Some((t, flow)) = q.pop() {
                    now = t;
                    pops += 1;
                    let f = table.get_mut(&flow_of(flow)).expect("replay flow");
                    f.acked += t.as_nanos() & 0xff;
                    f.delivered += 1;
                    checksum = checksum
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(t.as_nanos() ^ flow as u64);
                }
            }
        }
    }
    (pops, checksum)
}

fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one iteration"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 3 };
    let sim_secs = if quick { 5 } else { 20 };

    // ---- end-to-end engine throughput ----
    let shapes = [
        ("fig2", scenarios::fig2(0.5, Mode::Auction)),
        ("fig7", scenarios::fig7(false)),
    ];
    let mut workloads = Vec::new();
    for (name, mut sc) in shapes {
        sc.duration = SimDuration::from_secs(sim_secs);
        let (wall, events) = best_of(iters, || {
            let r = run(&sc);
            r.shard_events.iter().sum::<u64>()
        });
        let events_per_sec = events as f64 / wall;
        println!(
            "engine_throughput/{name}: {events} events in {wall:.3}s = {events_per_sec:.0} events/sec"
        );
        workloads.push(Workload {
            name,
            sim_secs,
            events,
            events_per_sec,
        });
    }

    // ---- hot-path replay: wheel + slab vs pre-PR heap + BTreeMap ----
    let steps = if quick { 1_000_000 } else { 4_000_000 };
    let ops = fig2_shaped_schedule(1_000, steps);
    let (new_wall, (new_pops, new_sum)) = best_of(iters, || replay_wheel_slab(&ops));
    let (old_wall, (old_pops, old_sum)) = best_of(iters, || replay_heap_btreemap(&ops));
    assert_eq!(
        (new_pops, new_sum),
        (old_pops, old_sum),
        "timing wheel diverged from the reference heap on the replay schedule"
    );
    let new_rate = new_pops as f64 / new_wall;
    let old_rate = old_pops as f64 / old_wall;
    let speedup = new_rate / old_rate;
    println!(
        "engine_throughput/hot_path_replay: wheel+slab {new_rate:.0} ev/s, pre-PR heap+btreemap {old_rate:.0} ev/s, speedup {speedup:.2}x"
    );

    // ---- BENCH_engine.json at the workspace root ----
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"speakup-bench-engine/1\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"sim_secs\": {}, \"events\": {}, \"events_per_sec\": {:.0}}}",
            w.name, w.sim_secs, w.events, w.events_per_sec
        );
        json.push_str(if i + 1 < workloads.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // End-to-end speedups vs the frozen pre-wheel baseline are only
    // meaningful profile-matched (full vs full); quick runs emit null.
    let e2e = |name: &str, baseline: f64| -> String {
        if quick {
            return "null".into();
        }
        workloads
            .iter()
            .find(|w| w.name == name)
            .map_or("null".into(), |w| {
                format!("{:.2}", w.events_per_sec / baseline)
            })
    };
    let _ = writeln!(
        json,
        "  \"pre_pr_heap_engine\": {{\"measured_at\": \"commit 73cde59, full profile\", \"fig2_events_per_sec\": {PRE_PR_FIG2_EVENTS_PER_SEC:.0}, \"fig7_events_per_sec\": {PRE_PR_FIG7_EVENTS_PER_SEC:.0}, \"fig2_end_to_end_speedup\": {}, \"fig7_end_to_end_speedup\": {}}},",
        e2e("fig2", PRE_PR_FIG2_EVENTS_PER_SEC),
        e2e("fig7", PRE_PR_FIG7_EVENTS_PER_SEC)
    );
    let _ = writeln!(
        json,
        "  \"hot_path_replay\": {{\"schedule_pops\": {new_pops}, \"wheel_slab_events_per_sec\": {new_rate:.0}, \"heap_btreemap_events_per_sec\": {old_rate:.0}, \"speedup\": {speedup:.2}}}"
    );
    json.push_str("}\n");
    // The committed BENCH_engine.json is the full-profile baseline future
    // PRs diff against; `--quick` runs (CI, local smoke) are measured
    // under an incomparable profile and go to a sibling file so they can
    // never clobber or masquerade as the baseline.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json")
    };
    std::fs::write(path, &json).expect("write BENCH_engine json");
    println!("engine_throughput: wrote {path}");
}
