//! Figures 2–5 and §7.4 at reduced scale.
//!
//! Each benchmark runs a shortened (15 s simulated) version of the
//! corresponding experiment and asserts its paper-shape property, so
//! `cargo bench` both times the harness and re-validates the series. The
//! full-length (600 s) series come from the `speakup` driver
//! (`speakup run fig2|fig3|min_capacity`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::{fig2, fig3};
use speakup_net::time::SimDuration;
use std::hint::black_box;

const SECS: u64 = 15;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_allocation_vs_bandwidth_fraction");
    g.sample_size(10);
    for f in [0.1f64, 0.5, 0.9] {
        g.bench_with_input(BenchmarkId::new("with_speakup", f), &f, |b, &f| {
            b.iter(|| {
                let s = fig2(f, Mode::Auction).duration(SimDuration::from_secs(SECS));
                let r = speakup_exp::run(&s);
                // Shape: within striking distance of the ideal line f.
                assert!(
                    (r.good_fraction() - f).abs() < 0.25,
                    "f={f}: {}",
                    r.good_fraction()
                );
                black_box(r.good_fraction())
            })
        });
        g.bench_with_input(BenchmarkId::new("without_speakup", f), &f, |b, &f| {
            b.iter(|| {
                let s = fig2(f, Mode::Off).duration(SimDuration::from_secs(SECS));
                let r = speakup_exp::run(&s);
                // Shape: far below the ideal line (except trivially at f→1).
                if f <= 0.5 {
                    assert!(r.good_fraction() < f * 0.7, "f={f}: {}", r.good_fraction());
                }
                black_box(r.good_fraction())
            })
        });
    }
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_provisioning_regimes");
    g.sample_size(10);
    for cap in [50.0f64, 100.0, 200.0] {
        g.bench_with_input(BenchmarkId::new("on", cap as u64), &cap, |b, &cap| {
            b.iter(|| {
                let s = fig3(cap, Mode::Auction).duration(SimDuration::from_secs(SECS));
                let r = speakup_exp::run(&s);
                if cap >= 200.0 {
                    assert!(
                        r.good_served_fraction() > 0.9,
                        "{}",
                        r.good_served_fraction()
                    );
                } else {
                    assert!(
                        (0.3..0.65).contains(&r.good_fraction()),
                        "{}",
                        r.good_fraction()
                    );
                }
                black_box(r.good_fraction())
            })
        });
    }
    g.finish();
}

fn bench_fig4_fig5_prices(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fig5_latency_and_price");
    g.sample_size(10);
    for cap in [50.0f64, 200.0] {
        g.bench_with_input(
            BenchmarkId::new("price_and_payment_time", cap as u64),
            &cap,
            |b, &cap| {
                b.iter(|| {
                    let s = fig3(cap, Mode::Auction).duration(SimDuration::from_secs(SECS));
                    let ub = s.price_upper_bound();
                    let r = speakup_exp::run(&s);
                    assert!(r.price_good.mean() <= ub * 1.05, "price above bound");
                    black_box((r.price_good.mean(), r.good.payment_time.mean()))
                })
            },
        );
    }
    g.finish();
}

fn bench_min_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec7_4_adversarial_advantage");
    g.sample_size(10);
    g.bench_function("sweep_c100_vs_c200", |b| {
        b.iter(|| {
            let lo = speakup_exp::run(
                &fig3(100.0, Mode::Auction).duration(SimDuration::from_secs(SECS)),
            );
            let hi = speakup_exp::run(
                &fig3(200.0, Mode::Auction).duration(SimDuration::from_secs(SECS)),
            );
            // Shape: c_id is not quite enough; generous capacity is.
            assert!(lo.good_served_fraction() < hi.good_served_fraction());
            black_box((lo.good_served_fraction(), hi.good_served_fraction()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig4_fig5_prices,
    bench_min_capacity
);
criterion_main!(benches);
