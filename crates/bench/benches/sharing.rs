//! Figures 8–9 (§7.6–§7.7): shared bottlenecks, at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speakup_exp::scenarios::{fig8, fig9};
use speakup_net::time::SimDuration;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_shared_bottleneck");
    g.sample_size(10);
    for n_good in [5usize, 25] {
        g.bench_with_input(
            BenchmarkId::new("good_behind_l", n_good),
            &n_good,
            |b, &n| {
                b.iter(|| {
                    let s = fig8(n).duration(SimDuration::from_secs(20));
                    let r = speakup_exp::run(&s);
                    let (mut bg, mut bb) = (0u64, 0u64);
                    for pc in &r.per_client {
                        if pc.behind_bottleneck {
                            if pc.is_bad {
                                bb += pc.served;
                            } else {
                                bg += pc.served;
                            }
                        }
                    }
                    let share = bg as f64 / (bg + bb).max(1) as f64;
                    let ideal = n as f64 / 30.0;
                    // Shape: good behind the bottleneck get less than their
                    // headcount share (bad hog the link)...
                    assert!(share < ideal, "good share {share} vs ideal {ideal}");
                    // ...but not nothing when they are the majority.
                    if n == 25 {
                        assert!(share > 0.2, "good share {share}");
                    }
                    black_box(share)
                })
            },
        );
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_bystander_latency");
    g.sample_size(10);
    for size_kb in [1u64, 64] {
        g.bench_with_input(
            BenchmarkId::new("download_inflation", size_kb),
            &size_kb,
            |b, &kb| {
                b.iter(|| {
                    let on = speakup_exp::run(
                        &fig9(kb << 10, true).duration(SimDuration::from_secs(30)),
                    );
                    let off = speakup_exp::run(
                        &fig9(kb << 10, false).duration(SimDuration::from_secs(30)),
                    );
                    let l_on = on.wget_latencies.expect("wget");
                    let l_off = off.wget_latencies.expect("wget");
                    let inflation = l_on.mean() / l_off.mean().max(1e-9);
                    assert!(
                        inflation > 1.5,
                        "speak-up should inflate {kb}KB downloads: {inflation}"
                    );
                    black_box(inflation)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig8, bench_fig9);
criterion_main!(benches);
