//! Property battery for the replicated-thinner digest machinery.
//!
//! Two obligations back the epoch bid-delta design:
//!
//! 1. [`DigestBoard::merge`] must be a join: commutative, associative,
//!    and idempotent over *any* delivery order of any set of digests.
//!    That is what lets the simulation ship digests as ordinary delayed
//!    control packets with no ordering or exactly-once guarantees —
//!    every replica's board converges to the same per-replica
//!    max-epoch state no matter how the network interleaved delivery.
//! 2. The gated [`AuctionFrontEnd`] must *converge to the single
//!    thinner* as the sync period goes to zero: R replicas, each seeing
//!    only its own clients but refreshed with perfectly fresh peer
//!    views before every decision, must admit exactly the sequence one
//!    thinner seeing every client admits.
//!
//! Uses the vendored proptest stub: deterministic generation, no
//! shrinking — a failure reports the case number for replay.

use proptest::prelude::*;
use speakup_core::thinner::{
    AuctionConfig, AuctionFrontEnd, BidDigest, DigestBoard, FrontEnd, RemoteView,
};
use speakup_core::types::{ClientId, Directive, RequestId, RequestKey};
use speakup_net::time::SimTime;

/// The canonical digest a replica publishes at an epoch: a pure
/// function of `(replica, epoch)`, exactly as in the real system, where
/// a digest's content is determined by the publisher's state at the
/// epoch boundary. The merge tie rule (equal epochs keep the
/// incumbent) is only sound under this determinism.
fn canonical(replica: u32, epoch: u64) -> BidDigest {
    let mut d = BidDigest::new(replica);
    d.epoch = epoch;
    for k in 0..=epoch {
        d.note_payment(1 + 1_000 * u64::from(replica) + 137 * k);
    }
    d.admissions = epoch * 3 + u64::from(replica);
    d.contenders = epoch % 5;
    d.busy = (epoch + u64::from(replica)).is_multiple_of(2);
    d.top_paid = 10_000 + 17 * epoch;
    d.top_seq = epoch;
    d.has_top = !epoch.is_multiple_of(3);
    d.going_rate = 500 * epoch;
    d.expiry_horizon = if epoch.is_multiple_of(4) {
        u64::MAX
    } else {
        1_000_000 * epoch
    };
    d
}

/// Deterministic shuffle of `items` keyed by `seed` (splitmix-style
/// index mixing; the stub has no `Shuffle` strategy).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

fn board_state(b: &DigestBoard) -> Vec<BidDigest> {
    b.entries().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_converges_over_any_delivery_order(
        publishes in proptest::collection::vec((0u32..5, 0u64..8), 1..48),
        seed in any::<u64>(),
        dup in 0usize..8,
        split in any::<u64>(),
    ) {
        // Delivery order A: as published. Order B: shuffled, with a
        // prefix redelivered (duplicates model the epoch cadence
        // re-sending cumulative state).
        let a_order: Vec<BidDigest> =
            publishes.iter().map(|&(r, e)| canonical(r, e)).collect();
        let mut b_order = a_order.clone();
        let redelivered: Vec<BidDigest> =
            b_order.iter().take(dup).copied().collect();
        b_order.extend(redelivered);
        shuffle(&mut b_order, seed);

        let mut board_a = DigestBoard::new();
        for d in &a_order {
            board_a.merge(*d);
        }
        let mut board_b = DigestBoard::new();
        for d in &b_order {
            board_b.merge(*d);
        }
        // Commutativity + idempotence: same converged state.
        prop_assert_eq!(board_state(&board_a), board_state(&board_b));

        // Associativity: folding through an intermediate board at an
        // arbitrary split point changes nothing.
        let cut = (split as usize) % (b_order.len() + 1);
        let mut left = DigestBoard::new();
        for d in &b_order[..cut] {
            left.merge(*d);
        }
        let mut right = DigestBoard::new();
        for d in &b_order[cut..] {
            right.merge(*d);
        }
        left.merge_board(&right);
        prop_assert_eq!(board_state(&board_a), board_state(&left));

        // Merging a board into itself is a no-op.
        let snapshot = board_state(&left);
        let copy = left.clone();
        left.merge_board(&copy);
        prop_assert_eq!(board_state(&left), snapshot);

        // The board keeps exactly the max epoch seen per replica.
        for d in board_a.entries() {
            let max_epoch = publishes
                .iter()
                .filter(|&&(r, _)| r == d.replica)
                .map(|&(_, e)| e)
                .max()
                .expect("entry implies a publish");
            prop_assert_eq!(d.epoch, max_epoch);
            prop_assert_eq!(*d, canonical(d.replica, max_epoch));
        }
    }

    #[test]
    fn fresh_views_reproduce_the_single_thinner_admissions(
        ops in proptest::collection::vec((any::<u8>(), 0u32..12), 4..80),
        replicas in 2u32..5,
    ) {
        // One oracle front end sees every client; R gated replicas each
        // see only their own (client % R). Before every decision the
        // replicas get perfectly fresh peer views — the sync-period → 0
        // limit — and the union of their admissions must be the
        // oracle's admission sequence, element for element.
        //
        // Every contender pays a globally unique amount immediately on
        // registration: per-replica `seq` counters are not comparable
        // across replicas, so equality ties (which the single thinner
        // breaks by global arrival order) are excluded by construction —
        // at most one zero-paid contender can exist at any instant.
        let r_count = replicas as usize;
        let mut oracle = AuctionFrontEnd::new(AuctionConfig::default());
        let mut fleet: Vec<AuctionFrontEnd> = (0..r_count)
            .map(|r| {
                let mut fe = AuctionFrontEnd::new(AuctionConfig::default());
                fe.set_replica(u32::try_from(r).expect("small fleet"));
                fe
            })
            .collect();

        let refresh = |fleet: &mut Vec<AuctionFrontEnd>| {
            let digests: Vec<BidDigest> = fleet
                .iter_mut()
                .enumerate()
                .map(|(r, fe)| {
                    let mut d =
                        BidDigest::new(u32::try_from(r).expect("small fleet"));
                    d.busy = fe.is_busy();
                    d.contenders =
                        u64::try_from(fe.contender_count()).expect("small crowd");
                    if let Some((paid, seq)) = fe.top_bid() {
                        d.top_paid = paid;
                        d.top_seq = seq;
                        d.has_top = true;
                    }
                    d
                })
                .collect();
            let mut board = DigestBoard::new();
            for d in &digests {
                board.merge(*d);
            }
            for (r, fe) in fleet.iter_mut().enumerate() {
                let view: RemoteView =
                    board.remote_view(u32::try_from(r).expect("small fleet"));
                fe.set_remote(Some(view));
            }
        };

        let mut oracle_log: Vec<RequestKey> = Vec::new();
        let mut fleet_log: Vec<RequestKey> = Vec::new();
        let log_admissions = |out: &[Directive], log: &mut Vec<RequestKey>| {
            for d in out {
                if let Directive::Admit(k) = d {
                    log.push(*k);
                }
            }
        };
        // Settle: with fresh views exactly one replica (the global top
        // holder) can win each idle slot; iterate to let a deferred
        // admission land after the views refresh.
        let settle = |fleet: &mut Vec<AuctionFrontEnd>,
                      now: SimTime,
                      log: &mut Vec<RequestKey>| {
            loop {
                refresh(fleet);
                let mut out = Vec::new();
                for fe in fleet.iter_mut() {
                    fe.try_auction(now, &mut out);
                }
                if out.is_empty() {
                    break;
                }
                log_admissions(&out, log);
            }
        };

        let mut next_req: Vec<u64> = vec![0; 12];
        let mut live: Vec<Option<RequestKey>> = vec![None; 12];
        let mut serving: Option<RequestKey> = None;
        let mut unique_amount = 0u64;
        for (step, &(kind, client)) in ops.iter().enumerate() {
            let now = SimTime::from_nanos(1_000_000 * (step as u64 + 1));
            let c = client as usize;
            let home = c % r_count;
            match kind % 3 {
                // A client without a pending request issues one and
                // immediately pays a globally unique amount.
                0 | 1 => {
                    if live[c].is_some() {
                        continue;
                    }
                    let key = RequestKey::new(
                        ClientId(client),
                        RequestId(next_req[c]),
                    );
                    next_req[c] += 1;
                    live[c] = Some(key);
                    let mut out = Vec::new();
                    oracle.on_request(now, key, &mut out);
                    log_admissions(&out, &mut oracle_log);
                    refresh(&mut fleet);
                    let mut out = Vec::new();
                    fleet[home].on_request(now, key, &mut out);
                    log_admissions(&out, &mut fleet_log);
                    settle(&mut fleet, now, &mut fleet_log);

                    unique_amount += 1;
                    let bytes = 1_000 + 997 * unique_amount;
                    let mut out = Vec::new();
                    oracle.on_payment(now, key, bytes, &mut out);
                    fleet[home].on_payment(now, key, bytes, &mut out);
                    prop_assert!(out.is_empty(), "payment never admits");
                }
                // The server finishes its current request.
                _ => {
                    let Some(done) = oracle_log.last().copied() else {
                        continue;
                    };
                    if serving == Some(done) {
                        continue; // already completed this admission
                    }
                    serving = Some(done);
                    live[done.client.0 as usize] = None;
                    let mut out = Vec::new();
                    oracle.on_server_done(now, done, &mut out);
                    log_admissions(&out, &mut oracle_log);
                    let home_r = done.client.0 as usize % r_count;
                    refresh(&mut fleet);
                    let mut out = Vec::new();
                    fleet[home_r].on_server_done(now, done, &mut out);
                    log_admissions(&out, &mut fleet_log);
                    settle(&mut fleet, now, &mut fleet_log);
                }
            }
            prop_assert_eq!(&oracle_log, &fleet_log, "diverged at step {}", step);
        }
        prop_assert_eq!(oracle.is_busy(), fleet.iter().any(|fe| fe.is_busy()));
        let oracle_contenders = oracle.contender_count();
        let fleet_contenders: usize =
            fleet.iter().map(|fe| fe.contender_count()).sum();
        prop_assert_eq!(oracle_contenders, fleet_contenders);
    }
}
