//! # speakup-core — "DDoS Defense by Offense" (SIGCOMM 2006), the system
//!
//! This crate implements **speak-up**: a defense against application-level
//! distributed denial-of-service in which the attacked server's front-end
//! (the *thinner*) **encourages** all clients to send more traffic, on the
//! theory that bad clients are already saturating their upload bandwidth
//! while good clients have plenty to spare. Bandwidth becomes a currency;
//! the server's scarce computation goes to whoever pays the most of it.
//!
//! The crate is transport-agnostic: every mechanism is a pure state
//! machine driven by events and emitting [`types::Directive`]s, so the
//! same thinner runs over the packet-level simulator (`speakup-exp`), real
//! TCP sockets (`speakup-proxy`), or a bare test harness.
//!
//! ## Map of the paper
//!
//! | paper | here |
//! |---|---|
//! | §3.1 goals & formulas | [`analysis`] (`ideal_good_service`, `ideal_provisioning`) |
//! | §3.2 random drops + aggressive retries | [`thinner::RetryFrontEnd`] |
//! | §3.3 payment channel + virtual auction | [`thinner::AuctionFrontEnd`] |
//! | §3.4 robustness / Theorem 3.1 | [`analysis::play_auction_game`] |
//! | §5 heterogeneous requests | [`thinner::QuantumFrontEnd`] |
//! | §6 emulated server `U[0.9/c, 1.1/c]` | [`server::EmulatedServer`] |
//! | §7.1 client model (λ, w, backlog, 10 s denials) | [`client`] |
//! | baseline "without speak-up" | [`thinner::NoDefense`] |
//! | §8.1 detect-and-block comparison | [`thinner::ProfileFrontEnd`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod client;
pub mod cohort;
pub mod metrics;
pub mod server;
pub mod thinner;
pub mod types;

pub use client::{ClientProfile, ClientStats, RequestTracker};
pub use cohort::CohortTracker;
pub use server::EmulatedServer;
pub use thinner::{
    AuctionConfig, AuctionFrontEnd, FrontEnd, NoDefense, ProfileConfig, ProfileFrontEnd,
    QuantumConfig, QuantumFrontEnd, RetryConfig, RetryFrontEnd,
};
pub use types::{ClientId, Directive, RequestId, RequestKey};
