//! Identifiers and request vocabulary shared across the crate.

use std::fmt;

/// Identifies a client as seen by the thinner.
///
/// Note the paper's threat model (§2.2): clients can spoof and NAT can
/// merge them, so no speak-up mechanism is allowed to key fairness
/// decisions on this id. It exists for *measurement* (classifying served
/// requests as good/bad) and for correlating a request with its payment
/// channel, mirroring the `id` field the prototype puts in both HTTP
/// requests (§6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

/// A client-local request sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// Globally identifies a request: (client, per-client sequence).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestKey {
    /// The requesting client (for correlation/measurement only).
    pub client: ClientId,
    /// The client-local request id.
    pub req: RequestId,
}

impl RequestKey {
    /// Pair a client with a request id.
    pub fn new(client: ClientId, req: RequestId) -> Self {
        RequestKey { client, req }
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for RequestKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.req.0)
    }
}

/// What the thinner wants its surrounding transport/driver to do.
///
/// The thinner front ends are pure state machines (in the style of
/// event-driven network stacks): they never touch sockets, flows, or the
/// server directly. Every input event returns directives that the driver
/// executes against whatever substrate hosts it — the packet simulator in
/// `speakup-exp`, real TCP sockets in `speakup-proxy`, or a bare test
/// harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Directive {
    /// Dispatch this request to the server (it won admission).
    Admit(RequestKey),
    /// Ask the client to start (or keep) paying: open a payment channel
    /// and stream dummy bytes (§3.3), or stream retries (§3.2).
    Encourage(RequestKey),
    /// Reject the request with no feedback. The baseline ("no speak-up")
    /// behaviour for an overloaded server.
    Drop(RequestKey),
    /// Terminate the request's payment channel (it won the auction, or the
    /// channel timed out).
    TerminateChannel(RequestKey),
    /// §5 only: suspend the currently executing request on the server.
    Suspend(RequestKey),
    /// §5 only: resume a previously suspended request.
    Resume(RequestKey),
    /// §5 only: abort a request that overstayed its suspension.
    AbortRequest(RequestKey),
}
