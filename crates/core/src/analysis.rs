//! The paper's analytical results, executable.
//!
//! * The design-goal allocation and provisioning formulas (§3.1).
//! * Theorem 3.1 (§3.4) as a playable auction game: a good client that
//!   continuously delivers an `ε` fraction of the thinner's average
//!   inbound bandwidth receives at least `ε/(2−ε) ≥ ε/2` of the service,
//!   *no matter how* the adversary times or divides its bandwidth. The
//!   game lets tests and benches try to falsify the bound with assorted
//!   adversarial schedules.

use speakup_net::rng::Pcg32;

/// §3.1 design goal: with good demand `g`, good bandwidth `G`, bad
/// bandwidth `B` (same units), and capacity `c`, the server should process
/// good requests at `min(g, c·G/(G+B))`.
pub fn ideal_good_service(g: f64, big_g: f64, big_b: f64, c: f64) -> f64 {
    if big_g <= 0.0 {
        return 0.0;
    }
    g.min(c * big_g / (big_g + big_b))
}

/// §3.1 idealized provisioning requirement: `c_id = g(1 + B/G)` — the
/// smallest capacity at which the good clients are fully served under
/// exact bandwidth-proportional allocation.
pub fn ideal_provisioning(g: f64, big_g: f64, big_b: f64) -> f64 {
    assert!(big_g > 0.0, "good clients need some bandwidth");
    g * (1.0 + big_b / big_g)
}

/// The fraction of the server the good clients capture under
/// bandwidth-proportional allocation: `G/(G+B)`.
pub fn proportional_share(big_g: f64, big_b: f64) -> f64 {
    if big_g + big_b <= 0.0 {
        return 0.0;
    }
    big_g / (big_g + big_b)
}

/// §3's motivating arithmetic: the no-defense share `g/(g+B)` vs the
/// speak-up share `G/(G+B)` (bandwidths in request/s units).
pub fn no_defense_share(g: f64, big_b: f64) -> f64 {
    if g + big_b <= 0.0 {
        return 0.0;
    }
    g / (g + big_b)
}

/// Theorem 3.1's guarantee: a continuous `ε`-fraction bidder wins at least
/// `ε/(2−ε)` of the auctions (the paper quotes the weaker `ε/2`).
pub fn theorem_bound(eps: f64) -> f64 {
    assert!((0.0..=1.0).contains(&eps));
    eps / (2.0 - eps)
}

/// The fluctuating-service extension (§3.4): service intervals within
/// `[(1−δ)/c, (1+δ)/c]` weaken the guarantee to `(1−2δ)·ε/2`.
pub fn theorem_bound_jittered(eps: f64, delta: f64) -> f64 {
    assert!((0.0..=0.5).contains(&delta));
    (1.0 - 2.0 * delta) * eps / 2.0
}

/// How the adversary schedules its spending in the auction game.
#[derive(Clone, Debug)]
pub enum AdversaryStrategy {
    /// Spend the per-round budget every round (naive, non-adaptive).
    Uniform,
    /// Watch X's accumulated bid and spend exactly enough to beat it,
    /// whenever the saved budget allows — the pessimal schedule from the
    /// proof of Theorem 3.1 (requires implausibly deep information, as
    /// the paper notes).
    JustEnough,
    /// Save for `period − 1` rounds, then dump everything.
    Bursty {
        /// Rounds between dumps.
        period: usize,
    },
    /// Spend an i.i.d. uniform random fraction of the saved budget.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Result of playing the auction game.
#[derive(Clone, Copy, Debug)]
pub struct GameOutcome {
    /// Auctions held.
    pub rounds: u64,
    /// Auctions won by the ε-bidder X.
    pub x_wins: u64,
    /// `x_wins / rounds`.
    pub x_fraction: f64,
    /// Total the adversary spent (for budget sanity checks).
    pub adversary_spent: f64,
}

/// Play `rounds` auctions whose intervals fluctuate within `±delta` of
/// regular (the §3.4 extension: service times in `[(1−δ)/c, (1+δ)/c]`
/// weaken the guarantee to `(1−2δ)·ε/2`). X's per-round contribution
/// scales with the interval length, since it pays at constant rate; the
/// adversary's budget does too, but it may *time* its spending.
pub fn play_auction_game_jittered(
    eps: f64,
    rounds: u64,
    strategy: &AdversaryStrategy,
    delta: f64,
    seed: u64,
) -> GameOutcome {
    assert!((0.0..=0.5).contains(&delta));
    let mut interval_rng = Pcg32::new(seed, 0x1a77e4);
    play_auction_game_inner(eps, rounds, strategy, |_| {
        1.0 + delta * (2.0 * interval_rng.f64() - 1.0)
    })
}

/// Play `rounds` regular-interval auctions (Theorem 3.1's setting).
///
/// Per round the total inbound bandwidth is 1 dollar: X contributes `eps`,
/// the adversary receives `1 − eps` of new budget and bids according to
/// its strategy. The auction admits the highest accumulated bid (ties go
/// to the adversary — pessimistically for X) and resets the winner's
/// accumulation, mirroring the §3.3 virtual auction where the winner's
/// channel is terminated.
pub fn play_auction_game(eps: f64, rounds: u64, strategy: &AdversaryStrategy) -> GameOutcome {
    play_auction_game_inner(eps, rounds, strategy, |_| 1.0)
}

fn play_auction_game_inner(
    eps: f64,
    rounds: u64,
    strategy: &AdversaryStrategy,
    mut interval: impl FnMut(u64) -> f64,
) -> GameOutcome {
    assert!((0.0..=1.0).contains(&eps));
    let mut x_acc = 0.0_f64;
    let mut adv_acc = 0.0_f64; // adversary's standing bid
    let mut adv_reserve = 0.0_f64; // budget received but not yet bid
    let mut x_wins = 0u64;
    let mut adv_spent = 0.0_f64;
    let mut rng = Pcg32::seeded(match strategy {
        AdversaryStrategy::Random { seed } => *seed,
        _ => 0,
    });

    for round in 0..rounds {
        let dt = interval(round);
        x_acc += eps * dt;
        adv_reserve += (1.0 - eps) * dt;
        // Adversary moves budget from reserve into its standing bid.
        let bid_more = match strategy {
            AdversaryStrategy::Uniform => adv_reserve,
            AdversaryStrategy::JustEnough => {
                let need = (x_acc - adv_acc + eps * 1e-6).max(0.0);
                need.min(adv_reserve)
            }
            AdversaryStrategy::Bursty { period } => {
                let period = (*period).max(1) as u64;
                if round % period == period - 1 {
                    adv_reserve
                } else {
                    0.0
                }
            }
            AdversaryStrategy::Random { .. } => rng.f64() * adv_reserve,
        };
        adv_acc += bid_more;
        adv_reserve -= bid_more;

        // Hold the auction: highest accumulated bid wins; ties favour the
        // adversary.
        if x_acc > adv_acc {
            x_wins += 1;
            x_acc = 0.0;
        } else {
            adv_spent += adv_acc;
            adv_acc = 0.0;
        }
    }

    GameOutcome {
        rounds,
        x_wins,
        x_fraction: if rounds == 0 {
            0.0
        } else {
            x_wins as f64 / rounds as f64
        },
        adversary_spent: adv_spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_formulas_match_paper_examples() {
        // §3.1: B = G ⇒ required provisioning factor 2 (c ≥ 2g).
        assert_eq!(ideal_provisioning(50.0, 50.0, 50.0), 100.0);
        // §2.1: spare capacity 90% ⇒ good need 1/9 of bad bandwidth.
        // g = 0.1c; with G = B/9: cid = 0.1c(1+9) = c. Exactly provisioned.
        let c = 1000.0;
        let g = 0.1 * c;
        let cid = ideal_provisioning(g, 1.0, 9.0);
        assert!((cid - c).abs() < 1e-9);
        // Allocation: capped by demand.
        assert_eq!(ideal_good_service(50.0, 50.0, 50.0, 200.0), 50.0);
        assert_eq!(ideal_good_service(50.0, 50.0, 50.0, 50.0), 25.0);
        assert_eq!(proportional_share(25.0, 75.0), 0.25);
    }

    #[test]
    fn no_defense_share_is_tiny_under_attack() {
        // Figure 1's point: g ≪ B ⇒ share g/(g+B) is small.
        let share = no_defense_share(50.0, 950.0);
        assert!((share - 0.05).abs() < 1e-12);
    }

    #[test]
    fn theorem_bound_values() {
        assert!((theorem_bound(0.5) - (0.5 / 1.5)).abs() < 1e-12);
        assert!(theorem_bound(0.2) >= 0.1); // ≥ ε/2
        assert_eq!(theorem_bound(0.0), 0.0);
        assert_eq!(theorem_bound(1.0), 1.0);
        assert!((theorem_bound_jittered(0.4, 0.1) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn uniform_adversary_gives_x_its_proportional_share() {
        // Against a non-adaptive adversary X does far better than ε/2:
        // it wins about every 1/ε-th auction once its bid accumulates.
        let eps = 0.2;
        let o = play_auction_game(eps, 100_000, &AdversaryStrategy::Uniform);
        assert!(o.x_fraction >= eps / 2.0, "fraction {}", o.x_fraction);
        // With uniform spending the adversary bids 0.8/round; X accumulates
        // 0.2/round and wins roughly every 5th round.
        assert!(
            (o.x_fraction - eps).abs() < 0.05,
            "fraction {}",
            o.x_fraction
        );
    }

    #[test]
    fn just_enough_adversary_cannot_break_the_bound() {
        for &eps in &[0.05, 0.1, 0.2, 0.3, 0.5] {
            let o = play_auction_game(eps, 200_000, &AdversaryStrategy::JustEnough);
            let bound = theorem_bound(eps);
            assert!(
                o.x_fraction >= bound * 0.98, // discretization slack
                "eps {eps}: fraction {} < bound {bound}",
                o.x_fraction
            );
        }
    }

    #[test]
    fn just_enough_is_worse_for_x_than_uniform() {
        let eps = 0.2;
        let uni = play_auction_game(eps, 100_000, &AdversaryStrategy::Uniform);
        let adv = play_auction_game(eps, 100_000, &AdversaryStrategy::JustEnough);
        assert!(
            adv.x_fraction < uni.x_fraction,
            "adaptive adversary should hurt X more ({} vs {})",
            adv.x_fraction,
            uni.x_fraction
        );
    }

    #[test]
    fn bursty_and_random_respect_bound() {
        for strategy in [
            AdversaryStrategy::Bursty { period: 3 },
            AdversaryStrategy::Bursty { period: 10 },
            AdversaryStrategy::Random { seed: 99 },
        ] {
            for &eps in &[0.1, 0.25, 0.5] {
                let o = play_auction_game(eps, 100_000, &strategy);
                assert!(
                    o.x_fraction >= eps / 2.0 * 0.98,
                    "{strategy:?} eps {eps}: {}",
                    o.x_fraction
                );
            }
        }
    }

    #[test]
    fn jittered_game_respects_weakened_bound() {
        for &delta in &[0.1, 0.3, 0.5] {
            for &eps in &[0.1, 0.3, 0.5] {
                let o = play_auction_game_jittered(
                    eps,
                    100_000,
                    &AdversaryStrategy::JustEnough,
                    delta,
                    9,
                );
                let weak = theorem_bound_jittered(eps, delta);
                assert!(
                    o.x_fraction >= weak * 0.97,
                    "eps {eps} delta {delta}: {} < {weak}",
                    o.x_fraction
                );
            }
        }
    }

    #[test]
    fn jitter_never_helps_x_much() {
        // Fluctuating service can only hurt the constant-rate bidder.
        let eps = 0.3;
        let flat = play_auction_game(eps, 100_000, &AdversaryStrategy::JustEnough);
        let jit = play_auction_game_jittered(eps, 100_000, &AdversaryStrategy::JustEnough, 0.4, 11);
        assert!(jit.x_fraction <= flat.x_fraction * 1.1 + 0.01);
    }

    #[test]
    fn zero_eps_never_wins() {
        let o = play_auction_game(0.0, 1000, &AdversaryStrategy::Uniform);
        assert_eq!(o.x_wins, 0);
    }

    #[test]
    fn full_eps_always_wins() {
        let o = play_auction_game(1.0, 1000, &AdversaryStrategy::JustEnough);
        assert_eq!(o.x_wins, 1000);
    }
}
