//! Experiment-level aggregates: how the server was divided between
//! client classes, and the payment costs of service.

use crate::client::ClientStats;
use speakup_net::trace::Samples;

/// Aggregated outcome for one client class (good or bad).
#[derive(Clone, Debug, Default)]
pub struct ClassReport {
    /// Clients in the class.
    pub clients: usize,
    /// Sum of per-client generated requests.
    pub generated: u64,
    /// Sum of per-client issued requests.
    pub issued: u64,
    /// Sum of per-client served requests.
    pub served: u64,
    /// Sum of all denial kinds.
    pub denied: u64,
    /// End-to-end latency of served requests, seconds.
    pub latency: Samples,
    /// Payment uploaded per *served* request, bytes ("the price", Fig 5).
    pub payment_bytes: Samples,
    /// Time spent uploading dummy bytes per served request, seconds (Fig 4).
    pub payment_time: Samples,
}

impl ClassReport {
    /// Fold one client's stats into the class.
    pub fn absorb(&mut self, stats: &ClientStats) {
        self.absorb_weighted(stats, 1);
    }

    /// Fold a cohort's aggregated stats into the class, counting it as
    /// `clients` population members.
    pub fn absorb_weighted(&mut self, stats: &ClientStats, clients: usize) {
        self.clients += clients;
        self.generated += stats.generated;
        self.issued += stats.issued;
        self.served += stats.served;
        self.denied += stats.denied();
        for &v in stats.latency.values() {
            self.latency.push(v);
        }
    }

    /// Fraction of generated requests that were served.
    pub fn served_fraction(&self) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        self.served as f64 / self.generated as f64
    }
}

/// How the server's completed work divided between classes.
#[derive(Clone, Debug, Default)]
pub struct Allocation {
    /// Requests (or §5 quanta) completed for good clients.
    pub good: u64,
    /// Requests (or §5 quanta) completed for bad clients.
    pub bad: u64,
}

impl Allocation {
    /// Fraction of the server's completed work that went to good clients.
    pub fn good_fraction(&self) -> f64 {
        let total = self.good + self.bad;
        if total == 0 {
            return 0.0;
        }
        self.good as f64 / total as f64
    }

    /// Fraction that went to bad clients.
    pub fn bad_fraction(&self) -> f64 {
        let total = self.good + self.bad;
        if total == 0 {
            return 0.0;
        }
        self.bad as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_fractions() {
        let a = Allocation { good: 30, bad: 70 };
        assert!((a.good_fraction() - 0.3).abs() < 1e-12);
        assert!((a.bad_fraction() - 0.7).abs() < 1e-12);
        let empty = Allocation::default();
        assert_eq!(empty.good_fraction(), 0.0);
        assert_eq!(empty.bad_fraction(), 0.0);
    }

    #[test]
    fn class_report_absorbs_clients() {
        let mut report = ClassReport::default();
        let mut s1 = ClientStats {
            generated: 10,
            served: 6,
            denied_backlog: 3,
            denied_dropped: 1,
            ..Default::default()
        };
        s1.latency.push(0.5);
        let mut s2 = ClientStats {
            generated: 10,
            served: 4,
            ..Default::default()
        };
        s2.latency.push(1.5);
        report.absorb(&s1);
        report.absorb(&s2);
        assert_eq!(report.clients, 2);
        assert_eq!(report.generated, 20);
        assert_eq!(report.served, 10);
        assert_eq!(report.denied, 4);
        assert_eq!(report.served_fraction(), 0.5);
        assert_eq!(report.latency.len(), 2);
    }
}
