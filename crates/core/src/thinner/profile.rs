//! A detect-and-block comparator: per-client rate limiting ("profiling").
//!
//! The paper's taxonomy (§1, §8.1) puts the most commonly deployed
//! application-level defenses in the *detect and block* family: build a
//! profile of acceptable per-client request rates and block clients that
//! exceed it. This front end implements the rate-limiting special case —
//! a token bucket per observed client identity — so experiments can
//! reproduce the paper's argument for why speak-up exists at all:
//!
//! * against *naive* bots that hammer from fixed addresses, profiling
//!   works great (better than speak-up: the bad clients get nothing);
//! * against *spoofing* (or NATted crowds, or profile-building smart
//!   bots — §2.2, §8.1), identity-keyed defenses crumble, while the
//!   bandwidth tax does not care who you claim to be: "ironically,
//!   taxing clients is easier than identifying them" (§3.2).

use super::FrontEnd;
use crate::types::{Directive, RequestKey};
use speakup_net::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Configuration for the profiling front end.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Sustained request rate allowed per client identity, requests/s.
    pub allowed_rate: f64,
    /// Bucket depth: how many requests a client may burst.
    pub burst: f64,
    /// Queue bound for admitted requests awaiting the server.
    pub max_queue: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            allowed_rate: 3.0,
            burst: 6.0,
            max_queue: 8,
        }
    }
}

/// Counters for the profiling front end.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfileStats {
    /// Requests admitted (immediately or via the queue).
    pub admitted: u64,
    /// Requests blocked for exceeding the client's allowed rate.
    pub blocked: u64,
    /// Requests dropped because the admitted queue was full.
    pub queue_drops: u64,
    /// Distinct client identities observed.
    pub identities_seen: u64,
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    refilled: SimTime,
}

/// The profiling front end. See module docs.
pub struct ProfileFrontEnd {
    cfg: ProfileConfig,
    busy: Option<RequestKey>,
    queue: VecDeque<RequestKey>,
    buckets: BTreeMap<crate::types::ClientId, Bucket>,
    /// Counters.
    pub stats: ProfileStats,
}

impl ProfileFrontEnd {
    /// A profiling front end with the given rate policy.
    pub fn new(cfg: ProfileConfig) -> Self {
        assert!(cfg.allowed_rate > 0.0);
        ProfileFrontEnd {
            cfg,
            busy: None,
            queue: VecDeque::new(),
            buckets: BTreeMap::new(),
            stats: ProfileStats::default(),
        }
    }

    /// Current token balance for an identity (for tests).
    pub fn tokens_of(&self, client: crate::types::ClientId) -> Option<f64> {
        self.buckets.get(&client).map(|b| b.tokens)
    }

    fn take_token(&mut self, now: SimTime, client: crate::types::ClientId) -> bool {
        let cfg = self.cfg;
        let bucket = self.buckets.entry(client).or_insert_with(|| Bucket {
            tokens: cfg.burst,
            refilled: now,
        });
        // Refill at the allowed rate since the last visit.
        let dt = now.saturating_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * cfg.allowed_rate).min(cfg.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

impl FrontEnd for ProfileFrontEnd {
    fn on_request(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        if !self.buckets.contains_key(&req.client) {
            self.stats.identities_seen += 1;
        }
        if !self.take_token(now, req.client) {
            self.stats.blocked += 1;
            out.push(Directive::Drop(req));
            return;
        }
        if self.busy.is_none() {
            self.busy = Some(req);
            self.stats.admitted += 1;
            out.push(Directive::Admit(req));
        } else if self.queue.len() < self.cfg.max_queue {
            self.queue.push_back(req);
        } else {
            self.stats.queue_drops += 1;
            out.push(Directive::Drop(req));
        }
    }

    fn on_payment(
        &mut self,
        _now: SimTime,
        _req: RequestKey,
        _bytes: u64,
        _out: &mut Vec<Directive>,
    ) {
        // Profiling has no payment concept.
    }

    fn on_server_done(&mut self, _now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        assert_eq!(self.busy, Some(req), "done for a request not on the server");
        self.busy = None;
        if let Some(next) = self.queue.pop_front() {
            self.busy = Some(next);
            self.stats.admitted += 1;
            out.push(Directive::Admit(next));
        }
    }

    fn on_cancel(&mut self, _now: SimTime, req: RequestKey, _out: &mut Vec<Directive>) {
        self.queue.retain(|k| *k != req);
    }

    fn on_tick(&mut self, _now: SimTime, _out: &mut Vec<Directive>) -> Option<SimTime> {
        None
    }

    fn reset(&mut self, _now: SimTime) {
        self.busy = None;
        self.queue.clear();
        self.buckets.clear();
    }

    fn name(&self) -> &'static str {
        "profile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinner::testutil::{admitted, dropped, key, t};
    use crate::types::ClientId;

    fn fe(rate: f64, burst: f64) -> ProfileFrontEnd {
        ProfileFrontEnd::new(ProfileConfig {
            allowed_rate: rate,
            burst,
            max_queue: 4,
        })
    }

    #[test]
    fn within_profile_admitted() {
        let mut f = fe(2.0, 4.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        assert_eq!(f.stats.admitted, 1);
    }

    #[test]
    fn burst_beyond_bucket_blocked() {
        let mut f = fe(1.0, 2.0);
        let mut out = Vec::new();
        // Burst of 5 at t=0: 2 pass (bucket depth), 3 blocked.
        for i in 1..=5 {
            f.on_request(t(0), key(1, i), &mut out);
        }
        assert_eq!(f.stats.blocked, 3);
        assert_eq!(dropped(&out).len(), 3);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut f = fe(1.0, 1.0); // 1 token/s, depth 1
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        f.on_server_done(t(1), key(1, 1), &mut out);
        out.clear();
        // 10 ms later: only 0.01 tokens refilled — blocked.
        f.on_request(t(10), key(1, 2), &mut out);
        assert_eq!(f.stats.blocked, 1);
        assert_eq!(dropped(&out), vec![key(1, 2)]);
        out.clear();
        // Two seconds later: a full token is back — admitted.
        f.on_request(t(2_010), key(1, 3), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 3)]);
        assert_eq!(f.stats.blocked, 1);
    }

    #[test]
    fn independent_identities_have_independent_buckets() {
        let mut f = fe(1.0, 1.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out); // admitted (server free)
        f.on_request(t(0), key(2, 1), &mut out); // queued (has a token)
        f.on_request(t(0), key(3, 1), &mut out); // queued
        assert_eq!(f.stats.blocked, 0);
        assert_eq!(f.stats.identities_seen, 3);
        // Same identity again: no tokens left.
        f.on_request(t(1), key(1, 2), &mut out);
        assert_eq!(f.stats.blocked, 1);
    }

    #[test]
    fn queue_feeds_server() {
        let mut f = fe(10.0, 10.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        out.clear();
        f.on_server_done(t(5), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
    }

    #[test]
    fn full_queue_drops() {
        let mut f = fe(100.0, 100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out); // server
        for i in 2..=5 {
            f.on_request(t(0), key(i, 1), &mut out); // queue (max 4)
        }
        out.clear();
        f.on_request(t(0), key(9, 1), &mut out);
        assert_eq!(dropped(&out), vec![key(9, 1)]);
        assert_eq!(f.stats.queue_drops, 1);
    }

    #[test]
    fn spoofing_defeats_profiling() {
        // The §8.1 point, in miniature: an attacker presenting a fresh
        // identity per request never runs out of tokens.
        let mut f = fe(1.0, 1.0);
        let mut out = Vec::new();
        let mut blocked = 0;
        for i in 0..100u32 {
            out.clear();
            f.on_request(t(i as u64), key(1000 + i, 1), &mut out);
            blocked += dropped(&out).len();
            // Drain the server so the queue never interferes.
            if let Some(k) = admitted(&out).first() {
                f.on_server_done(t(i as u64), *k, &mut Vec::new());
            }
        }
        assert_eq!(blocked, 0, "spoofed identities sail through the profile");
        assert_eq!(f.tokens_of(ClientId(1000)), Some(0.0));
    }
}
