//! Aggregated bid deltas for replicated thinners.
//!
//! The paper notes thinners can be replicated (behind DNS round-robin,
//! §3.1) but never measures how the allocation behaves when each replica
//! sees only its own contenders. To measure that, replicas periodically
//! exchange a [`BidDigest`]: a fixed-size summary of one replica's
//! auction state — cumulative paid bytes (total and per log2 bracket),
//! admission/timeout counts, and a snapshot of the live auction (top
//! bid, contender count, next expiry horizon).
//!
//! Digests are *state-based*: each carries the replica's full cumulative
//! counters stamped with a monotone epoch, and [`DigestBoard::merge`]
//! keeps, per replica, the entry with the highest epoch. Merge is
//! therefore commutative, associative, and idempotent over any delivery
//! order (the property battery in `crates/core/tests/bid_digest_props.rs`
//! drives random reorderings), which is what lets the simulation ship
//! digests as ordinary delayed control packets without any delivery
//! guarantees beyond eventual arrival.

use speakup_net::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Number of log2 payment brackets a digest carries. Bracket `i` counts
/// payment bytes from events of size `[2^i, 2^{i+1})` (sizes `>= 2^15`
/// fold into the last bracket) — enough resolution to reconstruct a
/// price histogram across replicas without shipping per-contender state.
pub const PAID_BRACKETS: usize = 16;

/// The number of `u64` words [`BidDigest::encode`] produces. Fixed so
/// the control-lane payload can be sized without allocation surprises.
pub const DIGEST_WORDS: usize = 12 + PAID_BRACKETS;

/// The log2 bracket a payment of `bytes` falls into.
pub fn paid_bracket(bytes: u64) -> usize {
    let bits = bytes.checked_ilog2().unwrap_or(0);
    usize::try_from(bits.min(15)).expect("invariant: bracket index < 16")
}

/// One replica's aggregated auction state at an epoch boundary.
///
/// All counter fields are cumulative since the start of the run, so a
/// lost or reordered digest costs staleness, never double counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BidDigest {
    /// Which replica published this digest.
    pub replica: u32,
    /// The replica's sync epoch, strictly increasing per publish.
    pub epoch: u64,
    /// Cumulative payment bytes accepted from contenders.
    pub paid_total: u64,
    /// Cumulative requests admitted to this replica's server slice.
    pub admissions: u64,
    /// Cumulative payment channels expired by the idle timeout.
    pub timeouts: u64,
    /// Cumulative payment bytes per log2 payment-event bracket.
    pub paid_by_bracket: [u64; PAID_BRACKETS],
    /// Live contenders at publish time.
    pub contenders: u64,
    /// Whether the replica's server slice was busy at publish time.
    pub busy: bool,
    /// Highest live bid at publish time (`has_top` gates validity).
    pub top_paid: u64,
    /// Registration sequence of that bid (tie-break, local to replica).
    pub top_seq: u64,
    /// Whether `top_paid`/`top_seq` describe a live contender.
    pub has_top: bool,
    /// The replica's going rate at publish time, bytes.
    pub going_rate: u64,
    /// Earliest pending channel expiry, nanoseconds since the epoch
    /// start; `u64::MAX` when no channel can expire.
    pub expiry_horizon: u64,
}

impl BidDigest {
    /// A zeroed digest for `replica` (epoch 0, nothing seen).
    pub fn new(replica: u32) -> Self {
        BidDigest {
            replica,
            epoch: 0,
            paid_total: 0,
            admissions: 0,
            timeouts: 0,
            paid_by_bracket: [0; PAID_BRACKETS],
            contenders: 0,
            busy: false,
            top_paid: 0,
            top_seq: 0,
            has_top: false,
            going_rate: 0,
            expiry_horizon: u64::MAX,
        }
    }

    /// Record one payment event of `bytes` (delta, not cumulative).
    pub fn note_payment(&mut self, bytes: u64) {
        self.paid_total += bytes;
        self.paid_by_bracket[paid_bracket(bytes)] += bytes;
    }

    /// Serialize to the fixed [`DIGEST_WORDS`]-word wire form carried by
    /// the simulator's control lane.
    pub fn encode(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(DIGEST_WORDS);
        w.push(u64::from(self.replica));
        w.push(self.epoch);
        w.push(self.paid_total);
        w.push(self.admissions);
        w.push(self.timeouts);
        w.extend_from_slice(&self.paid_by_bracket);
        w.push(self.contenders);
        w.push(u64::from(self.busy));
        w.push(self.top_paid);
        w.push(self.top_seq);
        w.push(u64::from(self.has_top));
        w.push(self.going_rate);
        w.push(self.expiry_horizon);
        debug_assert_eq!(w.len(), DIGEST_WORDS);
        w
    }

    /// Inverse of [`BidDigest::encode`]. `None` on a malformed payload.
    pub fn decode(words: &[u64]) -> Option<Self> {
        if words.len() != DIGEST_WORDS {
            return None;
        }
        let mut paid_by_bracket = [0u64; PAID_BRACKETS];
        paid_by_bracket.copy_from_slice(&words[5..5 + PAID_BRACKETS]);
        let tail = &words[5 + PAID_BRACKETS..];
        Some(BidDigest {
            replica: u32::try_from(words[0]).ok()?,
            epoch: words[1],
            paid_total: words[2],
            admissions: words[3],
            timeouts: words[4],
            paid_by_bracket,
            contenders: tail[0],
            busy: tail[1] != 0,
            top_paid: tail[2],
            top_seq: tail[3],
            has_top: tail[4] != 0,
            going_rate: tail[5],
            expiry_horizon: tail[6],
        })
    }
}

/// What one replica knows about its peers: the latest digest per
/// replica, merged by epoch, plus which peers it currently considers
/// *stale* (silent past the failover threshold — see
/// [`DigestBoard::mark_stale`]).
#[derive(Clone, Debug, Default)]
pub struct DigestBoard {
    entries: BTreeMap<u32, BidDigest>,
    stale: BTreeSet<u32>,
}

impl DigestBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `d` in: kept iff it is the newest epoch seen from its
    /// replica (ties keep the incumbent — digests are deterministic per
    /// `(replica, epoch)`, so the tie is between identical values).
    /// This single rule makes merging commutative, associative, and
    /// idempotent across arbitrary delivery orders.
    ///
    /// A digest from a replica currently marked stale is ALWAYS kept and
    /// clears the mark: a crashed replica restarts with its epoch reset,
    /// so its fresh digests would lose the epoch race against its own
    /// pre-crash ghost forever. Hearing from a stale peer at all *is*
    /// the recovery signal; the max-epoch rule resumes from the accepted
    /// entry onward. Returns `true` iff the digest was kept.
    pub fn merge(&mut self, d: BidDigest) -> bool {
        let rejoining = self.stale.remove(&d.replica);
        match self.entries.get(&d.replica) {
            Some(have) if !rejoining && have.epoch >= d.epoch => false,
            _ => {
                self.entries.insert(d.replica, d);
                true
            }
        }
    }

    /// Merge every entry of `other` into `self`.
    pub fn merge_board(&mut self, other: &DigestBoard) {
        for d in other.entries.values() {
            self.merge(*d);
        }
    }

    /// Failover detection, run by replica `own` at its own epoch
    /// boundary: every peer whose latest digest lags `own_epoch` by more
    /// than `k` epochs has missed `k` consecutive sync periods (replicas
    /// publish in the same cadence) and is marked stale. Marked peers
    /// drop out of [`DigestBoard::remote_view`] and the live-share
    /// accessors until a digest from them arrives again ([`Self::merge`]
    /// clears the mark), so the survivors absorb their contender load.
    /// Returns the replicas *newly* marked by this call, in id order.
    pub fn mark_stale(&mut self, own: u32, own_epoch: u64, k: u64) -> Vec<u32> {
        let mut newly = Vec::new();
        for d in self.entries.values() {
            if d.replica != own
                && own_epoch.saturating_sub(d.epoch) > k
                && self.stale.insert(d.replica)
            {
                newly.push(d.replica);
            }
        }
        newly
    }

    /// Whether `replica` is currently marked stale.
    pub fn is_stale(&self, replica: u32) -> bool {
        self.stale.contains(&replica)
    }

    /// Replicas currently marked stale, in id order.
    pub fn stale_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.stale.iter().copied()
    }

    /// Number of replicas currently marked stale.
    pub fn stale_count(&self) -> usize {
        self.stale.len()
    }

    /// The latest digest seen from `replica`, if any.
    pub fn get(&self, replica: u32) -> Option<&BidDigest> {
        self.entries.get(&replica)
    }

    /// All entries, in replica order.
    pub fn entries(&self) -> impl Iterator<Item = &BidDigest> {
        self.entries.values()
    }

    /// Cumulative paid bytes summed over every replica's latest digest.
    pub fn total_paid(&self) -> u64 {
        self.entries.values().map(|d| d.paid_total).sum()
    }

    /// Cumulative paid bytes in `replica`'s latest digest (0 if unseen).
    pub fn paid_of(&self, replica: u32) -> u64 {
        self.entries.get(&replica).map_or(0, |d| d.paid_total)
    }

    /// [`Self::total_paid`] over live (non-stale) replicas only: the
    /// denominator of the capacity-share rebalance, so survivors absorb
    /// a dead peer's slice instead of leaving it reserved for a ghost.
    pub fn live_total_paid(&self) -> u64 {
        self.entries
            .values()
            .filter(|d| !self.stale.contains(&d.replica))
            .map(|d| d.paid_total)
            .sum()
    }

    /// Aggregate the board into the view replica `self_replica` feeds
    /// its auction gate: peer busyness, peer contender count, and the
    /// best peer bid ranked (paid desc, seq asc, replica asc). Stale
    /// peers are excluded — a dead replica's last-known top bid must not
    /// keep outbidding live contenders for the rest of the run.
    pub fn remote_view(&self, self_replica: u32) -> RemoteView {
        let mut v = RemoteView::default();
        for d in self.entries.values() {
            if d.replica == self_replica || self.stale.contains(&d.replica) {
                continue;
            }
            v.busy |= d.busy;
            v.contenders += d.contenders;
            if d.has_top {
                let cand = (d.top_paid, d.top_seq, d.replica);
                let better = match v.top {
                    None => true,
                    Some((p, s, r)) => cand.0 > p || (cand.0 == p && (cand.1, cand.2) < (s, r)),
                };
                if better {
                    v.top = Some(cand);
                }
            }
        }
        v
    }
}

/// Aggregated peer state consumed by the auction front end's replica
/// gate: see `AuctionFrontEnd::set_remote`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteView {
    /// Any peer's server slice busy at its last publish.
    pub busy: bool,
    /// Live contenders across all peers at their last publish.
    pub contenders: u64,
    /// Best peer bid `(paid, seq, replica)` under (paid desc, seq asc,
    /// replica asc); `None` when no peer reported a live bid.
    pub top: Option<(u64, u64, u32)>,
}

impl RemoteView {
    /// Whether a local bid `(paid, seq)` on `replica` beats every peer
    /// bid in this view.
    pub fn local_wins(&self, paid: u64, seq: u64, replica: u32) -> bool {
        match self.top {
            None => true,
            Some((p, s, r)) => paid > p || (paid == p && (seq, replica) < (s, r)),
        }
    }
}

/// Earliest expiry horizon across a set of replica digests, as a
/// [`SimTime`]; `None` when no replica reported a pending expiry.
pub fn merged_expiry_horizon<'a>(digests: impl Iterator<Item = &'a BidDigest>) -> Option<SimTime> {
    let ns = digests.map(|d| d.expiry_horizon).min()?;
    (ns != u64::MAX).then(|| SimTime::from_nanos(ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(replica: u32, epoch: u64, paid: u64) -> BidDigest {
        let mut d = BidDigest::new(replica);
        d.epoch = epoch;
        d.note_payment(paid);
        d
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut d = digest(3, 7, 5_000);
        d.admissions = 11;
        d.timeouts = 2;
        d.contenders = 4;
        d.busy = true;
        d.top_paid = 9_000;
        d.top_seq = 42;
        d.has_top = true;
        d.going_rate = 8_000;
        d.expiry_horizon = 123_456_789;
        let w = d.encode();
        assert_eq!(w.len(), DIGEST_WORDS);
        assert_eq!(BidDigest::decode(&w), Some(d));
        assert_eq!(BidDigest::decode(&w[1..]), None);
    }

    #[test]
    fn brackets_fold_by_log2() {
        assert_eq!(paid_bracket(0), 0);
        assert_eq!(paid_bracket(1), 0);
        assert_eq!(paid_bracket(2), 1);
        assert_eq!(paid_bracket(3), 1);
        assert_eq!(paid_bracket(1 << 14), 14);
        assert_eq!(paid_bracket((1 << 15) - 1), 14);
        assert_eq!(paid_bracket(1 << 15), 15);
        assert_eq!(paid_bracket(u64::MAX), 15);
        let mut d = BidDigest::new(0);
        d.note_payment(1_000);
        d.note_payment(1_000_000);
        assert_eq!(d.paid_total, 1_001_000);
        assert_eq!(d.paid_by_bracket[paid_bracket(1_000)], 1_000);
        assert_eq!(d.paid_by_bracket[15], 1_000_000);
    }

    #[test]
    fn merge_keeps_newest_epoch_per_replica() {
        let mut b = DigestBoard::new();
        b.merge(digest(0, 2, 100));
        b.merge(digest(0, 1, 50)); // stale: ignored
        b.merge(digest(1, 1, 30));
        assert_eq!(b.paid_of(0), 100);
        assert_eq!(b.paid_of(1), 30);
        assert_eq!(b.total_paid(), 130);
        b.merge(digest(0, 3, 200));
        assert_eq!(b.paid_of(0), 200);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut b = DigestBoard::new();
        let d = digest(2, 5, 77);
        b.merge(d);
        let snapshot = b.entries.clone();
        b.merge(d);
        assert_eq!(b.entries, snapshot);
    }

    #[test]
    fn remote_view_excludes_self_and_ranks_bids() {
        let mut b = DigestBoard::new();
        let mut d0 = digest(0, 1, 10);
        d0.busy = true;
        d0.contenders = 3;
        d0.top_paid = 500;
        d0.top_seq = 9;
        d0.has_top = true;
        b.merge(d0);
        let mut d1 = digest(1, 1, 10);
        d1.contenders = 2;
        d1.top_paid = 500;
        d1.top_seq = 4;
        d1.has_top = true;
        b.merge(d1);
        let v = b.remote_view(2);
        assert!(v.busy);
        assert_eq!(v.contenders, 5);
        // Equal paid: the smaller (seq, replica) wins.
        assert_eq!(v.top, Some((500, 4, 1)));
        // Excluding replica 1 leaves replica 0's bid.
        assert_eq!(b.remote_view(1).top, Some((500, 9, 0)));
        // A local bid beats the view only by (paid desc, seq asc).
        assert!(v.local_wins(501, 100, 3));
        assert!(v.local_wins(500, 3, 3));
        assert!(!v.local_wins(500, 4, 3)); // seq tie: replica 1 < 3
        assert!(!v.local_wins(499, 0, 3));
    }

    #[test]
    fn stale_marking_detects_silence_and_rejoin_clears_it() {
        let mut b = DigestBoard::new();
        b.merge(digest(0, 10, 100)); // self
        b.merge(digest(1, 9, 50)); // one epoch behind: live
        b.merge(digest(2, 5, 70)); // silent for 5 epochs
                                   // k = 3: replica 2 crossed the threshold, replica 1 did not,
                                   // and self (replica 0) is never marked.
        assert_eq!(b.mark_stale(0, 10, 3), vec![2]);
        assert!(b.is_stale(2) && !b.is_stale(1) && !b.is_stale(0));
        assert_eq!(b.mark_stale(0, 10, 3), Vec::<u32>::new(), "no re-report");
        assert_eq!(b.stale_count(), 1);
        assert_eq!(b.stale_ids().collect::<Vec<_>>(), vec![2]);
        // The stale peer drops out of the live aggregates but its last
        // digest stays on the board (cumulative history is still real).
        assert_eq!(b.total_paid(), 220);
        assert_eq!(b.live_total_paid(), 150);
        assert_eq!(b.paid_of(2), 70);
        // Re-join: the restarted replica publishes with a RESET epoch.
        // Plain max-epoch would reject 1 < 5 forever; the stale mark
        // forces acceptance and clears.
        assert!(b.merge(digest(2, 1, 5)), "stale re-join must be kept");
        assert!(!b.is_stale(2));
        assert_eq!(b.paid_of(2), 5);
        assert_eq!(b.live_total_paid(), 155);
        // Ordinary epoch discipline resumes after the re-join.
        assert!(!b.merge(digest(2, 0, 99)));
        assert_eq!(b.paid_of(2), 5);
    }

    #[test]
    fn stale_peers_drop_out_of_the_remote_view() {
        let mut b = DigestBoard::new();
        let mut d1 = digest(1, 1, 10);
        d1.busy = true;
        d1.contenders = 7;
        d1.top_paid = 9_999;
        d1.top_seq = 1;
        d1.has_top = true;
        b.merge(d1);
        assert_eq!(b.remote_view(0).top, Some((9_999, 1, 1)));
        b.mark_stale(0, 10, 3);
        let v = b.remote_view(0);
        assert_eq!(v.top, None, "a dead peer's ghost bid must not outbid");
        assert!(!v.busy);
        assert_eq!(v.contenders, 0);
    }

    #[test]
    fn merged_horizon_takes_the_earliest() {
        let mut a = BidDigest::new(0);
        a.expiry_horizon = 5_000;
        let mut b = BidDigest::new(1);
        b.expiry_horizon = 2_000;
        let none = BidDigest::new(2);
        assert_eq!(
            merged_expiry_horizon([&a, &b, &none].into_iter()),
            Some(SimTime::from_nanos(2_000))
        );
        assert_eq!(merged_expiry_horizon([&none].into_iter()), None);
        assert_eq!(merged_expiry_horizon([].into_iter()), None);
    }
}
