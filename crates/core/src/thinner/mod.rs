//! The thinner: speak-up's server front-end (§3).
//!
//! The thinner implements the three mechanisms any speak-up realization
//! needs (§3.1):
//!
//! 1. a **rate limit** — at most one request executes at a time, so the
//!    server sees load `c`;
//! 2. **encouragement** — causing clients to send more traffic than they
//!    would if the server were unattacked;
//! 3. a **proportional allocation** mechanism — admitting clients at rates
//!    proportional to delivered bandwidth.
//!
//! Four interchangeable front ends implement the [`FrontEnd`] trait:
//!
//! | variant | paper | encouragement | allocation |
//! |---|---|---|---|
//! | [`NoDefense`] | baseline | none | random drop when busy |
//! | [`ProfileFrontEnd`] | §8.1 comparator | none | per-identity rate limiting (detect-and-block) |
//! | [`RetryFrontEnd`] | §3.2 | please-retry signal | random admission at rate-matched probability `p`; price emerges as `r = 1/p` retries |
//! | [`AuctionFrontEnd`] | §3.3 | payment channel of dummy bytes | virtual auction: admit the highest-paying contender |
//! | [`QuantumFrontEnd`] | §5 | on-going payment channel | per-quantum auctions with SUSPEND/RESUME/ABORT |
//!
//! All front ends are pure state machines over [`Directive`]s — see
//! [`crate::types`].

mod auction;
mod digest;
mod none;
mod profile;
mod quantum;
mod retry;

pub use auction::{AuctionConfig, AuctionFrontEnd, AuctionStats};
pub use digest::{
    merged_expiry_horizon, paid_bracket, BidDigest, DigestBoard, RemoteView, DIGEST_WORDS,
    PAID_BRACKETS,
};
pub use none::{NoDefense, NoDefenseStats};
pub use profile::{ProfileConfig, ProfileFrontEnd, ProfileStats};
pub use quantum::{QuantumConfig, QuantumFrontEnd, QuantumStats};
pub use retry::{RetryConfig, RetryFrontEnd, RetryStats};

use crate::types::{Directive, RequestKey};
use speakup_net::time::SimTime;

/// The uniform event interface every thinner front end implements.
///
/// The driver (simulator harness, real proxy, or test) feeds events in and
/// executes the returned [`Directive`]s. Front ends track server busyness
/// themselves: a request is "on the server" from the `Admit` directive
/// until the driver calls [`FrontEnd::on_server_done`] for it. `Send` is
/// a supertrait so the thinner application can live on a sharded
/// simulator's worker threads.
pub trait FrontEnd: Send {
    /// A new request arrived from a client.
    fn on_request(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>);

    /// `bytes` new payment bytes arrived on the channel associated with
    /// `req` (delta, not cumulative). For the retry front end, each retry
    /// is reported as one payment event with the retry's byte size.
    fn on_payment(&mut self, now: SimTime, req: RequestKey, bytes: u64, out: &mut Vec<Directive>);

    /// The server finished executing `req`.
    fn on_server_done(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>);

    /// The client abandoned `req` (closed its channel / disconnected).
    fn on_cancel(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>);

    /// Housekeeping (channel timeouts, quantum auctions). Returns the time
    /// at which the driver must call `on_tick` again, if any.
    fn on_tick(&mut self, now: SimTime, out: &mut Vec<Directive>) -> Option<SimTime>;

    /// The hosting node crashed and restarted at `now`: drop all
    /// in-flight request state (contenders, queues, rate estimates) as a
    /// freshly started process would. Configuration, RNG streams, and
    /// cumulative counters survive — counters are the harness's
    /// measurement apparatus, not process memory, and continuing the RNG
    /// stream keeps the run deterministic across shard counts.
    fn reset(&mut self, now: SimTime);

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The going rate (§3.3): the winning bid of the most recent auction,
    /// in bytes. Zero when the server is unloaded. Fronts without a
    /// meaningful price return `None`.
    fn going_rate(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::types::{ClientId, RequestId};

    pub fn key(c: u32, r: u64) -> RequestKey {
        RequestKey::new(ClientId(c), RequestId(r))
    }

    pub fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// Extract the requests admitted in an action list, in order.
    pub fn admitted(out: &[Directive]) -> Vec<RequestKey> {
        out.iter()
            .filter_map(|d| match d {
                Directive::Admit(k) => Some(*k),
                _ => None,
            })
            .collect()
    }

    pub fn dropped(out: &[Directive]) -> Vec<RequestKey> {
        out.iter()
            .filter_map(|d| match d {
                Directive::Drop(k) => Some(*k),
                _ => None,
            })
            .collect()
    }

    pub fn encouraged(out: &[Directive]) -> Vec<RequestKey> {
        out.iter()
            .filter_map(|d| match d {
                Directive::Encourage(k) => Some(*k),
                _ => None,
            })
            .collect()
    }
}
