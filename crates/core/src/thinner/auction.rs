//! §3.3 — the explicit payment channel and virtual auction.
//!
//! When the server is overloaded, the thinner asks each requesting client
//! to open a payment channel and stream dummy bytes. Contending clients'
//! bytes are tallied; when the server is ready for a new request, a
//! *virtual auction* admits the contender that has paid the most and
//! terminates its channel. The price emerges on its own: the going rate is
//! the winning bid of the most recent auction, averaging `(G+B)/c` bytes
//! per request when everyone spends everything (§3.3).
//!
//! Channels that pay without producing an admissible request are timed out
//! after a configurable period (the prototype uses 10 s — §7.3), which is
//! what makes bad clients waste bytes.
//!
//! ## Scaling
//!
//! With 10^5-client crowds the thinner carries 10^4–10^5 live channels,
//! so the two per-admission/per-tick operations that used to scan every
//! contender — picking the winner and finding the next idle expiry —
//! became the engine's bottleneck (admissions scale with capacity, which
//! scales with population: an O(contenders) scan per admission is O(N²)
//! per simulated second). Both are now lazy heaps over immutable
//! snapshots: every registration or payment pushes a fresh `(paid, seq)`
//! bid and a fresh expiry entry, and consumers pop past *stale* entries
//! — those that no longer match the contender's live state — until the
//! top is current. `paid` only grows and `seq` never changes, so a
//! contender's newest entry always outranks its stale ones, making the
//! first current entry the exact argmax/argmin the scans computed; the
//! results (and therefore the goldens) are bit-identical, only the cost
//! changes. Stale buildup is bounded by rebuilding a heap whenever it
//! exceeds 4x the live-contender count (plus slack), which amortizes to
//! O(1) per push.

use super::digest::RemoteView;
use super::FrontEnd;
use crate::types::{Directive, RequestKey};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Configuration for the auction front end.
#[derive(Clone, Copy, Debug)]
pub struct AuctionConfig {
    /// Time out a payment channel that goes *idle* (no bytes) for this
    /// long, dropping its request. The prototype times out channels after
    /// 10 s of accepting payment with no admissible request (§7.3); a
    /// channel that keeps paying is never expired, since a slow-but-honest
    /// client may legitimately need longer than 10 s to win when the
    /// going rate is high (e.g. `c` = 50 with 100 Kbit/s per channel).
    pub channel_timeout: SimDuration,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            channel_timeout: SimDuration::from_secs(10),
        }
    }
}

/// A request contending in the auction.
#[derive(Clone, Copy, Debug)]
struct Contender {
    /// Bytes paid so far.
    paid: u64,
    /// When the contender registered (tie-break: earlier wins).
    seq: u64,
    /// When its channel was opened (for contention-time metrics).
    opened: SimTime,
    /// Last time bytes arrived (for the idle timeout).
    last_payment: SimTime,
}

/// A snapshot of one contender's bid, for the lazy winner heap. Stale
/// the moment the contender pays again (its live `paid` moves past this
/// entry's) or leaves the auction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Bid {
    paid: u64,
    /// Registration sequence; the tie-break (earlier wins, so *smaller*
    /// ranks higher).
    seq: u64,
    req: RequestKey,
}

impl Ord for Bid {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: highest paid first, ties to the earliest registrant
        // — the exact order `hold_auction`'s full scan used. `seq` is
        // unique per contender, so the `req` leg never decides between
        // two *live* entries; it only keeps the order total.
        self.paid
            .cmp(&other.paid)
            .then(other.seq.cmp(&self.seq))
            .then(other.req.cmp(&self.req))
    }
}

impl PartialOrd for Bid {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A snapshot of one contender's idle deadline, for the lazy expiry
/// heap (min-ordered via [`Reverse`]). Stale once the contender pays
/// again or leaves.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Expiry {
    at: SimTime,
    req: RequestKey,
}

/// Observable counters for the auction front end.
#[derive(Clone, Debug, Default)]
pub struct AuctionStats {
    /// Auctions held (admissions while contenders existed).
    pub auctions: u64,
    /// Requests admitted without contention (server was free).
    pub free_admissions: u64,
    /// Channels expired by the timeout.
    pub channel_timeouts: u64,
    /// Winning bids, bytes (the price of each served request).
    pub winning_bids: Samples,
    /// Time each winner spent contending, seconds.
    pub contention_time: Samples,
}

/// The §3.3 front end. See module docs.
pub struct AuctionFrontEnd {
    cfg: AuctionConfig,
    busy: Option<RequestKey>,
    contenders: BTreeMap<RequestKey, Contender>,
    /// Lazy max-heap of bid snapshots (see the module docs' scaling
    /// note); the top *current* entry is the auction winner.
    bids: BinaryHeap<Bid>,
    /// Lazy min-heap of idle-deadline snapshots; the top current entry
    /// is the next channel expiry.
    expiries: BinaryHeap<Reverse<Expiry>>,
    next_seq: u64,
    going_rate: u64,
    /// This front end's replica id in a replicated deployment (the
    /// final leg of the remote-bid tie-break). 0 when standalone.
    replica: u32,
    /// Aggregated peer state in a replicated deployment. `None` (the
    /// default, and the only value single-thinner runs ever see) leaves
    /// every admission path byte-identical to the standalone front end;
    /// when set, free admissions and auction wins are additionally
    /// gated on beating the view (see `set_remote`).
    remote: Option<RemoteView>,
    /// Counters and price samples.
    pub stats: AuctionStats,
}

impl AuctionFrontEnd {
    /// An auction thinner with the given configuration.
    pub fn new(cfg: AuctionConfig) -> Self {
        AuctionFrontEnd {
            cfg,
            busy: None,
            contenders: BTreeMap::new(),
            bids: BinaryHeap::new(),
            expiries: BinaryHeap::new(),
            next_seq: 0,
            going_rate: 0,
            replica: 0,
            remote: None,
            stats: AuctionStats::default(),
        }
    }

    /// Set this front end's replica id (the final tie-break leg against
    /// remote bids). Standalone front ends keep the default 0.
    pub fn set_replica(&mut self, replica: u32) {
        self.replica = replica;
    }

    /// Install (or clear) the aggregated peer view. With a view set,
    /// free admission additionally requires every peer idle and
    /// contender-free, and an auction defers while any peer is busy and
    /// otherwise admits the local top bid only if it beats the best
    /// peer bid under (paid desc, seq asc, replica asc) — the rules
    /// that make R gated replicas with fresh views reproduce the
    /// single-thinner admission sequence exactly (see
    /// `crates/core/tests/bid_digest_props.rs`). With `None` (the
    /// default) every code path is unchanged.
    pub fn set_remote(&mut self, remote: Option<RemoteView>) {
        self.remote = remote;
    }

    /// Whether a request currently occupies the server.
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }

    /// The current top live bid `(paid, seq)`, popping stale heap
    /// snapshots on the way. `None` when no contender is registered.
    pub fn top_bid(&mut self) -> Option<(u64, u64)> {
        loop {
            let top = *self.bids.peek()?;
            if self.bid_is_current(&top) {
                return Some((top.paid, top.seq));
            }
            self.bids.pop();
        }
    }

    /// The next pending channel expiry, if any (digest building).
    pub fn next_expiry_hint(&mut self) -> Option<SimTime> {
        self.next_channel_expiry()
    }

    /// Hold an auction now if the server is idle (replicated thinners
    /// call this after refreshing the remote view, since a peer's digest
    /// can unblock a previously gated admission).
    pub fn try_auction(&mut self, now: SimTime, out: &mut Vec<Directive>) {
        if self.busy.is_none() {
            self.hold_auction(now, out);
        }
    }

    /// Number of clients currently streaming payment.
    pub fn contender_count(&self) -> usize {
        self.contenders.len()
    }

    /// Total bytes currently bid across all contenders.
    pub fn outstanding_bid_bytes(&self) -> u64 {
        self.contenders.values().map(|c| c.paid).sum()
    }

    /// Cumulative bytes a specific contender has paid, if contending.
    pub fn bid_of(&self, req: RequestKey) -> Option<u64> {
        self.contenders.get(&req).map(|c| c.paid)
    }

    /// Whether a bid snapshot still describes its contender. `paid`
    /// only grows, so a matching amount means this is the newest entry.
    fn bid_is_current(&self, b: &Bid) -> bool {
        self.contenders
            .get(&b.req)
            .is_some_and(|c| c.paid == b.paid)
    }

    /// Whether an expiry snapshot still describes its contender.
    fn expiry_is_current(&self, e: &Expiry) -> bool {
        self.contenders
            .get(&e.req)
            .is_some_and(|c| c.last_payment + self.cfg.channel_timeout == e.at)
    }

    /// Record a contender's new bid and idle deadline in the lazy heaps,
    /// rebuilding either heap once stale entries outnumber live ones 4:1
    /// (amortized O(1); the slack keeps tiny auctions rebuild-free).
    fn push_snapshots(&mut self, req: RequestKey, c: Contender) {
        let cap = 4 * self.contenders.len() + 64;
        if self.bids.len() + 1 > cap {
            self.bids = self
                .contenders
                .iter()
                .map(|(&req, c)| Bid {
                    paid: c.paid,
                    seq: c.seq,
                    req,
                })
                .collect();
        }
        if self.expiries.len() + 1 > cap {
            self.expiries = self
                .contenders
                .iter()
                .map(|(&req, c)| {
                    Reverse(Expiry {
                        at: c.last_payment + self.cfg.channel_timeout,
                        req,
                    })
                })
                .collect();
        }
        self.bids.push(Bid {
            paid: c.paid,
            seq: c.seq,
            req,
        });
        self.expiries.push(Reverse(Expiry {
            at: c.last_payment + self.cfg.channel_timeout,
            req,
        }));
    }

    /// Hold the auction: admit the top payer (max paid; ties to the
    /// earliest registrant), terminate its channel. Pops stale bid
    /// snapshots until the top is current; every live contender has a
    /// current snapshot ranking above its stale ones, so that top is
    /// the same winner the old full scan picked.
    fn hold_auction(&mut self, now: SimTime, out: &mut Vec<Directive>) {
        debug_assert!(self.busy.is_none());
        let winner = loop {
            let Some(top) = self.bids.peek().copied() else {
                break None;
            };
            if self.bid_is_current(&top) {
                break Some(top.req);
            }
            self.bids.pop();
        };
        let Some(winner) = winner else {
            return;
        };
        if let Some(remote) = &self.remote {
            if remote.busy {
                // The gated deployment models one cluster-wide server:
                // defer while any peer is serving.
                return;
            }
            let c = self.contenders.get(&winner).expect("winner exists");
            if !remote.local_wins(c.paid, c.seq, self.replica) {
                // A peer holds a better bid: defer until a fresher view
                // (or more local payment) says otherwise.
                return;
            }
        }
        let c = self.contenders.remove(&winner).expect("winner exists");
        self.going_rate = c.paid;
        self.stats.auctions += 1;
        self.stats.winning_bids.push(c.paid as f64);
        self.stats
            .contention_time
            .push(now.saturating_since(c.opened).as_secs_f64());
        self.busy = Some(winner);
        out.push(Directive::TerminateChannel(winner));
        out.push(Directive::Admit(winner));
    }

    fn next_channel_expiry(&mut self) -> Option<SimTime> {
        loop {
            let &Reverse(top) = self.expiries.peek()?;
            if self.expiry_is_current(&top) {
                return Some(top.at);
            }
            self.expiries.pop();
        }
    }
}

impl FrontEnd for AuctionFrontEnd {
    fn on_request(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        if self.contenders.contains_key(&req) || self.busy == Some(req) {
            return; // duplicate
        }
        let peers_clear = self
            .remote
            .as_ref()
            .is_none_or(|r| !r.busy && r.contenders == 0);
        if self.busy.is_none() && self.contenders.is_empty() && peers_clear {
            // Unloaded server: serve immediately, price zero.
            self.busy = Some(req);
            self.going_rate = 0;
            self.stats.free_admissions += 1;
            self.stats.winning_bids.push(0.0);
            self.stats.contention_time.push(0.0);
            out.push(Directive::Admit(req));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let c = Contender {
            paid: 0,
            seq,
            opened: now,
            last_payment: now,
        };
        self.contenders.insert(req, c);
        self.push_snapshots(req, c);
        out.push(Directive::Encourage(req));
        // If the server is actually idle (possible when every prior
        // contender timed out between completions), hold an auction now.
        if self.busy.is_none() {
            self.hold_auction(now, out);
        }
    }

    fn on_payment(&mut self, now: SimTime, req: RequestKey, bytes: u64, out: &mut Vec<Directive>) {
        let _ = out;
        if let Some(c) = self.contenders.get_mut(&req) {
            c.paid += bytes;
            c.last_payment = now;
            let snapshot = *c;
            self.push_snapshots(req, snapshot);
        }
        // Payment for a non-contender (late bytes after termination) is
        // ignored — exactly the "wasted bytes" effect of §7.3.
    }

    fn on_server_done(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        assert_eq!(self.busy, Some(req), "done for a request not on the server");
        self.busy = None;
        self.hold_auction(now, out);
    }

    fn on_cancel(&mut self, _now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        let _ = out;
        self.contenders.remove(&req);
    }

    fn on_tick(&mut self, now: SimTime, out: &mut Vec<Directive>) -> Option<SimTime> {
        // Expire channels that stopped paying: drain every deadline
        // snapshot that has come due, keeping only the current ones. A
        // contender whose current snapshot is due is exactly one the
        // old full scan would have caught (`now - last_payment >=
        // timeout`); contenders that paid recently have their current
        // snapshot still in the future. Two payments at the same
        // instant leave duplicate current snapshots, hence the dedup.
        let mut expired: Vec<RequestKey> = Vec::new();
        while let Some(&Reverse(top)) = self.expiries.peek() {
            if top.at > now {
                break;
            }
            self.expiries.pop();
            if self.expiry_is_current(&top) {
                expired.push(top.req);
            }
        }
        expired.sort();
        expired.dedup();
        for k in expired {
            self.contenders.remove(&k);
            self.stats.channel_timeouts += 1;
            out.push(Directive::TerminateChannel(k));
            out.push(Directive::Drop(k));
        }
        self.next_channel_expiry()
    }

    fn reset(&mut self, _now: SimTime) {
        self.busy = None;
        self.contenders.clear();
        self.bids.clear();
        self.expiries.clear();
        self.next_seq = 0;
        self.going_rate = 0;
        self.remote = None;
    }

    fn name(&self) -> &'static str {
        "auction"
    }

    fn going_rate(&self) -> Option<u64> {
        Some(self.going_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinner::testutil::{admitted, dropped, encouraged, key, t};

    fn fe() -> AuctionFrontEnd {
        AuctionFrontEnd::new(AuctionConfig::default())
    }

    #[test]
    fn unloaded_server_admits_immediately_at_price_zero() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        assert_eq!(f.going_rate(), Some(0));
        assert_eq!(f.stats.free_admissions, 1);
    }

    #[test]
    fn busy_server_encourages() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        out.clear();
        f.on_request(t(1), key(2, 1), &mut out);
        assert!(admitted(&out).is_empty());
        assert_eq!(encouraged(&out), vec![key(2, 1)]);
        assert_eq!(f.contender_count(), 1);
    }

    #[test]
    fn auction_admits_highest_payer() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out); // occupies server
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        f.on_request(t(1), key(3, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 5_000, &mut out);
        f.on_payment(t(2), key(2, 1), 9_000, &mut out);
        f.on_payment(t(3), key(3, 1), 8_999, &mut out);
        out.clear();
        f.on_server_done(t(4), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
        assert!(out.contains(&Directive::TerminateChannel(key(2, 1))));
        assert_eq!(f.going_rate(), Some(9_000));
        assert_eq!(f.contender_count(), 2);
        assert_eq!(f.stats.auctions, 1);
    }

    #[test]
    fn tie_breaks_to_earlier_contender() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(2), key(2, 1), &mut out);
        f.on_payment(t(3), key(1, 1), 100, &mut out);
        f.on_payment(t(3), key(2, 1), 100, &mut out);
        out.clear();
        f.on_server_done(t(4), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
    }

    #[test]
    fn cumulative_payment_across_events() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 100, &mut out);
        f.on_payment(t(3), key(1, 1), 250, &mut out);
        assert_eq!(f.bid_of(key(1, 1)), Some(350));
        assert_eq!(f.outstanding_bid_bytes(), 350);
    }

    #[test]
    fn payment_after_admission_is_wasted() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 100, &mut out);
        f.on_server_done(t(3), key(0, 1), &mut out);
        // key(1,1) now on the server; stray payment bytes are ignored.
        f.on_payment(t(4), key(1, 1), 10_000, &mut out);
        assert_eq!(f.bid_of(key(1, 1)), None);
        assert_eq!(f.outstanding_bid_bytes(), 0);
    }

    #[test]
    fn idle_channel_drops_request() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(100), key(1, 1), &mut out);
        out.clear();
        // Before the timeout: nothing.
        let next = f.on_tick(t(5_000), &mut out);
        assert!(out.is_empty());
        assert_eq!(next, Some(t(10_100)));
        // After 10 s of silence: channel terminated, request dropped.
        let next = f.on_tick(t(10_100), &mut out);
        assert_eq!(dropped(&out), vec![key(1, 1)]);
        assert!(out.contains(&Directive::TerminateChannel(key(1, 1))));
        assert_eq!(f.stats.channel_timeouts, 1);
        assert_eq!(next, None);
    }

    #[test]
    fn paying_channel_survives_past_ten_seconds() {
        // A slow-but-paying contender must not be expired: at c = 50 the
        // going rate is 250 KB and a 100 Kbit/s channel needs ~20 s.
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(100), key(1, 1), &mut out);
        for s in 1..=25u64 {
            f.on_payment(t(s * 1000), key(1, 1), 12_500, &mut out);
            f.on_tick(t(s * 1000 + 1), &mut out);
        }
        assert_eq!(f.stats.channel_timeouts, 0);
        assert_eq!(f.contender_count(), 1);
        out.clear();
        f.on_server_done(t(26_000), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
    }

    #[test]
    fn auction_after_idle_gap() {
        // Server goes idle with no contenders; a later request is served
        // instantly; then another contends and wins when done.
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_server_done(t(5), key(0, 1), &mut out);
        out.clear();
        f.on_request(t(10), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        out.clear();
        f.on_request(t(11), key(2, 1), &mut out);
        f.on_payment(t(12), key(2, 1), 10, &mut out);
        out.clear();
        f.on_server_done(t(15), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
        assert_eq!(f.going_rate(), Some(10));
    }

    #[test]
    fn cancel_withdraws_contender() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(2), key(2, 1), &mut out);
        f.on_payment(t(3), key(1, 1), 1000, &mut out);
        f.on_payment(t(3), key(2, 1), 10, &mut out);
        f.on_cancel(t(4), key(1, 1), &mut out);
        out.clear();
        f.on_server_done(t(5), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
    }

    #[test]
    fn duplicate_request_ignored() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        out.clear();
        f.on_request(t(2), key(1, 1), &mut out);
        assert!(out.is_empty());
        assert_eq!(f.contender_count(), 1);
    }

    #[test]
    fn zero_payers_still_admitted_in_arrival_order() {
        // Contenders who never pay still win eventually (arrival order).
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(2), key(2, 1), &mut out);
        out.clear();
        f.on_server_done(t(3), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        out.clear();
        f.on_server_done(t(4), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
    }

    #[test]
    fn stats_track_prices() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 4_000, &mut out);
        f.on_server_done(t(3), key(0, 1), &mut out);
        assert_eq!(f.stats.winning_bids.len(), 2); // free admission + auction
        assert_eq!(f.stats.winning_bids.values()[1], 4_000.0);
    }
}
