//! §3.3 — the explicit payment channel and virtual auction.
//!
//! When the server is overloaded, the thinner asks each requesting client
//! to open a payment channel and stream dummy bytes. Contending clients'
//! bytes are tallied; when the server is ready for a new request, a
//! *virtual auction* admits the contender that has paid the most and
//! terminates its channel. The price emerges on its own: the going rate is
//! the winning bid of the most recent auction, averaging `(G+B)/c` bytes
//! per request when everyone spends everything (§3.3).
//!
//! Channels that pay without producing an admissible request are timed out
//! after a configurable period (the prototype uses 10 s — §7.3), which is
//! what makes bad clients waste bytes.

use super::FrontEnd;
use crate::types::{Directive, RequestKey};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;
use std::collections::HashMap;

/// Configuration for the auction front end.
#[derive(Clone, Copy, Debug)]
pub struct AuctionConfig {
    /// Time out a payment channel that goes *idle* (no bytes) for this
    /// long, dropping its request. The prototype times out channels after
    /// 10 s of accepting payment with no admissible request (§7.3); a
    /// channel that keeps paying is never expired, since a slow-but-honest
    /// client may legitimately need longer than 10 s to win when the
    /// going rate is high (e.g. `c` = 50 with 100 Kbit/s per channel).
    pub channel_timeout: SimDuration,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            channel_timeout: SimDuration::from_secs(10),
        }
    }
}

/// A request contending in the auction.
#[derive(Clone, Copy, Debug)]
struct Contender {
    /// Bytes paid so far.
    paid: u64,
    /// When the contender registered (tie-break: earlier wins).
    seq: u64,
    /// When its channel was opened (for contention-time metrics).
    opened: SimTime,
    /// Last time bytes arrived (for the idle timeout).
    last_payment: SimTime,
}

/// Observable counters for the auction front end.
#[derive(Clone, Debug, Default)]
pub struct AuctionStats {
    /// Auctions held (admissions while contenders existed).
    pub auctions: u64,
    /// Requests admitted without contention (server was free).
    pub free_admissions: u64,
    /// Channels expired by the timeout.
    pub channel_timeouts: u64,
    /// Winning bids, bytes (the price of each served request).
    pub winning_bids: Samples,
    /// Time each winner spent contending, seconds.
    pub contention_time: Samples,
}

/// The §3.3 front end. See module docs.
pub struct AuctionFrontEnd {
    cfg: AuctionConfig,
    busy: Option<RequestKey>,
    contenders: HashMap<RequestKey, Contender>,
    next_seq: u64,
    going_rate: u64,
    /// Counters and price samples.
    pub stats: AuctionStats,
}

impl AuctionFrontEnd {
    /// An auction thinner with the given configuration.
    pub fn new(cfg: AuctionConfig) -> Self {
        AuctionFrontEnd {
            cfg,
            busy: None,
            contenders: HashMap::new(),
            next_seq: 0,
            going_rate: 0,
            stats: AuctionStats::default(),
        }
    }

    /// Number of clients currently streaming payment.
    pub fn contender_count(&self) -> usize {
        self.contenders.len()
    }

    /// Total bytes currently bid across all contenders.
    pub fn outstanding_bid_bytes(&self) -> u64 {
        self.contenders.values().map(|c| c.paid).sum()
    }

    /// Cumulative bytes a specific contender has paid, if contending.
    pub fn bid_of(&self, req: RequestKey) -> Option<u64> {
        self.contenders.get(&req).map(|c| c.paid)
    }

    /// Hold the auction: admit the top payer (max paid; ties to the
    /// earliest registrant), terminate its channel.
    fn hold_auction(&mut self, now: SimTime, out: &mut Vec<Directive>) {
        debug_assert!(self.busy.is_none());
        let winner = self
            .contenders
            .iter()
            .max_by(|(_, a), (_, b)| a.paid.cmp(&b.paid).then(b.seq.cmp(&a.seq)))
            .map(|(k, _)| *k);
        let Some(winner) = winner else {
            return;
        };
        let c = self.contenders.remove(&winner).expect("winner exists");
        self.going_rate = c.paid;
        self.stats.auctions += 1;
        self.stats.winning_bids.push(c.paid as f64);
        self.stats
            .contention_time
            .push(now.saturating_since(c.opened).as_secs_f64());
        self.busy = Some(winner);
        out.push(Directive::TerminateChannel(winner));
        out.push(Directive::Admit(winner));
    }

    fn next_channel_expiry(&self) -> Option<SimTime> {
        self.contenders
            .values()
            .map(|c| c.last_payment + self.cfg.channel_timeout)
            .min()
    }
}

impl FrontEnd for AuctionFrontEnd {
    fn on_request(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        if self.contenders.contains_key(&req) || self.busy == Some(req) {
            return; // duplicate
        }
        if self.busy.is_none() && self.contenders.is_empty() {
            // Unloaded server: serve immediately, price zero.
            self.busy = Some(req);
            self.going_rate = 0;
            self.stats.free_admissions += 1;
            self.stats.winning_bids.push(0.0);
            self.stats.contention_time.push(0.0);
            out.push(Directive::Admit(req));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.contenders.insert(
            req,
            Contender {
                paid: 0,
                seq,
                opened: now,
                last_payment: now,
            },
        );
        out.push(Directive::Encourage(req));
        // If the server is actually idle (possible when every prior
        // contender timed out between completions), hold an auction now.
        if self.busy.is_none() {
            self.hold_auction(now, out);
        }
    }

    fn on_payment(&mut self, now: SimTime, req: RequestKey, bytes: u64, out: &mut Vec<Directive>) {
        let _ = out;
        if let Some(c) = self.contenders.get_mut(&req) {
            c.paid += bytes;
            c.last_payment = now;
        }
        // Payment for a non-contender (late bytes after termination) is
        // ignored — exactly the "wasted bytes" effect of §7.3.
    }

    fn on_server_done(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        assert_eq!(self.busy, Some(req), "done for a request not on the server");
        self.busy = None;
        self.hold_auction(now, out);
    }

    fn on_cancel(&mut self, _now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        let _ = out;
        self.contenders.remove(&req);
    }

    fn on_tick(&mut self, now: SimTime, out: &mut Vec<Directive>) -> Option<SimTime> {
        // Expire channels that stopped paying.
        let timeout = self.cfg.channel_timeout;
        let expired: Vec<RequestKey> = self
            .contenders
            .iter()
            .filter(|(_, c)| now.saturating_since(c.last_payment) >= timeout)
            .map(|(k, _)| *k)
            .collect();
        let mut expired = expired;
        expired.sort();
        for k in expired {
            self.contenders.remove(&k);
            self.stats.channel_timeouts += 1;
            out.push(Directive::TerminateChannel(k));
            out.push(Directive::Drop(k));
        }
        self.next_channel_expiry()
    }

    fn name(&self) -> &'static str {
        "auction"
    }

    fn going_rate(&self) -> Option<u64> {
        Some(self.going_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinner::testutil::{admitted, dropped, encouraged, key, t};

    fn fe() -> AuctionFrontEnd {
        AuctionFrontEnd::new(AuctionConfig::default())
    }

    #[test]
    fn unloaded_server_admits_immediately_at_price_zero() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        assert_eq!(f.going_rate(), Some(0));
        assert_eq!(f.stats.free_admissions, 1);
    }

    #[test]
    fn busy_server_encourages() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        out.clear();
        f.on_request(t(1), key(2, 1), &mut out);
        assert!(admitted(&out).is_empty());
        assert_eq!(encouraged(&out), vec![key(2, 1)]);
        assert_eq!(f.contender_count(), 1);
    }

    #[test]
    fn auction_admits_highest_payer() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out); // occupies server
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        f.on_request(t(1), key(3, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 5_000, &mut out);
        f.on_payment(t(2), key(2, 1), 9_000, &mut out);
        f.on_payment(t(3), key(3, 1), 8_999, &mut out);
        out.clear();
        f.on_server_done(t(4), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
        assert!(out.contains(&Directive::TerminateChannel(key(2, 1))));
        assert_eq!(f.going_rate(), Some(9_000));
        assert_eq!(f.contender_count(), 2);
        assert_eq!(f.stats.auctions, 1);
    }

    #[test]
    fn tie_breaks_to_earlier_contender() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(2), key(2, 1), &mut out);
        f.on_payment(t(3), key(1, 1), 100, &mut out);
        f.on_payment(t(3), key(2, 1), 100, &mut out);
        out.clear();
        f.on_server_done(t(4), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
    }

    #[test]
    fn cumulative_payment_across_events() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 100, &mut out);
        f.on_payment(t(3), key(1, 1), 250, &mut out);
        assert_eq!(f.bid_of(key(1, 1)), Some(350));
        assert_eq!(f.outstanding_bid_bytes(), 350);
    }

    #[test]
    fn payment_after_admission_is_wasted() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 100, &mut out);
        f.on_server_done(t(3), key(0, 1), &mut out);
        // key(1,1) now on the server; stray payment bytes are ignored.
        f.on_payment(t(4), key(1, 1), 10_000, &mut out);
        assert_eq!(f.bid_of(key(1, 1)), None);
        assert_eq!(f.outstanding_bid_bytes(), 0);
    }

    #[test]
    fn idle_channel_drops_request() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(100), key(1, 1), &mut out);
        out.clear();
        // Before the timeout: nothing.
        let next = f.on_tick(t(5_000), &mut out);
        assert!(out.is_empty());
        assert_eq!(next, Some(t(10_100)));
        // After 10 s of silence: channel terminated, request dropped.
        let next = f.on_tick(t(10_100), &mut out);
        assert_eq!(dropped(&out), vec![key(1, 1)]);
        assert!(out.contains(&Directive::TerminateChannel(key(1, 1))));
        assert_eq!(f.stats.channel_timeouts, 1);
        assert_eq!(next, None);
    }

    #[test]
    fn paying_channel_survives_past_ten_seconds() {
        // A slow-but-paying contender must not be expired: at c = 50 the
        // going rate is 250 KB and a 100 Kbit/s channel needs ~20 s.
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(100), key(1, 1), &mut out);
        for s in 1..=25u64 {
            f.on_payment(t(s * 1000), key(1, 1), 12_500, &mut out);
            f.on_tick(t(s * 1000 + 1), &mut out);
        }
        assert_eq!(f.stats.channel_timeouts, 0);
        assert_eq!(f.contender_count(), 1);
        out.clear();
        f.on_server_done(t(26_000), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
    }

    #[test]
    fn auction_after_idle_gap() {
        // Server goes idle with no contenders; a later request is served
        // instantly; then another contends and wins when done.
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_server_done(t(5), key(0, 1), &mut out);
        out.clear();
        f.on_request(t(10), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        out.clear();
        f.on_request(t(11), key(2, 1), &mut out);
        f.on_payment(t(12), key(2, 1), 10, &mut out);
        out.clear();
        f.on_server_done(t(15), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
        assert_eq!(f.going_rate(), Some(10));
    }

    #[test]
    fn cancel_withdraws_contender() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(2), key(2, 1), &mut out);
        f.on_payment(t(3), key(1, 1), 1000, &mut out);
        f.on_payment(t(3), key(2, 1), 10, &mut out);
        f.on_cancel(t(4), key(1, 1), &mut out);
        out.clear();
        f.on_server_done(t(5), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
    }

    #[test]
    fn duplicate_request_ignored() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        out.clear();
        f.on_request(t(2), key(1, 1), &mut out);
        assert!(out.is_empty());
        assert_eq!(f.contender_count(), 1);
    }

    #[test]
    fn zero_payers_still_admitted_in_arrival_order() {
        // Contenders who never pay still win eventually (arrival order).
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_request(t(2), key(2, 1), &mut out);
        out.clear();
        f.on_server_done(t(3), key(0, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        out.clear();
        f.on_server_done(t(4), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
    }

    #[test]
    fn stats_track_prices() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(0, 1), &mut out);
        f.on_request(t(1), key(1, 1), &mut out);
        f.on_payment(t(2), key(1, 1), 4_000, &mut out);
        f.on_server_done(t(3), key(0, 1), &mut out);
        assert_eq!(f.stats.winning_bids.len(), 2); // free admission + auction
        assert_eq!(f.stats.winning_bids.values()[1], 4_000.0);
    }
}
