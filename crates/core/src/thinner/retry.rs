//! §3.2 — random drops and aggressive retries.
//!
//! The thinner drops requests at random so that the admitted rate matches
//! the server's capacity `c`, and encouragement consists of telling
//! dropped clients to *retry now*: clients stream retries in a
//! congestion-controlled flow, keeping their pipe to the thinner full.
//! Payment is in-band — the price for access is the number of retries
//! `r = 1/p` a client must send — and it emerges automatically: the
//! thinner never communicates `r`.
//!
//! The thinner estimates the aggregate retry arrival rate `R` with an
//! EWMA over fixed buckets and admits each arriving retry (when the
//! server is free) with probability `p = min(1, c/R)`, which makes the
//! admitted load approach `c` and the allocation proportional to
//! delivered retry bandwidth.

use super::FrontEnd;
use crate::types::{Directive, RequestKey};
use speakup_net::rng::Pcg32;
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;
use std::collections::BTreeMap;

/// Configuration for the retry front end.
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// The server capacity `c` the thinner rate-matches to, requests/s.
    /// (Unlike the auction, §3.3 requires no such estimate — one of the
    /// paper's arguments for preferring the auction.)
    pub target_rate: f64,
    /// Rate-estimation bucket length.
    pub bucket: SimDuration,
    /// EWMA weight given to the newest bucket.
    pub alpha: f64,
    /// Drop a request whose retries stop arriving for this long.
    pub idle_timeout: SimDuration,
    /// Bound on the queue of admitted-but-not-yet-started requests. The
    /// admission probability targets a sustained load of `c`; this short
    /// queue absorbs the variance so the server does not idle between
    /// admission opportunities.
    pub max_queue: usize,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            target_rate: 100.0,
            bucket: SimDuration::from_millis(500),
            alpha: 0.3,
            idle_timeout: SimDuration::from_secs(10),
            max_queue: 8,
        }
    }
}

/// Counters for the retry front end.
#[derive(Clone, Debug, Default)]
pub struct RetryStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Retry arrivals observed (including first attempts).
    pub retries_seen: u64,
    /// Requests dropped for idleness.
    pub idle_drops: u64,
    /// Retries-per-admission samples: the emergent price `r`.
    pub price_retries: Samples,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    retries: u64,
    last_retry: SimTime,
}

/// The §3.2 front end. See module docs.
pub struct RetryFrontEnd {
    cfg: RetryConfig,
    busy: Option<RequestKey>,
    /// Admitted requests waiting for the server (FIFO).
    queue: std::collections::VecDeque<RequestKey>,
    pending: BTreeMap<RequestKey, Pending>,
    /// Retry count in the current estimation bucket.
    bucket_count: u64,
    bucket_started: SimTime,
    /// EWMA of the retry arrival rate, retries/second.
    rate_estimate: f64,
    rng: Pcg32,
    /// Counters and price samples.
    pub stats: RetryStats,
}

impl RetryFrontEnd {
    /// A retry thinner with the given configuration and RNG seed.
    pub fn new(cfg: RetryConfig, seed: u64) -> Self {
        assert!(cfg.target_rate > 0.0);
        assert!((0.0..=1.0).contains(&cfg.alpha));
        RetryFrontEnd {
            cfg,
            busy: None,
            queue: std::collections::VecDeque::new(),
            pending: BTreeMap::new(),
            bucket_count: 0,
            bucket_started: SimTime::ZERO,
            rate_estimate: 0.0,
            rng: Pcg32::new(seed, 0x3272),
            stats: RetryStats::default(),
        }
    }

    /// The current admission probability `p = min(1, c/R)`.
    pub fn admission_probability(&self) -> f64 {
        if self.rate_estimate <= self.cfg.target_rate {
            1.0
        } else {
            self.cfg.target_rate / self.rate_estimate
        }
    }

    /// The current estimate of the aggregate retry rate `R`, retries/s.
    pub fn estimated_rate(&self) -> f64 {
        self.rate_estimate
    }

    /// Requests currently retrying.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Admitted requests waiting for the server.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn roll_bucket(&mut self, now: SimTime) {
        // Fold any completed buckets into the EWMA. Multiple elapsed
        // buckets decay the estimate toward their (mostly zero) counts.
        let bucket = self.cfg.bucket;
        while now.saturating_since(self.bucket_started) >= bucket {
            let rate = self.bucket_count as f64 / bucket.as_secs_f64();
            self.rate_estimate = if self.rate_estimate == 0.0 {
                rate
            } else {
                (1.0 - self.cfg.alpha) * self.rate_estimate + self.cfg.alpha * rate
            };
            self.bucket_count = 0;
            self.bucket_started += bucket;
        }
    }

    /// One retry (or first attempt) arrived: an admission opportunity.
    fn attempt(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        self.roll_bucket(now);
        self.bucket_count += 1;
        self.stats.retries_seen += 1;
        let entry = self.pending.entry(req).or_insert(Pending {
            retries: 0,
            last_retry: now,
        });
        entry.retries += 1;
        entry.last_retry = now;
        let first_sight = entry.retries == 1;

        // A winning coin flip admits the request: straight to the server
        // when it is free, else into the short rate-smoothing queue.
        let can_take = self.busy.is_none()
            || (!self.queue.contains(&req) && self.queue.len() < self.cfg.max_queue);
        if can_take {
            let p = self.admission_probability();
            if self.rng.chance(p) {
                let pend = self.pending.remove(&req).expect("just inserted");
                self.stats.price_retries.push(pend.retries as f64);
                out.push(Directive::TerminateChannel(req));
                if self.busy.is_none() {
                    self.busy = Some(req);
                    self.stats.admitted += 1;
                    out.push(Directive::Admit(req));
                } else {
                    self.queue.push_back(req);
                }
                return;
            }
        }
        if first_sight {
            // First sight of this request: tell the client to start the
            // congestion-controlled retry stream.
            out.push(Directive::Encourage(req));
        }
    }
}

impl FrontEnd for RetryFrontEnd {
    fn on_request(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        self.attempt(now, req, out);
    }

    /// Each payment event is one retry arriving on the retry stream.
    fn on_payment(&mut self, now: SimTime, req: RequestKey, _bytes: u64, out: &mut Vec<Directive>) {
        if self.busy == Some(req) {
            return; // stragglers after admission
        }
        self.attempt(now, req, out);
    }

    fn on_server_done(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        assert_eq!(self.busy, Some(req), "done for a request not on the server");
        self.busy = None;
        self.roll_bucket(now);
        if let Some(next) = self.queue.pop_front() {
            self.busy = Some(next);
            self.stats.admitted += 1;
            out.push(Directive::Admit(next));
        }
    }

    fn on_cancel(&mut self, _now: SimTime, req: RequestKey, _out: &mut Vec<Directive>) {
        self.pending.remove(&req);
        self.queue.retain(|k| *k != req);
    }

    fn on_tick(&mut self, now: SimTime, out: &mut Vec<Directive>) -> Option<SimTime> {
        self.roll_bucket(now);
        let timeout = self.cfg.idle_timeout;
        let mut stale: Vec<RequestKey> = self
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_since(p.last_retry) >= timeout)
            .map(|(k, _)| *k)
            .collect();
        stale.sort();
        for k in stale {
            self.pending.remove(&k);
            self.stats.idle_drops += 1;
            out.push(Directive::Drop(k));
        }
        self.pending
            .values()
            .map(|p| p.last_retry + timeout)
            .min()
            .or(Some(now + self.cfg.bucket))
    }

    fn reset(&mut self, now: SimTime) {
        self.busy = None;
        self.queue.clear();
        self.pending.clear();
        self.bucket_count = 0;
        self.bucket_started = now;
        self.rate_estimate = 0.0;
    }

    fn name(&self) -> &'static str {
        "retry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinner::testutil::{admitted, encouraged, key, t};

    fn fe(c: f64) -> RetryFrontEnd {
        // max_queue = 0: the pure §3.2 mechanism (admit only when free),
        // which is what most of these tests pin down. The queue variant
        // is covered separately below.
        RetryFrontEnd::new(
            RetryConfig {
                target_rate: c,
                max_queue: 0,
                ..RetryConfig::default()
            },
            7,
        )
    }

    fn fe_queued(c: f64) -> RetryFrontEnd {
        RetryFrontEnd::new(
            RetryConfig {
                target_rate: c,
                ..RetryConfig::default()
            },
            7,
        )
    }

    #[test]
    fn smoothing_queue_feeds_server_fifo() {
        let mut f = fe_queued(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out); // occupies the server
        out.clear();
        // Two more requests at p = 1: both admitted into the queue.
        f.on_request(t(1), key(2, 1), &mut out);
        f.on_request(t(2), key(3, 1), &mut out);
        assert!(
            admitted(&out).is_empty(),
            "server busy: queued, not started"
        );
        assert_eq!(f.queue_len(), 2);
        out.clear();
        f.on_server_done(t(10), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
        out.clear();
        f.on_server_done(t(20), key(2, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(3, 1)]);
        assert_eq!(f.queue_len(), 0);
    }

    #[test]
    fn cancel_removes_from_queue() {
        let mut f = fe_queued(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        f.on_cancel(t(2), key(2, 1), &mut out);
        assert_eq!(f.queue_len(), 0);
        out.clear();
        f.on_server_done(t(10), key(1, 1), &mut out);
        assert!(admitted(&out).is_empty());
    }

    #[test]
    fn first_request_admitted_when_idle_and_unloaded() {
        let mut f = fe(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        // Rate estimate is 0 => p = 1 => admitted.
        assert_eq!(admitted(&out), vec![key(1, 1)]);
    }

    #[test]
    fn busy_server_encourages_first_attempt_only() {
        let mut f = fe(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        out.clear();
        f.on_request(t(1), key(2, 1), &mut out);
        assert_eq!(encouraged(&out), vec![key(2, 1)]);
        out.clear();
        f.on_payment(t(2), key(2, 1), 100, &mut out);
        assert!(encouraged(&out).is_empty(), "no duplicate encouragement");
    }

    #[test]
    fn price_counts_retries_until_admission() {
        let mut f = fe(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out); // occupies the server
        f.on_request(t(1), key(2, 1), &mut out);
        for i in 0..5 {
            f.on_payment(t(2 + i), key(2, 1), 100, &mut out);
        }
        out.clear();
        f.on_server_done(t(10), key(1, 1), &mut out);
        // Next retry wins (p=1 with tiny estimated rate).
        f.on_payment(t(11), key(2, 1), 100, &mut out);
        assert_eq!(admitted(&out), vec![key(2, 1)]);
        // Price: 1 first attempt + 5 retries + 1 winning retry = 7.
        assert_eq!(f.stats.price_retries.values(), &[1.0, 7.0]);
    }

    #[test]
    fn admission_probability_tracks_rate() {
        let mut f = fe(10.0);
        let mut out = Vec::new();
        // Saturate with retries from a busy server at ~1000/s for 3 s.
        f.on_request(t(0), key(1, 1), &mut out);
        for ms in 1..3000u64 {
            f.on_payment(t(ms), key(2, 1), 100, &mut out);
        }
        let r = f.estimated_rate();
        assert!((800.0..1200.0).contains(&r), "rate estimate {r}");
        let p = f.admission_probability();
        assert!((0.008..0.0125).contains(&p), "p {p}");
    }

    #[test]
    fn admissions_rate_matched_under_load() {
        // Server alternates busy/free; retries arrive at 1000/s; target 50/s.
        // Admissions per second should be ≈ 50 when the server is mostly free.
        let mut f = fe(50.0);
        let mut out = Vec::new();
        let mut admissions = 0u64;
        let mut clock_ms = 0u64;
        let step = |f: &mut RetryFrontEnd, clock_ms: u64, out: &mut Vec<Directive>| -> u64 {
            f.on_payment(t(clock_ms), key(2, 1), 100, out);
            let mut n = 0;
            for d in out.drain(..) {
                if let Directive::Admit(k) = d {
                    n += 1;
                    // Instant service; the "client" keeps retrying.
                    f.on_server_done(t(clock_ms), k, &mut Vec::new());
                }
            }
            n
        };
        // Warm the estimator (2 s at 1000 retries/s).
        for _ in 0..2000 {
            clock_ms += 1;
            step(&mut f, clock_ms, &mut out);
        }
        // Measure for 10 s.
        for _ in 0..10_000 {
            clock_ms += 1;
            admissions += step(&mut f, clock_ms, &mut out);
        }
        let rate = admissions as f64 / 10.0;
        assert!((35.0..70.0).contains(&rate), "admission rate {rate}");
    }

    #[test]
    fn idle_requests_dropped_on_tick() {
        let mut f = fe(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        out.clear();
        // key(2,1) never retries again; 10 s later it is dropped.
        f.on_tick(t(11_001), &mut out);
        assert_eq!(
            out.iter()
                .filter(|d| matches!(d, Directive::Drop(k) if *k == key(2, 1)))
                .count(),
            1
        );
        assert_eq!(f.stats.idle_drops, 1);
        assert_eq!(f.pending_count(), 0);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut f = fe(100.0);
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        f.on_cancel(t(2), key(2, 1), &mut out);
        assert_eq!(f.pending_count(), 0);
    }
}
