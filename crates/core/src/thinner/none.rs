//! The no-defense baseline: what the paper measures as "without speak-up".
//!
//! When the server is overloaded it randomly drops excess requests (§3's
//! illustration): with one request executing at a time, any request that
//! arrives while the server is busy is dropped silently. Clients time out
//! on their own. The server's allocation therefore tracks the clients'
//! *request rates*, which is exactly why bad clients — who request far
//! faster — capture it.

use super::FrontEnd;
use crate::types::{Directive, RequestKey};
use speakup_net::time::SimTime;

/// Counters for the baseline front end.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDefenseStats {
    /// Requests forwarded to the server.
    pub admitted: u64,
    /// Requests dropped because the server was busy.
    pub dropped: u64,
}

/// The baseline front end. See module docs.
#[derive(Debug, Default)]
pub struct NoDefense {
    busy: Option<RequestKey>,
    /// Counters.
    pub stats: NoDefenseStats,
}

impl NoDefense {
    /// A baseline front end.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FrontEnd for NoDefense {
    fn on_request(&mut self, _now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        if self.busy.is_some() {
            self.stats.dropped += 1;
            out.push(Directive::Drop(req));
        } else {
            self.busy = Some(req);
            self.stats.admitted += 1;
            out.push(Directive::Admit(req));
        }
    }

    fn on_payment(
        &mut self,
        _now: SimTime,
        _req: RequestKey,
        _bytes: u64,
        _out: &mut Vec<Directive>,
    ) {
        // No payment concept in the baseline.
    }

    fn on_server_done(&mut self, _now: SimTime, req: RequestKey, _out: &mut Vec<Directive>) {
        assert_eq!(self.busy, Some(req), "done for a request not on the server");
        self.busy = None;
    }

    fn on_cancel(&mut self, _now: SimTime, _req: RequestKey, _out: &mut Vec<Directive>) {}

    fn on_tick(&mut self, _now: SimTime, _out: &mut Vec<Directive>) -> Option<SimTime> {
        None
    }

    fn reset(&mut self, _now: SimTime) {
        self.busy = None;
    }

    fn name(&self) -> &'static str {
        "off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinner::testutil::{admitted, dropped, key, t};

    #[test]
    fn admits_when_free_drops_when_busy() {
        let mut f = NoDefense::new();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        out.clear();
        f.on_request(t(1), key(2, 1), &mut out);
        f.on_request(t(2), key(3, 1), &mut out);
        assert_eq!(dropped(&out), vec![key(2, 1), key(3, 1)]);
        out.clear();
        f.on_server_done(t(3), key(1, 1), &mut out);
        f.on_request(t(4), key(2, 2), &mut out);
        assert_eq!(admitted(&out), vec![key(2, 2)]);
        assert_eq!(f.stats.admitted, 2);
        assert_eq!(f.stats.dropped, 2);
    }

    #[test]
    fn no_price() {
        let f = NoDefense::new();
        assert_eq!(f.going_rate(), None);
        assert_eq!(f.name(), "off");
    }

    #[test]
    fn tick_is_inert() {
        let mut f = NoDefense::new();
        let mut out = Vec::new();
        assert_eq!(f.on_tick(t(100), &mut out), None);
        assert!(out.is_empty());
    }
}
