//! §5 — heterogeneous requests: per-quantum auctions.
//!
//! When requests cause unequal amounts of work and the thinner cannot
//! know the difficulty in advance (but attackers can), charging the
//! average price would let an attacker win a disproportionate share by
//! sending only the hardest requests. The fix: break time into quanta of
//! length `τ`, view each request as a sequence of equal-sized chunks, and
//! hold a virtual auction *per quantum*. A request of `x` chunks must win
//! `x` auctions; the thinner never needs to know `x`.
//!
//! Procedure (verbatim from the paper, every `τ` seconds):
//! 1. let `v` be the active request and `u` the top-paying contender;
//! 2. if `u` has paid more than `v`: SUSPEND `v`, admit (or RESUME) `u`,
//!    zero `u`'s payment;
//! 3. if `v` has paid more than `u`: `v` continues, zero `v`'s payment
//!    (it has not yet paid for the next quantum);
//! 4. ABORT any request SUSPENDed longer than a timeout (paper: 30 s).
//!
//! Unlike §3.3, payment channels are *not* terminated on admission — the
//! thinner extracts an on-going payment until the request completes.

use super::FrontEnd;
use crate::types::{Directive, RequestKey};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;
use std::collections::BTreeMap;

/// Configuration for the quantum-auction front end.
#[derive(Clone, Copy, Debug)]
pub struct QuantumConfig {
    /// Quantum length `τ`.
    pub quantum: SimDuration,
    /// ABORT a request suspended longer than this (paper: 30 s).
    pub suspend_timeout: SimDuration,
}

impl Default for QuantumConfig {
    fn default() -> Self {
        QuantumConfig {
            quantum: SimDuration::from_millis(100),
            suspend_timeout: SimDuration::from_secs(30),
        }
    }
}

/// Counters for the quantum front end.
#[derive(Clone, Debug, Default)]
pub struct QuantumStats {
    /// Quantum auctions evaluated.
    pub quantum_auctions: u64,
    /// SUSPEND directives issued.
    pub suspensions: u64,
    /// RESUME directives issued.
    pub resumptions: u64,
    /// Requests aborted after overlong suspension.
    pub aborts: u64,
    /// Requests completed.
    pub completed: u64,
    /// Bytes paid per quantum won (the per-chunk price).
    pub quantum_prices: Samples,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Standing {
    /// Never yet admitted.
    Waiting,
    /// Admitted before, currently SUSPENDed on the server since the time.
    Suspended(SimTime),
}

#[derive(Clone, Copy, Debug)]
struct Contender {
    paid: u64,
    seq: u64,
    standing: Standing,
}

/// The §5 front end. See module docs.
pub struct QuantumFrontEnd {
    cfg: QuantumConfig,
    /// The request currently executing, with bytes paid since it last won.
    active: Option<(RequestKey, u64)>,
    contenders: BTreeMap<RequestKey, Contender>,
    next_seq: u64,
    /// Counters and per-quantum price samples.
    pub stats: QuantumStats,
}

impl QuantumFrontEnd {
    /// A quantum-auction thinner with the given configuration.
    pub fn new(cfg: QuantumConfig) -> Self {
        assert!(cfg.quantum.as_nanos() > 0);
        QuantumFrontEnd {
            cfg,
            active: None,
            contenders: BTreeMap::new(),
            next_seq: 0,
            stats: QuantumStats::default(),
        }
    }

    /// The currently executing request, if any.
    pub fn active(&self) -> Option<RequestKey> {
        self.active.map(|(k, _)| k)
    }

    /// Number of requests waiting or suspended.
    pub fn contender_count(&self) -> usize {
        self.contenders.len()
    }

    fn top_contender(&self) -> Option<RequestKey> {
        self.contenders
            .iter()
            .max_by(|(_, a), (_, b)| a.paid.cmp(&b.paid).then(b.seq.cmp(&a.seq)))
            .map(|(k, _)| *k)
    }

    /// Put `u` on the server: RESUME if it was suspended, Admit otherwise.
    /// Zeroes its payment per the procedure.
    fn grant(&mut self, u: RequestKey, out: &mut Vec<Directive>) {
        let c = self.contenders.remove(&u).expect("grant of non-contender");
        self.stats.quantum_prices.push(c.paid as f64);
        self.active = Some((u, 0));
        match c.standing {
            Standing::Waiting => out.push(Directive::Admit(u)),
            Standing::Suspended(_) => {
                self.stats.resumptions += 1;
                out.push(Directive::Resume(u));
            }
        }
    }

    /// Move the active request back to the contender pool as Suspended.
    fn demote_active(&mut self, now: SimTime, out: &mut Vec<Directive>) {
        let (v, paid) = self.active.take().expect("no active to demote");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.contenders.insert(
            v,
            Contender {
                paid,
                seq,
                standing: Standing::Suspended(now),
            },
        );
        self.stats.suspensions += 1;
        out.push(Directive::Suspend(v));
    }
}

impl FrontEnd for QuantumFrontEnd {
    fn on_request(&mut self, _now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        if self.contenders.contains_key(&req) || self.active.map(|(k, _)| k) == Some(req) {
            return;
        }
        if self.active.is_none() && self.contenders.is_empty() {
            self.active = Some((req, 0));
            self.stats.quantum_prices.push(0.0);
            out.push(Directive::Admit(req));
            // Even an unloaded server keeps the channel open in §5: the
            // client pays per quantum. (At zero contention the ongoing
            // price stays zero.)
            out.push(Directive::Encourage(req));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.contenders.insert(
            req,
            Contender {
                paid: 0,
                seq,
                standing: Standing::Waiting,
            },
        );
        out.push(Directive::Encourage(req));
    }

    fn on_payment(
        &mut self,
        _now: SimTime,
        req: RequestKey,
        bytes: u64,
        _out: &mut Vec<Directive>,
    ) {
        if let Some((k, paid)) = self.active.as_mut() {
            if *k == req {
                *paid += bytes;
                return;
            }
        }
        if let Some(c) = self.contenders.get_mut(&req) {
            c.paid += bytes;
        }
    }

    fn on_server_done(&mut self, now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        let (k, _) = self.active.take().expect("done on idle server");
        assert_eq!(k, req, "done for a request not active");
        self.stats.completed += 1;
        out.push(Directive::TerminateChannel(req));
        // Don't idle until the next tick: grant the top contender now.
        if let Some(u) = self.top_contender() {
            self.grant(u, out);
        }
        let _ = now;
    }

    fn on_cancel(&mut self, _now: SimTime, req: RequestKey, out: &mut Vec<Directive>) {
        if let Some(c) = self.contenders.remove(&req) {
            if matches!(c.standing, Standing::Suspended(_)) {
                // The client walked away from a suspended request: the
                // server must still clean it up.
                self.stats.aborts += 1;
                out.push(Directive::AbortRequest(req));
            }
        }
    }

    fn on_tick(&mut self, now: SimTime, out: &mut Vec<Directive>) -> Option<SimTime> {
        self.stats.quantum_auctions += 1;

        // Step 4 first: abort overstaying suspended requests so they don't
        // win the auction below.
        let timeout = self.cfg.suspend_timeout;
        let mut stale: Vec<RequestKey> = self
            .contenders
            .iter()
            .filter(|(_, c)| match c.standing {
                Standing::Suspended(since) => now.saturating_since(since) >= timeout,
                Standing::Waiting => false,
            })
            .map(|(k, _)| *k)
            .collect();
        stale.sort();
        for k in stale {
            self.contenders.remove(&k);
            self.stats.aborts += 1;
            out.push(Directive::TerminateChannel(k));
            out.push(Directive::AbortRequest(k));
        }

        // Steps 1-3.
        match (self.active, self.top_contender()) {
            (None, Some(u)) => self.grant(u, out),
            (Some((_, v_paid)), Some(u)) => {
                let u_paid = self.contenders[&u].paid;
                if u_paid > v_paid {
                    self.demote_active(now, out);
                    self.grant(u, out);
                } else {
                    // v continues; it has not yet paid for the next quantum.
                    self.active.as_mut().expect("active").1 = 0;
                    self.stats.quantum_prices.push(v_paid as f64);
                }
            }
            (Some((v, paid)), None) => {
                // No contention: v keeps the server; its price resets.
                let _ = (v, paid);
                self.active.as_mut().expect("active").1 = 0;
            }
            (None, None) => {}
        }
        Some(now + self.cfg.quantum)
    }

    fn reset(&mut self, _now: SimTime) {
        self.active = None;
        self.contenders.clear();
        self.next_seq = 0;
    }

    fn name(&self) -> &'static str {
        "quantum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinner::testutil::{admitted, key, t};

    fn fe() -> QuantumFrontEnd {
        QuantumFrontEnd::new(QuantumConfig {
            quantum: SimDuration::from_millis(100),
            suspend_timeout: SimDuration::from_secs(30),
        })
    }

    #[test]
    fn first_request_admitted_and_keeps_paying() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        assert_eq!(admitted(&out), vec![key(1, 1)]);
        assert!(out.contains(&Directive::Encourage(key(1, 1))));
        assert_eq!(f.active(), Some(key(1, 1)));
    }

    #[test]
    fn higher_payer_preempts_active() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(10), key(2, 1), &mut out);
        f.on_payment(t(20), key(1, 1), 100, &mut out);
        f.on_payment(t(30), key(2, 1), 500, &mut out);
        out.clear();
        f.on_tick(t(100), &mut out);
        assert_eq!(out[0], Directive::Suspend(key(1, 1)));
        assert_eq!(out[1], Directive::Admit(key(2, 1)));
        assert_eq!(f.active(), Some(key(2, 1)));
        assert_eq!(f.stats.suspensions, 1);
    }

    #[test]
    fn active_retains_on_higher_payment_and_is_zeroed() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(10), key(2, 1), &mut out);
        f.on_payment(t(20), key(1, 1), 500, &mut out);
        f.on_payment(t(30), key(2, 1), 100, &mut out);
        out.clear();
        f.on_tick(t(100), &mut out);
        assert!(out.is_empty(), "v continues silently");
        // v's payment was zeroed: same contender payment now preempts.
        f.on_payment(t(110), key(1, 1), 50, &mut out);
        out.clear();
        f.on_tick(t(200), &mut out);
        assert_eq!(out[0], Directive::Suspend(key(1, 1)));
        assert_eq!(out[1], Directive::Admit(key(2, 1)));
    }

    #[test]
    fn suspended_request_resumes_not_admits() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(10), key(2, 1), &mut out);
        f.on_payment(t(20), key(2, 1), 500, &mut out);
        f.on_tick(t(100), &mut out); // 2 preempts 1
        f.on_payment(t(110), key(1, 1), 900, &mut out);
        out.clear();
        f.on_tick(t(200), &mut out); // 1 comes back
        assert_eq!(out[0], Directive::Suspend(key(2, 1)));
        assert_eq!(out[1], Directive::Resume(key(1, 1)));
        assert_eq!(f.stats.resumptions, 1);
    }

    #[test]
    fn completion_grants_top_contender_immediately() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(10), key(2, 1), &mut out);
        f.on_request(t(10), key(3, 1), &mut out);
        f.on_payment(t(20), key(2, 1), 10, &mut out);
        f.on_payment(t(20), key(3, 1), 30, &mut out);
        out.clear();
        f.on_server_done(t(50), key(1, 1), &mut out);
        assert!(out.contains(&Directive::TerminateChannel(key(1, 1))));
        assert_eq!(admitted(&out), vec![key(3, 1)]);
        assert_eq!(f.stats.completed, 1);
    }

    #[test]
    fn overlong_suspension_aborts() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(10), key(2, 1), &mut out);
        f.on_payment(t(20), key(2, 1), 500, &mut out);
        f.on_tick(t(100), &mut out); // suspend 1
        out.clear();
        // 1 stops paying. 30 s later it is aborted.
        f.on_tick(t(30_100), &mut out);
        assert!(out.contains(&Directive::AbortRequest(key(1, 1))));
        assert!(out.contains(&Directive::TerminateChannel(key(1, 1))));
        assert_eq!(f.stats.aborts, 1);
        assert_eq!(f.contender_count(), 0);
    }

    #[test]
    fn tick_returns_next_quantum() {
        let mut f = fe();
        let mut out = Vec::new();
        let next = f.on_tick(t(100), &mut out);
        assert_eq!(next, Some(t(200)));
    }

    #[test]
    fn cancel_of_suspended_aborts_server_side() {
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(10), key(2, 1), &mut out);
        f.on_payment(t(20), key(2, 1), 500, &mut out);
        f.on_tick(t(100), &mut out); // suspend 1
        out.clear();
        f.on_cancel(t(200), key(1, 1), &mut out);
        assert!(out.contains(&Directive::AbortRequest(key(1, 1))));
    }

    #[test]
    fn x_chunk_request_needs_x_wins() {
        // Two equal continuous payers: the active one is zeroed each
        // quantum it wins, so they alternate — each gets ~half the quanta,
        // which is the bandwidth-proportional outcome for equal bandwidth.
        let mut f = fe();
        let mut out = Vec::new();
        f.on_request(t(0), key(1, 1), &mut out);
        f.on_request(t(1), key(2, 1), &mut out);
        let mut quanta = [0u64, 0];
        for q in 1..=100u64 {
            f.on_payment(t(q * 100 - 50), key(1, 1), 100, &mut out);
            f.on_payment(t(q * 100 - 49), key(2, 1), 100, &mut out);
            out.clear();
            f.on_tick(t(q * 100), &mut out);
            match f.active() {
                Some(k) if k == key(1, 1) => quanta[0] += 1,
                Some(k) if k == key(2, 1) => quanta[1] += 1,
                _ => {}
            }
        }
        let ratio = quanta[0] as f64 / (quanta[0] + quanta[1]) as f64;
        assert!((0.4..0.6).contains(&ratio), "split {quanta:?}");
    }
}
