//! Flyweight client crowds: one tracker aggregating N identical clients.
//!
//! Large background populations (Fig 2 at 10^5+ clients) do not need one
//! [`RequestTracker`](crate::client::RequestTracker) object, one RNG, and
//! one map allocation per client. A [`CohortTracker`] keeps the *union*
//! of N members' request bookkeeping in struct-of-arrays columns keyed by
//! a dense [`MemberId`]: per-member sequence counters, window occupancy,
//! and backlog queues live in flat [`IdVec`] tables, while the (sparse)
//! outstanding set is one cohort-wide map keyed by a packed global id.
//!
//! The semantics per member are *exactly* [`RequestTracker`]'s — same
//! window rule, same backlog expiry, same denial taxonomy — so a cohort
//! of one member is observably identical to one fully simulated client
//! (a property the test suite pins down). For N > 1 the members share
//! the arrival process (the superposition of N Poisson processes of rate
//! λ is one Poisson process of rate Nλ, with the firing member uniform)
//! which is statistically exact; what a *driver* chooses to share (e.g.
//! one access flow) is its own documented approximation.
//!
//! [`RequestTracker`]: crate::client::RequestTracker

use crate::client::{ClientProfile, ClientStats, Outstanding};
use speakup_net::ids::{IdVec, MemberId};
use speakup_net::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Bits of a cohort-global request id holding the member-local sequence
/// number; the high bits hold the member index. Member 0's global ids
/// therefore *equal* its local sequence numbers — the bit pattern a lone
/// [`RequestTracker`](crate::client::RequestTracker) would emit — which
/// is what makes the N = 1 equivalence exact down to wire tags.
pub const GID_LOCAL_BITS: u32 = 32;

/// Pack (member, member-local sequence) into a cohort-global request id.
#[inline]
pub fn gid(member: MemberId, local: u32) -> u64 {
    ((member.0 as u64) << GID_LOCAL_BITS) | local as u64
}

/// The member a cohort-global request id belongs to.
#[inline]
pub fn gid_member(id: u64) -> MemberId {
    MemberId((id >> GID_LOCAL_BITS) as u32)
}

/// Request bookkeeping for a cohort of N identical clients.
///
/// Mirrors [`RequestTracker`](crate::client::RequestTracker) member by
/// member; outcome counters aggregate across the cohort into one
/// [`ClientStats`].
#[derive(Clone, Debug)]
pub struct CohortTracker {
    profile: ClientProfile,
    /// SoA column: next member-local sequence number.
    next_local: IdVec<MemberId, u32>,
    /// SoA column: issued, unanswered requests per member (window fill).
    window_fill: IdVec<MemberId, u32>,
    /// SoA column: per-member backlog of (global id, creation time).
    backlogs: IdVec<MemberId, VecDeque<(u64, SimTime)>>,
    /// Cohort-wide outstanding set, keyed by global id. Sparse (bounded
    /// by N × window), so one ordered map beats N tiny ones.
    outstanding: BTreeMap<u64, Outstanding>,
    /// Aggregated outcome counters and latencies for the whole cohort.
    pub stats: ClientStats,
}

impl CohortTracker {
    /// A tracker for `members` identical clients with the given profile.
    pub fn new(profile: ClientProfile, members: u32) -> Self {
        assert!(members > 0, "a cohort needs at least one member");
        let n = members as usize;
        CohortTracker {
            profile,
            next_local: IdVec::with(n, |_| 0),
            window_fill: IdVec::with(n, |_| 0),
            backlogs: IdVec::with(n, |_| VecDeque::new()),
            outstanding: BTreeMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// The shared member profile.
    pub fn profile(&self) -> &ClientProfile {
        &self.profile
    }

    /// Number of members.
    pub fn members(&self) -> u32 {
        self.next_local.len() as u32
    }

    /// Issued requests across the whole cohort.
    pub fn outstanding_total(&self) -> usize {
        self.outstanding.len()
    }

    /// Backlogged requests across the whole cohort.
    pub fn backlog_total(&self) -> usize {
        self.backlogs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Metadata for an issued request.
    pub fn outstanding(&self, id: u64) -> Option<Outstanding> {
        self.outstanding.get(&id).copied()
    }

    fn issue(&mut self, member: MemberId, id: u64, created: SimTime, now: SimTime) {
        self.outstanding.insert(
            id,
            Outstanding {
                created,
                issued: now,
            },
        );
        self.window_fill[member] += 1;
        self.stats.issued += 1;
    }

    /// `member`'s Poisson process fired: returns the global request id to
    /// issue now if the member's window has room; otherwise the request
    /// joins that member's backlog.
    pub fn on_fire(&mut self, member: MemberId, now: SimTime) -> Option<u64> {
        self.stats.generated += 1;
        self.expire_backlog(member, now);
        let local = self.next_local[member];
        self.next_local[member] += 1;
        let id = gid(member, local);
        if self.window_fill[member] < self.profile.window {
            self.issue(member, id, now, now);
            Some(id)
        } else {
            self.backlogs[member].push_back((id, now));
            None
        }
    }

    /// Drop `member`'s expired backlog entries, logging denials.
    pub fn expire_backlog(&mut self, member: MemberId, now: SimTime) {
        while let Some(&(_, created)) = self.backlogs[member].front() {
            if now.saturating_since(created) > self.profile.backlog_timeout {
                self.backlogs[member].pop_front();
                self.stats.denied_backlog += 1;
            } else {
                break;
            }
        }
    }

    /// Pull `member`'s next viable backlogged request into the window.
    fn refill(&mut self, member: MemberId, now: SimTime) -> Option<u64> {
        self.expire_backlog(member, now);
        if self.window_fill[member] < self.profile.window {
            if let Some((id, created)) = self.backlogs[member].pop_front() {
                self.issue(member, id, created, now);
                return Some(id);
            }
        }
        None
    }

    /// A response arrived for `id`. Returns the owning member's next
    /// backlogged request, if one becomes eligible.
    pub fn on_served(&mut self, now: SimTime, id: u64) -> Option<u64> {
        let meta = self
            .outstanding
            .remove(&id)
            .expect("served a request that is not outstanding");
        let member = gid_member(id);
        self.window_fill[member] -= 1;
        self.stats.served += 1;
        self.stats
            .latency
            .push(now.saturating_since(meta.created).as_secs_f64());
        self.refill(member, now)
    }

    /// The thinner dropped `id`. Returns the next request to issue.
    pub fn on_dropped(&mut self, now: SimTime, id: u64) -> Option<u64> {
        self.outstanding.remove(&id)?;
        let member = gid_member(id);
        self.window_fill[member] -= 1;
        self.stats.denied_dropped += 1;
        self.refill(member, now)
    }

    /// Abandon an issued request (give-up timeout). Returns the next
    /// request to issue.
    pub fn on_gave_up(&mut self, now: SimTime, id: u64) -> Option<u64> {
        self.outstanding.remove(&id)?;
        let member = gid_member(id);
        self.window_fill[member] -= 1;
        self.stats.denied_outstanding += 1;
        self.refill(member, now)
    }

    /// Issued requests past the give-up timeout, across all members.
    pub fn overdue(&self, now: SimTime) -> Vec<u64> {
        let Some(give_up) = self.profile.give_up else {
            return Vec::new();
        };
        self.outstanding
            .iter()
            .filter(|(_, o)| now.saturating_since(o.issued) >= give_up)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The earliest give-up deadline among outstanding requests, if any.
    pub fn next_give_up_deadline(&self) -> Option<SimTime> {
        let give_up = self.profile.give_up?;
        self.outstanding.values().map(|o| o.issued + give_up).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RequestTracker;
    use speakup_net::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    const M0: MemberId = MemberId(0);

    #[test]
    fn gid_packs_member_and_local() {
        assert_eq!(gid(MemberId(0), 7), 7);
        assert_eq!(gid(MemberId(3), 7), (3 << 32) | 7);
        assert_eq!(gid_member(gid(MemberId(3), 7)), MemberId(3));
    }

    /// A one-member cohort replays a RequestTracker move for move.
    #[test]
    fn single_member_cohort_matches_request_tracker() {
        let profile = ClientProfile::bad().give_up_after(SimDuration::from_secs(5));
        let mut solo = RequestTracker::new(profile);
        let mut crowd = CohortTracker::new(profile, 1);
        // A scripted mix of fires, serves, drops, and give-ups.
        let mut fired = Vec::new();
        for i in 0..60u64 {
            let now = t(i * 400);
            let a = solo.on_fire(now).map(|r| r.0);
            let b = crowd.on_fire(M0, now);
            assert_eq!(a, b, "fire {i}");
            if let Some(id) = b {
                fired.push(id);
            }
            if i % 3 == 0 {
                if let Some(id) = fired.pop() {
                    if crowd.outstanding(id).is_some() {
                        let a = solo
                            .on_served(now, crate::types::RequestId(id))
                            .map(|r| r.0);
                        let b = crowd.on_served(now, id);
                        assert_eq!(a, b, "serve {i}");
                    }
                }
            }
            if i % 7 == 0 {
                let od_a: Vec<u64> = solo.overdue(now).iter().map(|r| r.0).collect();
                let od_b = crowd.overdue(now);
                assert_eq!(od_a, od_b, "overdue {i}");
                for id in od_b {
                    let a = solo
                        .on_gave_up(now, crate::types::RequestId(id))
                        .map(|r| r.0);
                    let b = crowd.on_gave_up(now, id);
                    assert_eq!(a, b, "gave up {i}");
                }
            }
            assert_eq!(
                solo.next_give_up_deadline(),
                crowd.next_give_up_deadline(),
                "deadline {i}"
            );
        }
        assert_eq!(solo.stats.generated, crowd.stats.generated);
        assert_eq!(solo.stats.issued, crowd.stats.issued);
        assert_eq!(solo.stats.served, crowd.stats.served);
        assert_eq!(solo.stats.denied(), crowd.stats.denied());
        assert_eq!(solo.stats.latency.values(), crowd.stats.latency.values());
    }

    #[test]
    fn members_have_independent_windows() {
        let mut c = CohortTracker::new(ClientProfile::good(), 2); // w = 1 each
        let a = c.on_fire(MemberId(0), t(0));
        assert!(a.is_some());
        // Member 0's window is full; member 1's is not.
        assert!(c.on_fire(MemberId(0), t(1)).is_none());
        let b = c.on_fire(MemberId(1), t(2));
        assert!(b.is_some());
        assert_eq!(c.outstanding_total(), 2);
        assert_eq!(c.backlog_total(), 1);
        // Serving member 0 refills from member 0's backlog only.
        let next = c.on_served(t(3), a.expect("invariant: asserted is_some above"));
        assert_eq!(next.map(gid_member), Some(MemberId(0)));
    }

    #[test]
    fn backlog_expiry_is_per_member() {
        let mut c = CohortTracker::new(ClientProfile::good(), 2);
        let a = c
            .on_fire(MemberId(0), t(0))
            .expect("invariant: empty window always issues");
        c.on_fire(MemberId(0), t(1)); // backlogged on member 0
        c.on_fire(MemberId(1), t(2)); // issued on member 1
        let next = c.on_served(t(11_500), a);
        assert!(next.is_none(), "member 0's backlog expired");
        assert_eq!(c.stats.denied_backlog, 1);
        assert_eq!(c.outstanding_total(), 1, "member 1 unaffected");
    }

    #[test]
    fn dropped_unknown_id_is_a_no_op() {
        let mut c = CohortTracker::new(ClientProfile::good(), 1);
        c.on_fire(M0, t(0));
        assert!(c.on_dropped(t(1), gid(MemberId(0), 999)).is_none());
        assert_eq!(c.stats.denied_dropped, 0);
    }
}
