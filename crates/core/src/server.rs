//! The emulated protected server.
//!
//! Mirrors the paper's prototype (§6): the server processes one request at
//! a time, with a service time drawn uniformly from `[0.9/c, 1.1/c]` for
//! capacity `c` requests/second. For the heterogeneous-request design
//! (§5) the server additionally supports SUSPEND / RESUME / ABORT, the
//! interface the paper assumes of transaction managers and application
//! servers, implemented here by tracking each request's remaining work.

use crate::types::RequestKey;
use speakup_net::rng::Pcg32;
use speakup_net::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A request currently executing.
#[derive(Clone, Copy, Debug)]
struct Running {
    req: RequestKey,
    /// When the request will complete if not suspended.
    finish_at: SimTime,
}

/// A request that was suspended mid-execution.
#[derive(Clone, Copy, Debug)]
struct Suspended {
    /// Work left to do when suspended.
    remaining: SimDuration,
    /// When it was suspended (for the §5 abort timeout).
    since: SimTime,
}

/// Counters for the server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests fully completed.
    pub completed: u64,
    /// SUSPEND operations performed.
    pub suspensions: u64,
    /// RESUME operations performed.
    pub resumptions: u64,
    /// Requests aborted while suspended.
    pub aborted: u64,
    /// Total time spent busy.
    pub busy_time: SimDuration,
}

/// The emulated server. One request at a time; scarce resource = time.
#[derive(Debug)]
pub struct EmulatedServer {
    capacity: f64,
    /// Service time jitter bounds as fractions of the mean (paper: 0.9/1.1).
    jitter: (f64, f64),
    running: Option<Running>,
    /// When the current execution slice started (for busy accounting).
    slice_started: SimTime,
    suspended: BTreeMap<RequestKey, Suspended>,
    rng: Pcg32,
    /// Counters.
    pub stats: ServerStats,
}

impl EmulatedServer {
    /// A server with capacity `c` requests/second and the paper's
    /// `[0.9/c, 1.1/c]` service-time distribution.
    pub fn new(capacity: f64, seed: u64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        EmulatedServer {
            capacity,
            jitter: (0.9, 1.1),
            running: None,
            slice_started: SimTime::ZERO,
            suspended: BTreeMap::new(),
            rng: Pcg32::new(seed, 0x5e),
            stats: ServerStats::default(),
        }
    }

    /// Capacity in requests/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Re-rate the server to `capacity` requests/second. Affects only
    /// future [`EmulatedServer::draw_work`] draws — work already in
    /// flight keeps its drawn service time. Replicated thinners use
    /// this to shift each replica's slice of the aggregate capacity as
    /// merged bid digests move (the RNG stream is untouched, so the
    /// jitter sequence stays deterministic).
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(capacity > 0.0, "capacity must be positive");
        self.capacity = capacity;
    }

    /// The hosting node crashed and restarted: forget the running and
    /// suspended requests, as a freshly started process would. Capacity,
    /// the RNG stream (determinism), and cumulative stats (measurement
    /// apparatus, not process memory) survive. Work the crash cut short
    /// is never credited to `busy_time`.
    pub fn reset(&mut self) {
        self.running = None;
        self.suspended.clear();
    }

    /// Whether a request is currently executing.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// The request currently executing, if any.
    pub fn running(&self) -> Option<RequestKey> {
        self.running.map(|r| r.req)
    }

    /// Requests currently suspended.
    pub fn suspended_count(&self) -> usize {
        self.suspended.len()
    }

    /// Draw a service time for a request of `difficulty` (1.0 = the
    /// paper's homogeneous case; x = a request of x chunks in §5 terms).
    pub fn draw_work(&mut self, difficulty: f64) -> SimDuration {
        let base = self.rng.uniform(self.jitter.0, self.jitter.1) / self.capacity;
        SimDuration::from_secs_f64(base * difficulty)
    }

    /// Start executing `req` with `work` remaining. Returns the completion
    /// time the caller must schedule. Panics if already busy.
    pub fn start(&mut self, now: SimTime, req: RequestKey, work: SimDuration) -> SimTime {
        assert!(self.running.is_none(), "server is busy");
        let finish_at = now + work;
        self.running = Some(Running { req, finish_at });
        self.slice_started = now;
        finish_at
    }

    /// Convenience: draw work for `difficulty` and start.
    pub fn start_request(&mut self, now: SimTime, req: RequestKey, difficulty: f64) -> SimTime {
        let work = self.draw_work(difficulty);
        self.start(now, req, work)
    }

    /// The scheduled completion fired: the request is done. Returns it.
    /// Panics if called when idle or before the finish time.
    pub fn complete(&mut self, now: SimTime) -> RequestKey {
        let r = self.running.take().expect("complete() on idle server");
        assert!(now >= r.finish_at, "complete() before finish time");
        self.stats.completed += 1;
        self.stats.busy_time += now.saturating_since(self.slice_started);
        r.req
    }

    /// §5: SUSPEND the running request, remembering its remaining work.
    /// Panics if `req` is not the running request.
    pub fn suspend(&mut self, now: SimTime, req: RequestKey) {
        let r = self.running.take().expect("suspend() on idle server");
        assert_eq!(r.req, req, "suspend() target is not running");
        let remaining = r.finish_at.saturating_since(now);
        self.suspended.insert(
            req,
            Suspended {
                remaining,
                since: now,
            },
        );
        self.stats.suspensions += 1;
        self.stats.busy_time += now.saturating_since(self.slice_started);
    }

    /// §5: RESUME a suspended request. Returns its new completion time.
    /// Panics if busy or if `req` was not suspended.
    pub fn resume(&mut self, now: SimTime, req: RequestKey) -> SimTime {
        assert!(self.running.is_none(), "resume() on busy server");
        let s = self
            .suspended
            .remove(&req)
            .expect("resume() of a request that is not suspended");
        self.stats.resumptions += 1;
        self.start(now, req, s.remaining)
    }

    /// §5: ABORT a suspended request (e.g. suspended too long).
    /// Panics if `req` was not suspended.
    pub fn abort_suspended(&mut self, req: RequestKey) {
        self.suspended
            .remove(&req)
            .expect("abort of a request that is not suspended");
        self.stats.aborted += 1;
    }

    /// How long `req` has been suspended, if it is.
    pub fn suspended_since(&self, req: RequestKey) -> Option<SimTime> {
        self.suspended.get(&req).map(|s| s.since)
    }

    /// All currently suspended requests with their suspension times,
    /// in deterministic (sorted) order.
    pub fn suspended_requests(&self) -> Vec<(RequestKey, SimTime)> {
        let mut v: Vec<_> = self.suspended.iter().map(|(k, s)| (*k, s.since)).collect();
        v.sort();
        v
    }

    /// Fraction of `elapsed` the server spent busy.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_nanos() == 0 {
            return 0.0;
        }
        self.stats.busy_time.as_secs_f64() / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientId, RequestId};

    fn key(c: u32, r: u64) -> RequestKey {
        RequestKey::new(ClientId(c), RequestId(r))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn service_time_within_paper_bounds() {
        let mut s = EmulatedServer::new(100.0, 1);
        for _ in 0..10_000 {
            let w = s.draw_work(1.0).as_secs_f64();
            assert!((0.009..=0.011).contains(&w), "work {w}");
        }
    }

    #[test]
    fn service_time_mean_is_one_over_c() {
        let mut s = EmulatedServer::new(50.0, 2);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| s.draw_work(1.0).as_secs_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.02).abs() < 0.0002, "mean {mean}");
    }

    #[test]
    fn difficulty_scales_work() {
        let mut s = EmulatedServer::new(10.0, 3);
        let w = s.draw_work(5.0).as_secs_f64();
        assert!((0.45..=0.55).contains(&w), "work {w}");
    }

    #[test]
    fn start_complete_cycle() {
        let mut s = EmulatedServer::new(100.0, 4);
        assert!(!s.is_busy());
        let fin = s.start(t(0), key(1, 1), SimDuration::from_millis(10));
        assert_eq!(fin, t(10));
        assert!(s.is_busy());
        assert_eq!(s.running(), Some(key(1, 1)));
        let done = s.complete(t(10));
        assert_eq!(done, key(1, 1));
        assert!(!s.is_busy());
        assert_eq!(s.stats.completed, 1);
        assert_eq!(s.stats.busy_time, SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "server is busy")]
    fn double_start_panics() {
        let mut s = EmulatedServer::new(100.0, 5);
        s.start(t(0), key(1, 1), SimDuration::from_millis(10));
        s.start(t(1), key(1, 2), SimDuration::from_millis(10));
    }

    #[test]
    fn suspend_preserves_remaining_work() {
        let mut s = EmulatedServer::new(100.0, 6);
        s.start(t(0), key(1, 1), SimDuration::from_millis(10));
        s.suspend(t(4), key(1, 1));
        assert!(!s.is_busy());
        assert_eq!(s.suspended_count(), 1);
        assert_eq!(s.suspended_since(key(1, 1)), Some(t(4)));
        // Run something else meanwhile.
        s.start(t(4), key(2, 1), SimDuration::from_millis(3));
        s.complete(t(7));
        // Resume: 6 ms of work left.
        let fin = s.resume(t(7), key(1, 1));
        assert_eq!(fin, t(13));
        assert_eq!(s.complete(t(13)), key(1, 1));
        assert_eq!(s.stats.suspensions, 1);
        assert_eq!(s.stats.resumptions, 1);
        assert_eq!(s.stats.completed, 2);
    }

    #[test]
    fn abort_suspended_removes_it() {
        let mut s = EmulatedServer::new(100.0, 7);
        s.start(t(0), key(1, 1), SimDuration::from_millis(10));
        s.suspend(t(5), key(1, 1));
        s.abort_suspended(key(1, 1));
        assert_eq!(s.suspended_count(), 0);
        assert_eq!(s.stats.aborted, 1);
    }

    #[test]
    #[should_panic(expected = "not suspended")]
    fn resume_unknown_panics() {
        let mut s = EmulatedServer::new(100.0, 8);
        s.resume(t(0), key(9, 9));
    }

    #[test]
    fn utilization_accounting() {
        let mut s = EmulatedServer::new(100.0, 9);
        s.start(t(0), key(1, 1), SimDuration::from_millis(10));
        s.complete(t(10));
        // busy 10 ms of 40 ms elapsed.
        let u = s.utilization(SimDuration::from_millis(40));
        assert!((u - 0.25).abs() < 1e-9);
    }

    #[test]
    fn suspended_requests_sorted() {
        let mut s = EmulatedServer::new(100.0, 10);
        s.start(t(0), key(3, 1), SimDuration::from_millis(50));
        s.suspend(t(1), key(3, 1));
        s.start(t(1), key(1, 1), SimDuration::from_millis(50));
        s.suspend(t(2), key(1, 1));
        let v = s.suspended_requests();
        assert_eq!(v[0].0, key(1, 1));
        assert_eq!(v[1].0, key(3, 1));
    }
}
