//! Congestion-control ablation: Reno vs CUBIC sharing a bottleneck.

use speakup_net::link::LinkConfig;
use speakup_net::packet::NodeId;
use speakup_net::sim::{flow_id, App, Ctx, Simulator};
use speakup_net::tcp::{CongestionControl, FlowConfig};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::topology::TopologyBuilder;

struct Blaster {
    dst: NodeId,
    cc: CongestionControl,
}

impl App for Blaster {
    fn start(&mut self, ctx: &mut Ctx) {
        let cfg = FlowConfig {
            cc: self.cc,
            ..FlowConfig::default()
        };
        let f = ctx.open_flow(self.dst, cfg);
        ctx.send(f, 1 << 30, 1); // effectively unbounded
    }
}

#[derive(Default)]
struct Sink;
impl App for Sink {}

fn run_pair(cc_a: CongestionControl, cc_b: CongestionControl, secs: u64) -> (u64, u64) {
    let mut tb = TopologyBuilder::new();
    let a = tb.node();
    let b = tb.node();
    let gw = tb.node();
    let z = tb.node();
    let fast = LinkConfig::new(100_000_000, SimDuration::from_millis(1));
    tb.duplex(a, gw, fast);
    tb.duplex(b, gw, fast);
    tb.duplex(
        gw,
        z,
        LinkConfig::new(10_000_000, SimDuration::from_millis(20)).queue_packets(40),
    );
    let mut sim = Simulator::new(tb.build(), 99);
    sim.add_app(a, Box::new(Blaster { dst: z, cc: cc_a }));
    sim.add_app(b, Box::new(Blaster { dst: z, cc: cc_b }));
    sim.add_app(z, Box::new(Sink));
    sim.run_until(SimTime::from_secs(secs));
    (
        sim.world().flow(flow_id(a, 0)).acked_bytes(),
        sim.world().flow(flow_id(b, 0)).acked_bytes(),
    )
}

#[test]
fn two_cubic_flows_share_fairly() {
    let (x, y) = run_pair(CongestionControl::Cubic, CongestionControl::Cubic, 60);
    let ratio = x.min(y) as f64 / x.max(y) as f64;
    assert!(ratio > 0.55, "cubic/cubic split {x} vs {y}");
    // Aggregate stays near link capacity.
    let mbps = (x + y) as f64 * 8.0 / 60.0 / 1e6;
    assert!(mbps > 8.0 && mbps < 10.1, "goodput {mbps}");
}

#[test]
fn cubic_at_least_matches_reno_on_long_fat_path() {
    // CUBIC's raison d'être: faster window regrowth after loss on paths
    // with a large bandwidth-delay product.
    let (cubic, reno) = run_pair(CongestionControl::Cubic, CongestionControl::Reno, 180);
    assert!(
        cubic as f64 >= reno as f64 * 0.9,
        "cubic should not lose to reno: {cubic} vs {reno}"
    );
}

#[test]
fn solo_cubic_saturates_the_link() {
    let mut tb = TopologyBuilder::new();
    let a = tb.node();
    let z = tb.node();
    tb.duplex(
        a,
        z,
        LinkConfig::new(10_000_000, SimDuration::from_millis(30)).queue_packets(60),
    );
    let mut sim = Simulator::new(tb.build(), 7);
    sim.add_app(
        a,
        Box::new(Blaster {
            dst: z,
            cc: CongestionControl::Cubic,
        }),
    );
    sim.add_app(z, Box::new(Sink));
    sim.run_until(SimTime::from_secs(30));
    let acked = sim.world().flow(flow_id(a, 0)).acked_bytes();
    let mbps = acked as f64 * 8.0 / 30.0 / 1e6;
    // Without SACK, NewReno-style recovery pays one RTT per lost segment
    // after a drop-tail burst, so a solo flow on a long-fat path sits
    // meaningfully below capacity (Reno measures ~7.0 here, CUBIC ~5.3 —
    // CUBIC probes deeper and loses more per episode). The bound checks
    // we stay in that envelope rather than collapsing.
    assert!(mbps > 4.5, "cubic solo goodput {mbps} Mbit/s");
    let f = sim.world().flow(flow_id(a, 0));
    assert_eq!(f.stats.rto_events, 0, "no timeouts on a clean link");
    assert!(f.stats.fast_retransmits > 0, "loss cycles happened");
}
