//! Queue-ordering equivalence: the hierarchical timing wheel against the
//! pre-wheel binary-heap queue (kept in `event::reference` as the
//! oracle). Random `(time, lane)` schedules — spread across granule and
//! wheel-level boundaries — interleaved with pops, peeks, and handle
//! cancellations must produce byte-identical pop sequences; this is the
//! engine's determinism contract (`(time, lane, seq)` order, exactly)
//! stated as a property.
//!
//! Uses the vendored proptest stub: deterministic generation, no
//! shrinking — a failure reports the case number for replay.

use proptest::prelude::*;
use speakup_net::event::{reference::HeapQueue, EventQueue};
use speakup_net::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_pops_in_heap_order_under_cancellation(
        ops in proptest::collection::vec(
            // (raw time, lane, op selector, scale selector)
            (0u64..4096, 0u64..6, any::<u8>(), 0u32..48),
            1..300,
        ),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut wheel_handles = Vec::new();
        let mut heap_handles = Vec::new();
        // Liveness model, indexed by payload (== handle index): pushes
        // are live until popped or cancelled. The wheel's `len()` must
        // track this exactly; the reference's `len()` is *known wrong*
        // after a cancel-after-fire (its tombstone leak undercounts), so
        // the oracle is only consulted for pop/peek order.
        let mut live = Vec::new();
        for &(t, lane, op, scale) in &ops {
            match op % 8 {
                // Push (the common case): times span sub-granule ties up
                // to multi-level distances (scale shifts cross the 1 µs
                // granule and every 64-slot level boundary).
                0..=4 => {
                    let payload = live.len() as u64;
                    let time = SimTime::from_nanos(t << (scale % 40));
                    wheel_handles.push(wheel.push_lane_handle(time, lane, payload));
                    heap_handles.push(heap.push_lane(time, lane, payload));
                    live.push(true);
                }
                // Pop one from each; full (time, payload) equality.
                5 => {
                    let got = wheel.pop();
                    prop_assert_eq!(got, heap.pop());
                    if let Some((_, p)) = got {
                        live[p as usize] = false;
                    }
                }
                // Peek must agree without disturbing order.
                6 => prop_assert_eq!(wheel.peek_time(), heap.peek_time()),
                // Cancel a random handle — sometimes live, sometimes
                // already fired (the wheel must treat stale handles as
                // free no-ops; the reference leaks a tombstone but pops
                // identically).
                _ => {
                    if !wheel_handles.is_empty() {
                        let k = (t as usize).wrapping_mul(31) % wheel_handles.len();
                        wheel.cancel(wheel_handles[k]);
                        heap.cancel(heap_handles[k]);
                        live[k] = false;
                    }
                }
            }
            prop_assert_eq!(wheel.len(), live.iter().filter(|&&l| l).count());
        }
        // Drain both completely; the tails must match event for event.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_accepts_schedules_below_the_cursor(
        pairs in proptest::collection::vec((0u64..1_000_000, 0u64..4), 2..120),
    ) {
        // Alternate pop-then-push so later pushes frequently aim at
        // granules the wheel has already drained past (the cross-shard
        // reinjection shape: a barrier delivers events timed inside a
        // window the local queue has finished searching).
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &(t, lane)) in pairs.iter().enumerate() {
            let time = SimTime::from_nanos(t);
            wheel.push_lane(time, lane, i);
            heap.push_lane(time, lane, i);
            if i % 2 == 1 {
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
