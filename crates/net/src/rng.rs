//! Deterministic random numbers for the simulator.
//!
//! The simulator must be reproducible: the same seed must produce the same
//! packet trace on every platform. We therefore implement PCG-32
//! (O'Neill 2014, `XSH RR 64/32`) in-tree rather than depending on an
//! external RNG whose stream could change across versions.

/// A PCG-32 generator: 64-bit state, 32-bit output, period 2^64 per stream.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Different stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Create a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Derive an independent child generator, e.g. one per client, so that
    /// adding clients does not perturb the streams of existing ones.
    pub fn split(&mut self, stream: u64) -> Pcg32 {
        Pcg32::new(self.next_u64(), stream)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in [0, 1).
    pub fn f64(&mut self) -> f64 {
        // 53 random bits scaled into [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound) using Lemire's multiply-shift method
    /// with rejection, unbiased.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u32();
        let mut m = x as u64 * bound as u64;
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u32();
                m = x as u64 * bound as u64;
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform integer in [lo, hi] inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        let span = hi - lo;
        if span == 0 {
            return lo;
        }
        if span == u64::MAX {
            return self.next_u64();
        }
        // 64-bit Lemire with rejection.
        let bound = span + 1;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo_part = m as u64;
            if lo_part >= bound || lo_part >= bound.wrapping_neg() % bound {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in [a, b).
    pub fn uniform(&mut self, a: f64, b: f64) -> f64 {
        a + (b - a) * self.f64()
    }

    /// Exponentially distributed float with the given mean (i.e. rate
    /// 1/mean). Used for Poisson inter-arrival times.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Bernoulli trial with probability `p` of returning true.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::seeded(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Pcg32::seeded(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_u64_bounds() {
        let mut r = Pcg32::seeded(4);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(r.range_u64(5, 5), 5);
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = Pcg32::seeded(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_mean_converges() {
        let mut r = Pcg32::seeded(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.uniform(0.9, 1.1)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Pcg32::seeded(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::seeded(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_children_differ_from_parent() {
        let mut parent = Pcg32::seeded(13);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        let same = (0..64).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 4);
    }
}
