//! Deterministic fault schedules: link flaps and node crash/restart.
//!
//! A [`FaultSchedule`] is a list of `(at, down_for, what)` entries built
//! either explicitly (scenario- or CLI-driven) or derived from a seed via
//! the same location-keyed PCG streams the rest of the engine uses: each
//! link or node draws its flap times from its own stream, so a schedule
//! is a pure function of `(seed, entity)` — independent of shard count,
//! iteration order, and every other entity's schedule.
//!
//! The schedule itself is inert data. [`crate::sim::Simulator::inject_faults`]
//! turns it into shard-local events on dedicated fault lanes so the
//! canonical `(time, lane, seq)` order — and therefore `--shards K`
//! byte-identity — holds under faults.

use crate::packet::{LinkId, NodeId};
use crate::rng::Pcg32;
use crate::time::{SimDuration, SimTime};

/// PCG stream namespace for fault scheduling, disjoint from the node
/// (`1 << 40`) and link (`2 << 40`) namespaces used by the simulator.
pub const STREAM_FAULT: u64 = 3 << 40;

/// Distinguishes node-crash streams from link-flap streams within
/// [`STREAM_FAULT`] (entity indices are far below this bit).
const FAULT_NODE_BIT: u64 = 1 << 39;

/// What a fault entry takes down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The link stops carrying packets: everything queued or being
    /// transmitted is dropped, and packets offered while down are
    /// dropped without consulting the link's [`crate::link::DropSampler`]
    /// (the batched loss stream must stay byte-identical).
    LinkDown(LinkId),
    /// The node crashes: its flows abort, its pending timers die, and
    /// its app re-initializes when the node restarts.
    NodeCrash(NodeId),
}

/// One scheduled fault: `kind` goes down at `at` and recovers at
/// `at + down_for`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEntry {
    /// When the fault strikes.
    pub at: SimTime,
    /// How long the entity stays down.
    pub down_for: SimDuration,
    /// What goes down.
    pub kind: FaultKind,
}

impl FaultEntry {
    /// When the entity recovers.
    pub fn up_at(&self) -> SimTime {
        self.at + self.down_for
    }
}

/// A deterministic list of faults to inject into a run.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    entries: Vec<FaultEntry>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Schedule a link flap: `link` goes down at `at` for `down_for`.
    ///
    /// # Panics
    ///
    /// Panics if `down_for` is zero — a zero-length outage is a schedule
    /// typo, not a no-op worth silently accepting.
    pub fn link_down(&mut self, at: SimTime, link: LinkId, down_for: SimDuration) -> &mut Self {
        assert!(
            down_for > SimDuration::ZERO,
            "link flap must have a positive duration"
        );
        self.entries.push(FaultEntry {
            at,
            down_for,
            kind: FaultKind::LinkDown(link),
        });
        self
    }

    /// Schedule a node crash: `node` goes down at `at` and restarts at
    /// `at + down_for`.
    ///
    /// # Panics
    ///
    /// Panics if `down_for` is zero.
    pub fn node_crash(&mut self, at: SimTime, node: NodeId, down_for: SimDuration) -> &mut Self {
        assert!(
            down_for > SimDuration::ZERO,
            "node crash must have a positive duration"
        );
        self.entries.push(FaultEntry {
            at,
            down_for,
            kind: FaultKind::NodeCrash(node),
        });
        self
    }

    /// The scheduled faults, in insertion order (the simulator orders
    /// them by `(time, lane, seq)` at injection; insertion order here is
    /// immaterial).
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Derive link flaps for each of `links` from `seed`: flap onsets are
    /// Poisson with mean spacing `mean_every`, outages exponential with
    /// mean `mean_down` (floored at 1 ms so a degenerate draw still
    /// produces an observable outage), clipped to `[0, horizon)`.
    ///
    /// Each link draws from its own `STREAM_FAULT | link` PCG stream, so
    /// one link's schedule never perturbs another's and the result is
    /// independent of the order (or number) of links passed in.
    pub fn seeded_link_flaps(
        &mut self,
        seed: u64,
        links: &[LinkId],
        horizon: SimTime,
        mean_every: SimDuration,
        mean_down: SimDuration,
    ) -> &mut Self {
        for &link in links {
            let mut rng = Pcg32::new(seed, STREAM_FAULT | u64::from(link.0));
            self.seeded_entity_faults(&mut rng, horizon, mean_every, mean_down, |at, down| {
                FaultEntry {
                    at,
                    down_for: down,
                    kind: FaultKind::LinkDown(link),
                }
            });
        }
        self
    }

    /// Derive node crashes for each of `nodes` from `seed`, with the same
    /// distributional shape as [`Self::seeded_link_flaps`] but on the
    /// node half (`STREAM_FAULT | FAULT_NODE_BIT | node`) of the fault
    /// stream namespace.
    pub fn seeded_node_crashes(
        &mut self,
        seed: u64,
        nodes: &[NodeId],
        horizon: SimTime,
        mean_every: SimDuration,
        mean_down: SimDuration,
    ) -> &mut Self {
        for &node in nodes {
            let mut rng = Pcg32::new(seed, STREAM_FAULT | FAULT_NODE_BIT | u64::from(node.0));
            self.seeded_entity_faults(&mut rng, horizon, mean_every, mean_down, |at, down| {
                FaultEntry {
                    at,
                    down_for: down,
                    kind: FaultKind::NodeCrash(node),
                }
            });
        }
        self
    }

    fn seeded_entity_faults(
        &mut self,
        rng: &mut Pcg32,
        horizon: SimTime,
        mean_every: SimDuration,
        mean_down: SimDuration,
        mk: impl Fn(SimTime, SimDuration) -> FaultEntry,
    ) {
        assert!(
            mean_every > SimDuration::ZERO && mean_down > SimDuration::ZERO,
            "seeded faults need positive mean spacing and outage"
        );
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exp(mean_every.as_secs_f64()));
            if t >= horizon {
                return;
            }
            let down = SimDuration::from_secs_f64(rng.exp(mean_down.as_secs_f64()))
                .max(SimDuration::from_millis(1));
            self.entries.push(mk(t, down));
            t += down;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_entries_roundtrip() {
        let mut s = FaultSchedule::new();
        s.link_down(
            SimTime::from_secs(1),
            LinkId(3),
            SimDuration::from_millis(250),
        )
        .node_crash(SimTime::from_secs(2), NodeId(7), SimDuration::from_secs(5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.entries()[0].kind, FaultKind::LinkDown(LinkId(3)));
        assert_eq!(s.entries()[1].kind, FaultKind::NodeCrash(NodeId(7)));
        assert_eq!(s.entries()[1].up_at(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_length_outage_is_rejected() {
        let mut s = FaultSchedule::new();
        s.link_down(SimTime::ZERO, LinkId(0), SimDuration::ZERO);
    }

    #[test]
    fn seeded_flaps_are_per_link_streams() {
        // The schedule for link 5 must be identical whether it is derived
        // alone or alongside other links, in any order.
        let horizon = SimTime::from_secs(600);
        let every = SimDuration::from_secs(60);
        let down = SimDuration::from_secs(5);
        let mut alone = FaultSchedule::new();
        alone.seeded_link_flaps(42, &[LinkId(5)], horizon, every, down);
        let mut crowd = FaultSchedule::new();
        crowd.seeded_link_flaps(42, &[LinkId(9), LinkId(5), LinkId(0)], horizon, every, down);
        let of_5 = |s: &FaultSchedule| {
            s.entries()
                .iter()
                .filter(|e| e.kind == FaultKind::LinkDown(LinkId(5)))
                .copied()
                .collect::<Vec<_>>()
        };
        assert!(!of_5(&alone).is_empty(), "600 s at mean 60 s should flap");
        assert_eq!(of_5(&alone), of_5(&crowd));
    }

    #[test]
    fn seeded_flaps_respect_horizon_and_do_not_overlap_per_link() {
        let horizon = SimTime::from_secs(120);
        let mut s = FaultSchedule::new();
        s.seeded_link_flaps(
            7,
            &[LinkId(1)],
            horizon,
            SimDuration::from_secs(10),
            SimDuration::from_secs(3),
        );
        let mut last_up = SimTime::ZERO;
        for e in s.entries() {
            assert!(e.at < horizon);
            assert!(e.at >= last_up, "per-link flaps must not overlap");
            last_up = e.up_at();
        }
    }

    #[test]
    fn node_and_link_streams_are_disjoint() {
        // Node 5 and link 5 share an index but not a stream: their
        // schedules must differ.
        let horizon = SimTime::from_secs(600);
        let every = SimDuration::from_secs(60);
        let down = SimDuration::from_secs(5);
        let mut links = FaultSchedule::new();
        links.seeded_link_flaps(42, &[LinkId(5)], horizon, every, down);
        let mut nodes = FaultSchedule::new();
        nodes.seeded_node_crashes(42, &[NodeId(5)], horizon, every, down);
        let link_times: Vec<_> = links.entries().iter().map(|e| e.at).collect();
        let node_times: Vec<_> = nodes.entries().iter().map(|e| e.at).collect();
        assert_ne!(link_times, node_times);
    }
}
