//! The simulator: sharded world state, event loops, and the application
//! interface.
//!
//! One application ([`App`]) runs per node. Applications interact with the
//! world exclusively through [`Ctx`]: they open flows, write messages, set
//! timers, and abort flows. The world delivers callbacks — message arrival,
//! timer expiry, flow drained, flow aborted by peer — in deterministic
//! order.
//!
//! ## Sharded execution
//!
//! A simulation can be split across `K` shard event loops
//! ([`Simulator::new_sharded`]): each shard owns a subset of the nodes,
//! the links leaving those nodes, its own event queue, and per-node RNG
//! streams. Shards advance concurrently in *lookahead windows* (classic
//! conservative synchronization): any event shard `j` can hand shard `i`
//! is delayed by at least the *pairwise lookahead* `la[j][i]` — the
//! min-plus closure, over the shard interaction graph, of the smallest
//! propagation delay on any direct link from a `j`-owned node to an
//! `i`-owned node (`la[i][i]` is the minimum echo cycle through peers).
//! Each shard's window therefore ends at `min over j of
//! (next_j + la[j][i])`, where `next_j` is shard `j`'s earliest pending
//! event: a pair of distant shards can run hundreds of milliseconds
//! ahead of each other even while a LAN-scale pair stays tightly
//! coupled. Cross-shard traffic is exchanged at a barrier between
//! windows.
//!
//! ## Determinism — shard-count invariance
//!
//! The hard guarantee is that results are *byte-identical for any shard
//! count*, which is stronger than mere reproducibility. Three mechanisms
//! provide it:
//!
//! * **Location-keyed randomness.** Every node and every link owns its
//!   own PCG-32 stream derived from `(seed, entity id)`, so the random
//!   sequence an entity consumes does not depend on how entities are
//!   grouped into shards (a single global stream would be consumed in
//!   schedule order, which sharding changes).
//! * **Canonical event ordering.** The event queue orders same-time
//!   events by a canonical *lane* (the link, node, or flow the event
//!   belongs to) before insertion order. Each lane is only ever written
//!   by the shard owning its entity, so per-lane insertion order is
//!   shard-count invariant, and cross-lane ties resolve by lane id the
//!   same way in every configuration.
//! * **Split flows with delayed control records.** A flow's sender state
//!   lives on the source node's shard and its receiver state on the
//!   destination's. Sender-side facts the receiver needs (flow open,
//!   message boundaries, aborts) travel as control records delayed by the
//!   path's propagation delay — at least the lookahead, so they fit the
//!   window protocol, and strictly ahead of any data they describe. The
//!   same delay applies even when both halves share a shard, so `K = 1`
//!   and `K = 4` see identical timelines.

use crate::event::{EventHandle, EventQueue};
use crate::fault::{FaultKind, FaultSchedule};
use crate::ids::Ident;
use crate::link::{DropSampler, Enqueue, Link, LinkStats};
use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketKind, FLOW_NTH_BITS};
use crate::rng::Pcg32;
use crate::slab::FlowSlab;
use crate::tcp::{Flow, FlowAction, FlowConfig};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to a pending application timer, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle(EventHandle);

/// A per-node application.
///
/// All methods have empty defaults so implementations override only what
/// they need. `Any` is a supertrait so harnesses can downcast applications
/// back out of the simulator to read their results; `Send` lets shard
/// event loops run on worker threads.
pub trait App: Any + Send {
    /// Called once when the simulation starts.
    fn start(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }
    /// A complete message (written with [`Ctx::send`]) arrived on `flow`.
    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
        let _ = (ctx, flow, tag);
    }
    /// A timer set with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let _ = (ctx, token);
    }
    /// Every byte written to `flow` has been acknowledged.
    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId) {
        let _ = (ctx, flow);
    }
    /// The peer aborted `flow`.
    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        let _ = (ctx, flow);
    }
    /// A control payload sent with [`Ctx::send_control`] arrived from
    /// `src`. Control payloads travel at path propagation delay outside
    /// any flow — the lane replicated thinners sync bid digests over.
    fn on_control(&mut self, ctx: &mut Ctx, src: NodeId, payload: &[u64]) {
        let _ = (ctx, src, payload);
    }
    /// The node restarted after a crash (fault injection). Every timer,
    /// flow, and watch the node held is gone; the default keeps the old
    /// in-memory state, so apps that must re-initialize override this to
    /// reset themselves and re-arm their timers.
    fn on_restart(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }
}

/// A family of applications the simulator dispatches to without virtual
/// calls.
///
/// The engine is generic over an `AppSet`: typically an enum over a
/// harness's concrete [`App`] types (see `speakup-exp`'s `AppSlot`), so
/// every per-event callback is a jump on the enum discriminant into a
/// monomorphic — and inlinable — method, instead of a vtable hop.
/// `Box<dyn App>` also implements `AppSet` and is the default type
/// parameter, so `Simulator::new` keeps its dynamic-dispatch behavior
/// for tests and downstream users that never name a set.
///
/// The five callback methods mirror [`App`] exactly; implementations
/// forward to the wrapped application. The remaining methods support
/// downcasting ([`Simulator::app`]), the boxed compatibility path
/// ([`Simulator::add_app`]), and dispatch-share diagnostics.
pub trait AppSet: Send + 'static {
    /// Forward of [`App::start`].
    fn start(&mut self, ctx: &mut Ctx);
    /// Forward of [`App::on_message`].
    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64);
    /// Forward of [`App::on_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64);
    /// Forward of [`App::on_flow_drained`].
    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId);
    /// Forward of [`App::on_flow_aborted`].
    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId);
    /// Forward of [`App::on_control`].
    fn on_control(&mut self, ctx: &mut Ctx, src: NodeId, payload: &[u64]);
    /// Forward of [`App::on_restart`].
    fn on_restart(&mut self, ctx: &mut Ctx);
    /// The wrapped application as `Any`, for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Mutable variant of [`AppSet::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Wrap a boxed application (the [`Simulator::add_app`] path). Enum
    /// sets recover the concrete type so even boxed installs dispatch
    /// devirtualized.
    fn from_boxed(app: Box<dyn App>) -> Self;
    /// Which variant this value is, indexing [`AppSet::variant_names`]
    /// (dispatch-share diagnostics).
    fn variant_index(&self) -> usize {
        0
    }
    /// Display names for the variant indices.
    fn variant_names() -> &'static [&'static str] {
        &["boxed"]
    }
}

impl AppSet for Box<dyn App> {
    fn start(&mut self, ctx: &mut Ctx) {
        (**self).start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
        (**self).on_message(ctx, flow, tag)
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        (**self).on_timer(ctx, token)
    }
    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId) {
        (**self).on_flow_drained(ctx, flow)
    }
    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        (**self).on_flow_aborted(ctx, flow)
    }
    fn on_control(&mut self, ctx: &mut Ctx, src: NodeId, payload: &[u64]) {
        (**self).on_control(ctx, src, payload)
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        (**self).on_restart(ctx)
    }
    fn as_any(&self) -> &dyn Any {
        &**self as &dyn Any
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        &mut **self as &mut dyn Any
    }
    fn from_boxed(app: Box<dyn App>) -> Self {
        app
    }
}

/// Compose the canonical [`FlowId`] for the `nth` flow opened by `node`.
///
/// Flow ids are allocated per opening node (high 12 bits node, low 20
/// bits per-node counter) so that the id a flow gets does not depend on
/// how the simulation is sharded. The split supports 4096 nodes and
/// ~1M flows per node — at an aggressive client's ~40 payment flows per
/// second that is over seven simulated hours before exhaustion.
pub fn flow_id(node: NodeId, nth: u32) -> FlowId {
    assert!(
        node.0 < (1 << (32 - FLOW_NTH_BITS)),
        "too many nodes for flow ids ({node})"
    );
    assert!(
        nth < (1 << FLOW_NTH_BITS),
        "flow id space exhausted (node {node}, flow #{nth})"
    );
    FlowId((node.0 << FLOW_NTH_BITS) | nth)
}

// Canonical lanes: a total order over same-time events that is identical
// in every sharding. Links sort before nodes before flow timers before
// flow control records. Control records get a lane class of their own
// because they are written into the *peer's* queue: sharing a lane with
// the locally-armed RTO events would let an exact-time RTO/abort tie
// fall to insertion order, which barrier exchange changes with the
// shard count.
/// Vec index for a dense shard number.
#[inline]
fn shard_idx(shard: u32) -> usize {
    // lint: allow(cast) — u32 -> usize widening on 64-bit targets
    shard as usize
}

fn lane_link(l: LinkId) -> u64 {
    u64::from(l.0)
}
fn lane_node(n: NodeId) -> u64 {
    (1 << 32) | u64::from(n.0)
}
fn lane_flow(f: FlowId) -> u64 {
    (2 << 32) | u64::from(f.0)
}
fn lane_ctl(f: FlowId) -> u64 {
    (3 << 32) | u64::from(f.0)
}
// Application control payloads get their own lane class, keyed by the
// *source* node: replicated thinners all publish digests at the same
// epoch instant, so one receiver sees same-time deliveries from many
// senders — keying by source keeps each lane written by exactly one
// shard (per-lane order shard-invariant) while the lane id orders the
// cross-sender tie canonically.
fn lane_app_ctl(src: NodeId) -> u64 {
    (4 << 32) | u64::from(src.0)
}
// Fault events get two lane classes of their own (injected pre-run into
// the owning shard's queue). Links and nodes must not share a class: a
// link and a node with equal indices can be owned by different shards,
// and a lane written by two shards would break per-lane order invariance.
fn lane_fault_link(l: LinkId) -> u64 {
    (5 << 32) | u64::from(l.0)
}
fn lane_fault_node(n: NodeId) -> u64 {
    (6 << 32) | u64::from(n.0)
}

/// Lazily re-armed retransmission timer for one flow (see the
/// `rto_timers` field). Invariant while armed: some wheel sentinel is
/// outstanding at a time `<= deadline`, so the deadline is never missed.
#[derive(Clone, Copy)]
struct RtoTimer {
    /// The armed expiry; `None` when the timer is logically cancelled.
    deadline: Option<SimTime>,
    /// Earliest outstanding wheel sentinel, if any. Stale sentinels are
    /// harmless — popping one re-checks `deadline` — this just avoids
    /// pushing a sentinel per re-arm.
    scheduled: Option<SimTime>,
}

// RNG stream namespaces: every node and link derives its own stream from
// the run seed, independent of sharding.
const STREAM_NODE: u64 = 1 << 40;
const STREAM_LINK: u64 = 2 << 40;

enum Event {
    TxDone(LinkId),
    Arrive {
        node: NodeId,
        packet: Packet,
    },
    AppTimer {
        node: NodeId,
        token: u64,
        /// The node incarnation that armed the timer: a restart bumps the
        /// node's incarnation, so timers armed before a crash silently
        /// die instead of firing into the reborn app.
        incarnation: u32,
    },
    Rto(FlowId),
    /// Control record: `src` opened `id` toward `dst`; create the
    /// receiver half. The config rides boxed: opens are rare, and an
    /// inline [`FlowConfig`] would otherwise dominate [`Event`]'s size —
    /// which the queue copies on every place, cascade, and pop.
    FlowOpen {
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        cfg: Box<FlowConfig>,
    },
    /// Control record: the sender wrote a message ending at stream byte
    /// `end`, tagged `tag`.
    FlowBoundary {
        id: FlowId,
        end: u64,
        tag: u64,
    },
    /// Control record: the peer aborted; silence the local half and
    /// notify its application. `at_receiver` selects which half.
    FlowAbort {
        id: FlowId,
        at_receiver: bool,
    },
    /// An application control payload ([`Ctx::send_control`]) reaching
    /// `node` from `src`. Boxed: control sends are rare (epoch cadence)
    /// and an inline payload would bloat every queued [`Event`].
    AppControl {
        node: NodeId,
        src: NodeId,
        payload: Box<[u64]>,
    },
    /// Injected link fault boundary: the link goes down (`up == false`,
    /// flushing its queue and dooming any packet in flight) or recovers.
    LinkFault {
        link: LinkId,
        up: bool,
    },
    /// Injected node fault boundary: the node crashes (`up == false`,
    /// aborting its flows and killing its timers and watches) or
    /// restarts (bumping its incarnation and firing [`App::on_restart`]).
    NodeFault {
        node: NodeId,
        up: bool,
    },
}

/// A cross-shard handoff: an event for another shard's queue, exchanged
/// at the next window barrier. The destination is implicit — remotes
/// live in per-destination outbox lanes, so a whole `(src, dst)` batch
/// moves under one lock with no per-record routing.
struct Remote {
    time: SimTime,
    lane: u64,
    event: Event,
}

enum Notify {
    Message {
        node: NodeId,
        flow: FlowId,
        tag: u64,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Drained {
        node: NodeId,
        flow: FlowId,
    },
    Aborted {
        node: NodeId,
        flow: FlowId,
    },
    Control {
        node: NodeId,
        src: NodeId,
        payload: Box<[u64]>,
    },
    Restarted {
        node: NodeId,
    },
}

/// Everything one shard owns of the simulated world: its nodes' state,
/// the links leaving them, the flow halves anchored on them, an event
/// queue, and per-entity RNG streams.
pub struct World {
    shard: u32,
    now: SimTime,
    queue: EventQueue<Event>,
    topology: Arc<Topology>,
    assignment: Arc<Vec<u32>>,
    /// Links owned by this shard (those whose source node it owns),
    /// indexed by [`LinkId`].
    links: Vec<Option<Link>>,
    /// Fault-injection samplers, populated only for owned links with a
    /// nonzero drop probability: loss-free links never touch an RNG on
    /// the packet path. Each sampler consumes its link's dedicated PCG
    /// stream exactly as per-packet Bernoulli rolls would, so the drop
    /// sequence — and every golden — is unchanged.
    link_faults: Vec<Option<DropSampler>>,
    node_rngs: Vec<Option<Pcg32>>,
    /// Per-node crash nesting depth (fault injection): a node is down
    /// while its depth is positive. A depth rather than a flag so two
    /// overlapping scheduled outages compose sanely — the node is up
    /// again only when every outage has ended.
    crash_depth: Vec<u32>,
    /// Per-node restart counter: bumped when a node comes back up, so
    /// timers armed before the crash (stamped with the old incarnation)
    /// die silently instead of firing into the reborn app.
    incarnations: Vec<u32>,
    /// Flows opened per node, for canonical id allocation. Deliberately
    /// preserved across crashes: flow ids are never reused, so a reborn
    /// node's flows cannot alias a pre-crash peer half.
    flow_counts: Vec<u32>,
    /// Sender halves of flows whose source this shard owns, in dense
    /// slabs indexed by the packed [`FlowId`] (O(1) per-packet lookup).
    flows_tx: FlowSlab<Flow>,
    /// Receiver halves of flows whose destination this shard owns.
    flows_rx: FlowSlab<Flow>,
    /// Lazy per-flow retransmission timers. Re-arming on every advancing
    /// ACK is the transport's behaviour, but cancel + re-push against the
    /// wheel per ACK litters high wheel levels with dead entries that all
    /// cascade and reap later. Instead the armed deadline lives here and
    /// the wheel holds at most a couple of sentinel entries per flow: a
    /// sentinel that pops before the real deadline re-files itself at the
    /// deadline, so `on_rto` still runs at exactly the armed time.
    rto_timers: FlowSlab<RtoTimer>,
    /// Delivery-progress tracking for watched receiver flows (see
    /// [`Ctx::watch_flow`]): the watcher's node plus the flow's dirty
    /// bit, set when its in-order delivered byte count advances and
    /// cleared by the watcher's [`Ctx::drain_progress`]. Keying the
    /// entry by watcher keeps drains node-local: two watchers sharing a
    /// shard must not consume each other's progress, or co-located and
    /// split placements of the same topology would diverge.
    watch_rx: FlowSlab<(NodeId, bool)>,
    /// Watched flows that delivered new bytes since the last drain
    /// (each queued at most once — the dirty bit dedups).
    progress_rx: Vec<FlowId>,
    notifies: VecDeque<Notify>,
    actions_scratch: Vec<FlowAction>,
    /// Events bound for other shards, one lane per destination shard,
    /// exchanged wholesale at the next barrier. The lanes live for the
    /// whole run and keep their capacity, so the steady-state exchange
    /// path allocates nothing.
    outboxes: Vec<Vec<Remote>>,
    cross_shard_events: u64,
    /// Events this shard's loop has handled (load-balance diagnostics).
    events_processed: u64,
    /// Total packets dropped on this shard (overflow + fault).
    pub total_drops: u64,
}

impl World {
    fn new(
        topology: Arc<Topology>,
        assignment: Arc<Vec<u32>>,
        shard: u32,
        num_shards: usize,
        seed: u64,
    ) -> Self {
        let n = topology.node_slots();
        let mut links = Vec::with_capacity(topology.edges().len());
        let mut link_faults = Vec::with_capacity(topology.edges().len());
        for (i, e) in topology.edges().iter().enumerate() {
            if assignment[e.from.index()] == shard {
                links.push(Some(Link::new(e.cfg, e.to)));
                link_faults.push((e.cfg.drop_prob > 0.0).then(|| {
                    DropSampler::new(
                        Pcg32::new(
                            seed,
                            STREAM_LINK | u64::try_from(i).expect("invariant: link index fits u64"),
                        ),
                        e.cfg.drop_prob,
                    )
                }));
            } else {
                links.push(None);
                link_faults.push(None);
            }
        }
        let node_rngs = (0..n)
            .map(|i| {
                (assignment[i] == shard).then(|| {
                    Pcg32::new(
                        seed,
                        STREAM_NODE | u64::try_from(i).expect("invariant: node index fits u64"),
                    )
                })
            })
            .collect();
        World {
            shard,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            topology,
            assignment,
            links,
            link_faults,
            node_rngs,
            crash_depth: vec![0; n],
            incarnations: vec![0; n],
            flow_counts: vec![0; n],
            flows_tx: FlowSlab::new(n),
            flows_rx: FlowSlab::new(n),
            rto_timers: FlowSlab::new(n),
            watch_rx: FlowSlab::new(n),
            progress_rx: Vec::new(),
            notifies: VecDeque::new(),
            actions_scratch: Vec::new(),
            outboxes: (0..num_shards).map(|_| Vec::new()).collect(),
            cross_shard_events: 0,
            events_processed: 0,
            total_drops: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The sender half of a flow (must be anchored on this shard): window
    /// state, acked/written byte counts, retransmission stats.
    pub fn flow(&self, id: FlowId) -> &Flow {
        self.flows_tx
            .get(id)
            .unwrap_or_else(|| panic!("sender half of {id} not on this shard"))
    }

    /// The receiver half of a flow (must be anchored on this shard):
    /// delivered byte counts and reassembly state.
    pub fn flow_rx(&self, id: FlowId) -> &Flow {
        self.flows_rx
            .get(id)
            .unwrap_or_else(|| panic!("receiver half of {id} not on this shard"))
    }

    /// Number of flows opened by nodes on this shard.
    pub fn flow_count(&self) -> usize {
        self.flows_tx.len()
    }

    /// Statistics for a link owned by this shard.
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        self.links[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("link {id} not owned by this shard"))
            .stats
    }

    /// The topology the world was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn shard_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// The view a node's application sees of the flow: its own role's
    /// half (sender if the node is the source, receiver if it is the
    /// destination).
    fn flow_at(&self, node: NodeId, id: FlowId) -> &Flow {
        if let Some(f) = self.flows_tx.get(id) {
            if f.src == node {
                return f;
            }
        }
        if let Some(f) = self.flows_rx.get(id) {
            if f.dst == node {
                return f;
            }
        }
        panic!("flow {id} is not visible from {node}")
    }

    /// Queue `event` for `to_shard` (locally, or via its outbox lane for
    /// a barrier exchange).
    fn schedule(&mut self, time: SimTime, lane: u64, event: Event, to_shard: u32) {
        if to_shard == self.shard {
            self.queue.push_lane(time, lane, event);
        } else {
            self.cross_shard_events += 1;
            self.outboxes[shard_idx(to_shard)].push(Remote { time, lane, event });
        }
    }

    /// The latency of flow control records: the path's propagation delay.
    /// It is at least the lookahead (the path crosses any shard boundary
    /// through at least one cross-shard link) and strictly less than any
    /// data byte's arrival (which also pays transmission time), so control
    /// records always precede the data they describe, in every sharding.
    fn ctl_delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.topology
            .path_delay(from, to)
            .unwrap_or_else(|| panic!("no path {from} -> {to}"))
    }

    fn open_flow(&mut self, src: NodeId, dst: NodeId, cfg: FlowConfig) -> FlowId {
        assert!(
            self.topology.reachable(src, dst) && self.topology.reachable(dst, src),
            "flow endpoints must be mutually reachable ({src} <-> {dst})"
        );
        assert_ne!(src, dst, "flows must connect distinct nodes");
        let nth = self.flow_counts[src.index()];
        self.flow_counts[src.index()] = nth + 1;
        let id = flow_id(src, nth);
        self.flows_tx.insert(id, Flow::new(id, src, dst, cfg));
        let at = self.now + self.ctl_delay(src, dst);
        self.schedule(
            at,
            lane_ctl(id),
            Event::FlowOpen {
                id,
                src,
                dst,
                cfg: Box::new(cfg),
            },
            self.shard_of(dst),
        );
        id
    }

    fn route_packet(&mut self, at: NodeId, packet: Packet) {
        let lid = self
            .topology
            .next_hop(at, packet.dst)
            .unwrap_or_else(|| panic!("no route {at} -> {}", packet.dst));
        // A downed link never consults its loss sampler: the batched
        // Bernoulli stream must consume exactly one roll per *offered*
        // packet regardless of the fault schedule, so loss-free goldens
        // stay byte-identical when flaps are layered on.
        let up = self.links[lid.index()]
            .as_ref()
            .expect("routing over a link this shard does not own")
            .is_up();
        // Loss-free links (the overwhelmingly common case) skip loss
        // sampling entirely; lossy links consult their batched sampler.
        let dropped = if up {
            match self.link_faults[lid.index()].as_mut() {
                Some(sampler) => sampler.offer(),
                None => false,
            }
        } else {
            false
        };
        let link = self.links[lid.index()]
            .as_mut()
            .expect("routing over a link this shard does not own");
        // The roll is pre-decided: 0.0 forces the drop branch, 1.0 can
        // never drop (drop_prob < 1 is enforced at construction).
        match link.enqueue(packet, if dropped { 0.0 } else { 1.0 }) {
            Enqueue::StartTx(tx) => {
                self.queue
                    .push_lane(self.now + tx, lane_link(lid), Event::TxDone(lid));
            }
            Enqueue::Queued => {}
            Enqueue::Dropped => {
                self.total_drops += 1;
            }
        }
    }

    /// The flow fields shared by both halves, read from whichever half
    /// this shard holds.
    fn flow_fields(&self, fid: FlowId) -> (NodeId, NodeId, u32, u32) {
        let f = self
            .flows_tx
            .get(fid)
            .or_else(|| self.flows_rx.get(fid))
            .unwrap_or_else(|| panic!("no half of {fid} on this shard"));
        (f.src, f.dst, f.cfg.header_bytes, f.cfg.ack_bytes)
    }

    fn apply_flow_actions(&mut self, fid: FlowId) {
        if self.actions_scratch.is_empty() {
            return;
        }
        let actions = std::mem::take(&mut self.actions_scratch);
        // One lookup serves the whole batch: both halves agree on these
        // fields and no action moves or retires a flow mid-batch.
        let (src, dst, header, ack_bytes) = self.flow_fields(fid);
        for action in &actions {
            match *action {
                FlowAction::SendData { offset, len } => {
                    let p = Packet {
                        flow: fid,
                        src,
                        dst,
                        size: len + header,
                        kind: PacketKind::Data { offset, len },
                    };
                    self.route_packet(src, p);
                }
                FlowAction::SendAck { cum } => {
                    let p = Packet {
                        flow: fid,
                        src: dst,
                        dst: src,
                        size: ack_bytes,
                        kind: PacketKind::Ack { cum },
                    };
                    self.route_packet(dst, p);
                }
                FlowAction::ArmRto(after) => {
                    let deadline = self.now + after;
                    let push = match self.rto_timers.get_mut(fid) {
                        Some(t) => {
                            t.deadline = Some(deadline);
                            // A sentinel at or before the deadline will
                            // re-file itself when it pops; only a later
                            // (or missing) one needs replacing.
                            if t.scheduled.is_some_and(|s| s <= deadline) {
                                false
                            } else {
                                t.scheduled = Some(deadline);
                                true
                            }
                        }
                        None => {
                            self.rto_timers.insert(
                                fid,
                                RtoTimer {
                                    deadline: Some(deadline),
                                    scheduled: Some(deadline),
                                },
                            );
                            true
                        }
                    };
                    if push {
                        self.queue
                            .push_lane(deadline, lane_flow(fid), Event::Rto(fid));
                    }
                }
                FlowAction::CancelRto => {
                    if let Some(t) = self.rto_timers.get_mut(fid) {
                        t.deadline = None;
                    }
                }
                FlowAction::Deliver { tag } => {
                    self.notifies.push_back(Notify::Message {
                        node: dst,
                        flow: fid,
                        tag,
                    });
                }
                FlowAction::Drained => {
                    self.notifies.push_back(Notify::Drained {
                        node: src,
                        flow: fid,
                    });
                }
            }
        }
        // Give the (now empty) buffer back for reuse.
        self.actions_scratch = actions;
        self.actions_scratch.clear();
    }

    fn abort_flow_from(&mut self, node: NodeId, id: FlowId) {
        if let Some(f) = self.flows_tx.get_mut(id) {
            if f.src == node {
                if f.is_aborted() {
                    return;
                }
                let dst = f.dst;
                let mut actions = std::mem::take(&mut self.actions_scratch);
                f.abort(&mut actions);
                self.actions_scratch = actions;
                self.apply_flow_actions(id);
                let at = self.now + self.ctl_delay(node, dst);
                self.schedule(
                    at,
                    lane_ctl(id),
                    Event::FlowAbort {
                        id,
                        at_receiver: true,
                    },
                    self.shard_of(dst),
                );
                return;
            }
        }
        if let Some(f) = self.flows_rx.get_mut(id) {
            if f.dst == node {
                if f.is_aborted() {
                    return;
                }
                let src = f.src;
                let mut actions = std::mem::take(&mut self.actions_scratch);
                f.abort(&mut actions);
                self.actions_scratch = actions;
                self.apply_flow_actions(id);
                let at = self.now + self.ctl_delay(node, src);
                self.schedule(
                    at,
                    lane_ctl(id),
                    Event::FlowAbort {
                        id,
                        at_receiver: false,
                    },
                    self.shard_of(src),
                );
                return;
            }
        }
        panic!("abort from a non-endpoint");
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::TxDone(lid) => {
                let link = self.links[lid.index()].as_mut().expect("owned link");
                let delay = link.cfg.delay;
                let dst = link.dst;
                let (packet, next) = link.tx_done();
                if let Some(tx) = next {
                    self.queue
                        .push_lane(self.now + tx, lane_link(lid), Event::TxDone(lid));
                }
                // A flap mid-transmission dooms the packet on the wire:
                // it finishes serializing (the link stays busy) but never
                // arrives. The queue behind it was flushed at flap time,
                // though the link may have re-filled if it already came
                // back up — hence the unconditional next-TxDone above.
                if self.links[lid.index()]
                    .as_mut()
                    .expect("owned link")
                    .take_doomed()
                {
                    self.total_drops += 1;
                } else {
                    self.schedule(
                        self.now + delay,
                        lane_link(lid),
                        Event::Arrive { node: dst, packet },
                        self.shard_of(dst),
                    );
                }
            }
            Event::Arrive { node, packet } => {
                if self.crash_depth[node.index()] > 0 {
                    // A crashed node neither terminates nor forwards.
                    self.total_drops += 1;
                } else if node == packet.dst {
                    self.receive(packet);
                } else {
                    self.route_packet(node, packet);
                }
            }
            Event::AppTimer {
                node,
                token,
                incarnation,
            } => {
                // Timers die with their incarnation: armed pre-crash →
                // stale stamp; armed pre-crash but popping mid-outage →
                // crash depth. Either way, silence.
                if incarnation == self.incarnations[node.index()]
                    && self.crash_depth[node.index()] == 0
                {
                    self.notifies.push_back(Notify::Timer { node, token });
                }
            }
            Event::Rto(fid) => {
                // Sentinel pop: fire only if it reached the armed
                // deadline; re-file it there otherwise (lazy re-arm).
                let Some(t) = self.rto_timers.get_mut(fid) else {
                    return;
                };
                t.scheduled = None;
                match t.deadline {
                    Some(d) if d <= self.now => {
                        t.deadline = None;
                        let now = self.now;
                        let mut actions = std::mem::take(&mut self.actions_scratch);
                        self.flows_tx
                            .get_mut(fid)
                            .expect("RTO for a foreign flow")
                            .on_rto(now, &mut actions);
                        self.actions_scratch = actions;
                        self.apply_flow_actions(fid);
                    }
                    Some(d) => {
                        t.scheduled = Some(d);
                        self.queue.push_lane(d, lane_flow(fid), Event::Rto(fid));
                    }
                    None => {}
                }
            }
            Event::FlowOpen { id, src, dst, cfg } => {
                self.flows_rx.insert(id, Flow::new(id, src, dst, *cfg));
            }
            Event::FlowBoundary { id, end, tag } => {
                self.flows_rx
                    .get_mut(id)
                    .expect("boundary for an unopened flow")
                    .note_boundary(end, tag);
            }
            Event::FlowAbort { id, at_receiver } => {
                let f = if at_receiver {
                    self.flows_rx.get_mut(id)
                } else {
                    self.flows_tx.get_mut(id)
                }
                .expect("abort for a foreign flow");
                if f.is_aborted() {
                    // Both ends aborted concurrently; nothing to report.
                    return;
                }
                let node = if at_receiver { f.dst } else { f.src };
                let mut actions = std::mem::take(&mut self.actions_scratch);
                f.abort(&mut actions);
                self.actions_scratch = actions;
                self.apply_flow_actions(id);
                self.notifies.push_back(Notify::Aborted { node, flow: id });
            }
            Event::AppControl { node, src, payload } => {
                if self.crash_depth[node.index()] == 0 {
                    self.notifies
                        .push_back(Notify::Control { node, src, payload });
                }
            }
            Event::LinkFault { link, up } => {
                let l = self.links[link.index()]
                    .as_mut()
                    .expect("fault for a link this shard does not own");
                if up {
                    l.bring_up();
                } else {
                    self.total_drops += l.take_down();
                }
            }
            Event::NodeFault { node, up } => {
                let i = node.index();
                if up {
                    assert!(self.crash_depth[i] > 0, "restart of a node that is up");
                    self.crash_depth[i] -= 1;
                    if self.crash_depth[i] == 0 {
                        self.incarnations[i] += 1;
                        self.notifies.push_back(Notify::Restarted { node });
                    }
                } else {
                    self.crash_depth[i] += 1;
                    if self.crash_depth[i] == 1 {
                        self.crash_node(node);
                    }
                }
            }
        }
    }

    /// Crash-time sweep: abort every flow anchored on `node` (peers learn
    /// via the usual delayed abort records) and purge its flow watches so
    /// nothing credits progress to a dead watcher.
    fn crash_node(&mut self, node: NodeId) {
        // Sender halves live in the crashing node's own slab lane;
        // receiver halves require a scan (any node may have opened
        // toward us). Collect first — aborting mutates the slabs' flows.
        // The two sets cannot overlap: tx ids were opened by `node`
        // (its id in the high bits), rx ids by some peer.
        let mut dead: Vec<FlowId> = self
            .flows_tx
            .node_iter(node)
            .filter_map(|(id, f)| (!f.is_aborted()).then_some(id))
            .collect();
        for (id, f) in self.flows_rx.iter() {
            if f.dst == node && !f.is_aborted() {
                dead.push(id);
            }
        }
        for id in dead {
            self.abort_flow_from(node, id);
        }
        // Watches held by the crashed node die with it; drop their queued
        // progress entries too, so a reborn watcher starts clean.
        let stale: Vec<FlowId> = self
            .watch_rx
            .iter()
            .filter_map(|(id, (watcher, _))| (*watcher == node).then_some(id))
            .collect();
        for id in stale {
            self.watch_rx.take(id);
        }
        let watch_rx = &self.watch_rx;
        self.progress_rx.retain(|&fid| watch_rx.get(fid).is_some());
    }

    fn receive(&mut self, packet: Packet) {
        let fid = packet.flow;
        let now = self.now;
        let mut actions = std::mem::take(&mut self.actions_scratch);
        match packet.kind {
            PacketKind::Data { offset, len } => {
                let f = self
                    .flows_rx
                    .get_mut(fid)
                    .expect("data for an unopened flow");
                let before = f.delivered_bytes();
                f.on_data(now, offset, len, &mut actions);
                if f.delivered_bytes() > before {
                    if let Some((_, dirty)) = self.watch_rx.get_mut(fid) {
                        if !*dirty {
                            *dirty = true;
                            self.progress_rx.push(fid);
                        }
                    }
                }
            }
            PacketKind::Ack { cum } => {
                self.flows_tx
                    .get_mut(fid)
                    .expect("ack for a foreign flow")
                    .on_ack(now, cum, &mut actions);
            }
        }
        self.actions_scratch = actions;
        self.apply_flow_actions(fid);
    }
}

/// The world as seen by one application during a callback.
pub struct Ctx<'a> {
    world: &'a mut World,
    node: NodeId,
}

impl<'a> Ctx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The node this application runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's deterministic RNG stream (derived from `(seed, node)`,
    /// so it is independent of sharding and of other nodes' draws).
    pub fn rng(&mut self) -> &mut Pcg32 {
        self.world.node_rngs[self.node.index()]
            .as_mut()
            .expect("rng of a foreign node")
    }

    /// Open a flow from this node to `dst` with the given transport config.
    pub fn open_flow(&mut self, dst: NodeId, cfg: FlowConfig) -> FlowId {
        self.world.open_flow(self.node, dst, cfg)
    }

    /// Open a flow with default transport parameters.
    pub fn open_default_flow(&mut self, dst: NodeId) -> FlowId {
        self.open_flow(dst, FlowConfig::default())
    }

    /// Write a message of `bytes` bytes tagged `tag` onto `flow`. Must be
    /// called from the flow's source node.
    pub fn send(&mut self, flow: FlowId, bytes: u64, tag: u64) {
        let now = self.world.now;
        let mut actions = std::mem::take(&mut self.world.actions_scratch);
        let f = self
            .world
            .flows_tx
            .get_mut(flow)
            .unwrap_or_else(|| panic!("send on a flow {flow} not sent from this shard"));
        assert_eq!(f.src, self.node, "send from the wrong endpoint");
        let dst = f.dst;
        let before = f.written_bytes();
        f.write(now, bytes, tag, &mut actions);
        let end = f.written_bytes();
        self.world.actions_scratch = actions;
        if end > before {
            // Replicate the message boundary to the receiver half, one
            // propagation delay ahead of the data.
            let at = now + self.world.ctl_delay(self.node, dst);
            let to = self.world.shard_of(dst);
            self.world.schedule(
                at,
                lane_ctl(flow),
                Event::FlowBoundary { id: flow, end, tag },
                to,
            );
        }
        self.world.apply_flow_actions(flow);
    }

    /// Abort `flow` from either endpoint. The peer gets an
    /// [`App::on_flow_aborted`] callback one propagation delay later;
    /// in-flight packets are ignored.
    pub fn abort_flow(&mut self, flow: FlowId) {
        self.world.abort_flow_from(self.node, flow);
    }

    /// Arm a timer that fires [`App::on_timer`] with `token` after `after`.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle {
        let h = self.world.queue.push_lane_handle(
            self.world.now + after,
            lane_node(self.node),
            Event::AppTimer {
                node: self.node,
                token,
                incarnation: self.world.incarnations[self.node.index()],
            },
        );
        TimerHandle(h)
    }

    /// Cancel a pending timer. No-op if it already fired.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.world.queue.cancel(handle.0);
    }

    /// Read access to this node's view of a flow: the sender half when
    /// this node is the source, the receiver half when it is the
    /// destination.
    pub fn flow(&self, id: FlowId) -> &Flow {
        self.world.flow_at(self.node, id)
    }

    /// Watch the receiver half of `id` (which must terminate at this
    /// node) for delivery progress: whenever its in-order delivered
    /// byte count advances, the flow is queued once for the next
    /// [`Ctx::drain_progress`]. This lets an app that terminates many
    /// inbound channels credit exactly the flows that moved instead of
    /// polling every open channel — the poll made the thinner's
    /// admission path O(population) at crowd scale. Watches are
    /// node-keyed: each watcher's drain sees exactly its own flows, so
    /// two watchers (e.g. two thinner replicas) behave identically
    /// whether they share a shard or not.
    pub fn watch_flow(&mut self, id: FlowId) {
        debug_assert!(
            self.world
                .flows_rx
                .get(id)
                .is_none_or(|f| f.dst == self.node),
            "watching a flow that terminates elsewhere"
        );
        self.world.watch_rx.insert(id, (self.node, false));
    }

    /// Stop watching `id`. A still-queued dirty entry is skipped at
    /// drain time; no-op if the flow was never watched.
    pub fn unwatch_flow(&mut self, id: FlowId) {
        self.world.watch_rx.take(id);
    }

    /// Move every flow watched *by this node* that delivered new bytes
    /// since the last drain into `out`, clearing their dirty marks.
    /// Order follows the first post-drain delivery of each flow.
    /// Entries watched by a co-located peer stay queued (in order) for
    /// that peer's own drain; entries no longer watched by anyone are
    /// discarded.
    pub fn drain_progress(&mut self, out: &mut Vec<FlowId>) {
        let node = self.node;
        let World {
            progress_rx,
            watch_rx,
            ..
        } = &mut *self.world;
        progress_rx.retain(|&fid| match watch_rx.get_mut(fid) {
            Some((watcher, dirty)) if *watcher == node => {
                if *dirty {
                    *dirty = false;
                    out.push(fid);
                }
                false
            }
            Some(_) => true,
            None => false,
        });
    }

    /// Propagation delay of the route to `dst` (for informed apps/tests).
    pub fn path_delay(&self, dst: NodeId) -> Option<SimDuration> {
        self.world.topology.path_delay(self.node, dst)
    }

    /// Send an out-of-band control payload to the application on `dst`,
    /// delivered via [`App::on_control`] one routed path propagation
    /// delay from now. Control payloads ride the same delayed-record
    /// machinery as flow control (at least the lookahead when the
    /// route crosses shards, identical delay within one shard), so they
    /// preserve byte-identical shard-count invariance — this is the
    /// lane replicated thinners exchange bid digests over. Panics if
    /// `dst` is unreachable or is this node.
    pub fn send_control(&mut self, dst: NodeId, payload: Box<[u64]>) {
        assert_ne!(dst, self.node, "control to self");
        let at = self.world.now + self.world.ctl_delay(self.node, dst);
        let to = self.world.shard_of(dst);
        let src = self.node;
        self.world.schedule(
            at,
            lane_app_ctl(src),
            Event::AppControl {
                node: dst,
                src,
                payload,
            },
            to,
        );
    }
}

/// One shard: its slice of the world plus the applications on its nodes.
struct Shard<S: AppSet> {
    world: World,
    apps: Vec<Option<S>>,
    started: bool,
    /// Callbacks delivered per app variant (dispatch-share diagnostics;
    /// indices parallel [`AppSet::variant_names`]).
    dispatch_counts: Vec<u64>,
}

impl<S: AppSet> Shard<S> {
    fn with_app<R>(&mut self, node: NodeId, f: impl FnOnce(&mut S, &mut Ctx) -> R) -> R {
        // Borrowing the slot in place is safe against reentrancy because
        // `Ctx` can only reach the world, never another app slot — and it
        // avoids moving the (large, inline) app value out and back per
        // callback.
        let app = self.apps[node.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("no app on {node}"));
        self.dispatch_counts[app.variant_index()] += 1;
        let mut ctx = Ctx {
            world: &mut self.world,
            node,
        };
        f(app, &mut ctx)
    }

    fn dispatch_notifies(&mut self) {
        while let Some(n) = self.world.notifies.pop_front() {
            // Callbacks never reach a crashed app: the event arms guard
            // their own enqueues, but a crash sweep can queue callbacks
            // (e.g. abort echoes) addressed to the node that just died.
            let target = match n {
                Notify::Message { node, .. }
                | Notify::Timer { node, .. }
                | Notify::Drained { node, .. }
                | Notify::Aborted { node, .. }
                | Notify::Control { node, .. }
                | Notify::Restarted { node } => node,
            };
            if self.world.crash_depth[target.index()] > 0 {
                continue;
            }
            match n {
                Notify::Message { node, flow, tag } => {
                    self.with_app(node, |a, ctx| a.on_message(ctx, flow, tag));
                }
                Notify::Timer { node, token } => {
                    self.with_app(node, |a, ctx| a.on_timer(ctx, token));
                }
                Notify::Drained { node, flow } => {
                    self.with_app(node, |a, ctx| a.on_flow_drained(ctx, flow));
                }
                Notify::Aborted { node, flow } => {
                    self.with_app(node, |a, ctx| a.on_flow_aborted(ctx, flow));
                }
                Notify::Control { node, src, payload } => {
                    self.with_app(node, |a, ctx| a.on_control(ctx, src, &payload));
                }
                Notify::Restarted { node } => {
                    // Nodes without an app (pure routers) restart silently.
                    if self.apps[node.index()].is_some() {
                        self.with_app(node, |a, ctx| a.on_restart(ctx));
                    }
                }
            }
        }
    }

    fn start_apps(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.apps.len() {
            if self.apps[i].is_some() {
                self.with_app(NodeId::from_index(i), |a, ctx| a.start(ctx));
                self.dispatch_notifies();
            }
        }
    }

    /// Process local events with `time < window_end` and `time <= until`.
    fn process_window(&mut self, window_end: SimTime, until: SimTime) {
        // `t <= until` is `t < until + 1ns`; the add saturates, so
        // `until = MAX` degenerates to the window bound alone (an event
        // at exactly `u64::MAX` ns is unreachable either way).
        let limit = window_end.min(until + SimDuration::from_nanos(1));
        while let Some((t, ev)) = self.world.queue.pop_before(limit) {
            debug_assert!(t >= self.world.now, "time went backwards");
            self.world.now = t;
            self.world.events_processed += 1;
            self.world.handle_event(ev);
            self.dispatch_notifies();
        }
    }
}

/// A sense-reversing barrier with a bounded spin before parking on a
/// condvar. Window barriers fire every lookahead interval (often
/// sub-millisecond of simulated time): when each shard thread has a core
/// to itself, arrivals cluster within microseconds and the spin fast
/// path avoids any syscall; when threads outnumber cores, spinning only
/// steals time from the threads the barrier is waiting on, so the spin
/// budget drops to zero and waiters park immediately.
struct SpinBarrier {
    n: usize,
    spin_budget: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: std::sync::atomic::AtomicBool,
    lock: Mutex<()>,
    cv: std::sync::Condvar,
    /// How long a parked waiter tolerates peer silence before reporting
    /// [`BarrierWait::TimedOut`]. Wall-clock, not sim-time: the hang
    /// mode this guards against (a peer shard that stopped advancing)
    /// never reaches another simulated instant.
    watchdog: std::time::Duration,
}

/// Outcome of one [`SpinBarrier::wait`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BarrierWait {
    /// All peers arrived; proceed with the window protocol.
    Released,
    /// A peer panicked and poisoned the barrier; bail out quietly.
    Poisoned,
    /// No release within the watchdog deadline: some peer shard has
    /// stopped advancing. The caller dumps diagnostics and aborts.
    TimedOut,
}

/// Shard threads currently live across *all* simulators in the process,
/// so pooled runs (`jobs × shards` threads) disable spinning when the
/// pool as a whole oversubscribes the host, not just one simulator.
static LIVE_SHARD_THREADS: AtomicUsize = AtomicUsize::new(0);

impl SpinBarrier {
    /// `n` waiters, with `live_threads` shard threads running
    /// process-wide (including these `n`), and a `watchdog` deadline on
    /// every parked wait.
    fn new(n: usize, live_threads: usize, watchdog: std::time::Duration) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        SpinBarrier {
            n,
            spin_budget: if live_threads <= cores { 1 << 12 } else { 0 },
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: std::sync::Condvar::new(),
            watchdog,
        }
    }

    /// Wait for all `n` threads, with a deadline: a waiter parked past
    /// the watchdog reports [`BarrierWait::TimedOut`] instead of
    /// sleeping forever behind a wedged peer.
    // The clock here observes the *host*, never the simulation: timer
    // expiry only happens on the already-lost hang path.
    #[allow(clippy::disallowed_methods)] // see clippy.toml: watchdog deadline needs Instant
    fn wait(&self) -> BarrierWait {
        let verdict = |poisoned: bool| {
            if poisoned {
                BarrierWait::Poisoned
            } else {
                BarrierWait::Released
            }
        };
        if self.poisoned.load(Ordering::Acquire) {
            return BarrierWait::Poisoned;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.count.store(0, Ordering::Relaxed);
            // Bump under the lock so a parked waiter cannot miss the
            // wakeup between its generation check and its wait.
            let guard = self.lock.lock().expect("barrier lock poisoned");
            self.generation.fetch_add(1, Ordering::AcqRel);
            drop(guard);
            self.cv.notify_all();
        } else {
            for _ in 0..self.spin_budget {
                if self.generation.load(Ordering::Acquire) != gen {
                    return verdict(self.poisoned.load(Ordering::Acquire));
                }
                std::hint::spin_loop();
            }
            // lint: allow(wall-clock) — watchdog deadline over host time; fires only on the hang path
            let deadline = std::time::Instant::now() + self.watchdog;
            let mut guard = self.lock.lock().expect("barrier lock poisoned");
            while self.generation.load(Ordering::Acquire) == gen {
                // lint: allow(wall-clock) — remaining watchdog budget, host time (see above)
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return BarrierWait::TimedOut;
                };
                guard = self
                    .cv
                    .wait_timeout(guard, left)
                    .expect("barrier wait poisoned")
                    .0;
            }
        }
        verdict(self.poisoned.load(Ordering::Acquire))
    }

    /// Mark the barrier dead after a panic and release every waiter, so
    /// surviving shard threads exit instead of parking forever while the
    /// panic propagates through `std::thread::scope`.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let guard = self.lock.lock().expect("barrier lock poisoned");
        self.generation.fetch_add(1, Ordering::AcqRel);
        drop(guard);
        self.cv.notify_all();
    }
}

/// Sentinel for "these two shards can never hand each other an event".
const NO_INTERACTION: u64 = u64::MAX;

/// The simulator: one or more shard event loops over a shared topology.
///
/// The type parameter selects the application dispatch strategy: the
/// default `Box<dyn App>` dispatches virtually (the [`Simulator::new`]
/// path), while an enum [`AppSet`] (installed via
/// [`Simulator::new_sharded_slots`] + [`Simulator::add_slot`])
/// dispatches monomorphically.
pub struct Simulator<S: AppSet = Box<dyn App>> {
    shards: Vec<Shard<S>>,
    assignment: Arc<Vec<u32>>,
    /// Pairwise conservative lookahead, row-major `K × K` nanoseconds:
    /// `lookahead[j * K + i]` bounds how soon shard `j` can hand shard
    /// `i` an event ([`NO_INTERACTION`] when it never can). Built from
    /// direct link delays and routed path delays (flow control records
    /// travel at path propagation delay straight into the peer queue).
    lookahead: Vec<u64>,
    /// Per-shard cross-shard delivery buffers, recycled across windows
    /// *and* across `run_until` calls: rebuilding them per call used to
    /// re-pay their allocations every time a driver stepped the clock.
    inboxes: Vec<Mutex<Vec<Remote>>>,
    /// Per-shard next-event times published at the window barrier.
    next_times: Vec<AtomicU64>,
    /// Per-shard progress counters for the barrier watchdog's dump.
    diag: Vec<ShardDiag>,
    /// Deadline on every parked barrier wait: a peer silent this long is
    /// declared wedged and the run aborts with a per-shard dump instead
    /// of hanging forever.
    barrier_watchdog: std::time::Duration,
}

/// What each shard last published about its own progress, readable by
/// whichever shard's watchdog fires (hence atomics).
#[derive(Default)]
struct ShardDiag {
    /// End of the last lookahead window the shard processed (ns).
    window_end: AtomicU64,
    /// Events the shard has processed so far.
    events: AtomicU64,
}

impl Simulator {
    /// Create a single-shard simulator over `topology`, seeded for
    /// determinism.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let n = topology.node_slots();
        Self::new_sharded(topology, seed, vec![0; n])
    }

    /// Create a simulator whose node population is split across shard
    /// event loops: `assignment[node]` names the shard owning each node
    /// (shard ids must be dense, `0..K`). Results are byte-identical for
    /// every assignment; see the module docs for the mechanism. Panics if
    /// any cross-shard link has zero propagation delay (no lookahead).
    pub fn new_sharded(topology: Topology, seed: u64, assignment: Vec<u32>) -> Self {
        Self::new_sharded_slots(topology, seed, assignment)
    }
}

impl<S: AppSet> Simulator<S> {
    /// [`Simulator::new_sharded`] for an explicit [`AppSet`]: the entry
    /// point harnesses use to opt into devirtualized dispatch.
    pub fn new_sharded_slots(topology: Topology, seed: u64, assignment: Vec<u32>) -> Self {
        assert_eq!(
            assignment.len(),
            topology.node_slots(),
            "one shard assignment per node"
        );
        let num_shards = shard_idx(assignment.iter().copied().max().unwrap_or(0)) + 1;
        let lookahead = Self::pairwise_lookahead(&topology, &assignment, num_shards);
        let topology = Arc::new(topology);
        let assignment = Arc::new(assignment);
        let n = topology.node_slots();
        let shards = (0..u32::try_from(num_shards).expect("invariant: shard count fits u32"))
            .map(|s| {
                let mut apps = Vec::with_capacity(n);
                apps.resize_with(n, || None);
                Shard {
                    world: World::new(
                        Arc::clone(&topology),
                        Arc::clone(&assignment),
                        s,
                        num_shards,
                        seed,
                    ),
                    apps,
                    started: false,
                    dispatch_counts: vec![0; S::variant_names().len()],
                }
            })
            .collect();
        Simulator {
            shards,
            assignment,
            lookahead,
            inboxes: (0..num_shards).map(|_| Mutex::new(Vec::new())).collect(),
            next_times: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            diag: (0..num_shards).map(|_| ShardDiag::default()).collect(),
            barrier_watchdog: std::time::Duration::from_secs(60),
        }
    }

    /// Override the barrier watchdog deadline (default 60 s of host
    /// time). Tests drop it to milliseconds; huge oversubscribed batch
    /// runs may need to raise it.
    pub fn set_barrier_watchdog(&mut self, deadline: std::time::Duration) {
        self.barrier_watchdog = deadline;
    }

    /// Inject a fault schedule: every entry becomes a down/up event pair
    /// on the owning shard's queue, on a dedicated fault lane, so faults
    /// land in the canonical `(time, lane, seq)` order and `--shards K`
    /// byte-identity holds under faults. Call before running past any
    /// entry's onset (injection into the past is a schedule bug).
    pub fn inject_faults(&mut self, schedule: &FaultSchedule) {
        let topology = Arc::clone(&self.shards[0].world.topology);
        for e in schedule.entries() {
            let (owner, lane) = match e.kind {
                FaultKind::LinkDown(link) => {
                    let from = topology.edges()[link.index()].from;
                    (self.assignment[from.index()], lane_fault_link(link))
                }
                FaultKind::NodeCrash(node) => {
                    (self.assignment[node.index()], lane_fault_node(node))
                }
            };
            let world = &mut self.shards[shard_idx(owner)].world;
            assert!(
                e.at >= world.now,
                "fault at {:?} injected after the clock reached {:?}",
                e.at,
                world.now
            );
            let (down, up) = match e.kind {
                FaultKind::LinkDown(link) => (
                    Event::LinkFault { link, up: false },
                    Event::LinkFault { link, up: true },
                ),
                FaultKind::NodeCrash(node) => (
                    Event::NodeFault { node, up: false },
                    Event::NodeFault { node, up: true },
                ),
            };
            world.queue.push_lane(e.at, lane, down);
            world.queue.push_lane(e.up_at(), lane, up);
        }
    }

    /// Build the pairwise lookahead matrix: for each ordered shard pair
    /// `(j, i)`, the earliest an event leaving `j` can reach `i`. Direct
    /// `j -> i` links seed the matrix with their propagation delays; a
    /// min-plus closure (Floyd–Warshall over the shard interaction
    /// graph) then adds multi-hop distances. The closure lower-bounds
    /// *every* delivery channel: a packet hops shard to shard over the
    /// seeded links, and a flow control record (scheduled straight into
    /// the endpoint's queue at routed-path propagation delay) crosses
    /// each shard boundary over some link, so its delay is at least the
    /// sum of the seeded crossings. Diagonal entries are deliberately
    /// *not* zero: `la[i][i]` is the minimum echo cycle — how soon a
    /// shard's own output can come back at it through its peers — which
    /// is what bounds how far past its own queue a shard may safely run.
    fn pairwise_lookahead(topology: &Topology, assignment: &[u32], k: usize) -> Vec<u64> {
        let mut la = vec![NO_INTERACTION; k * k];
        if k == 1 {
            return la;
        }
        for e in topology.edges() {
            let j = shard_idx(assignment[e.from.index()]);
            let i = shard_idx(assignment[e.to.index()]);
            if j != i {
                assert!(
                    e.cfg.delay > SimDuration::ZERO,
                    "cross-shard link {} -> {} has zero delay: no lookahead",
                    e.from,
                    e.to
                );
                la[j * k + i] = la[j * k + i].min(e.cfg.delay.as_nanos());
            }
        }
        for m in 0..k {
            for a in 0..k {
                for b in 0..k {
                    let via = la[a * k + m].saturating_add(la[m * k + b]);
                    if via < la[a * k + b] {
                        la[a * k + b] = via;
                    }
                }
            }
        }
        la
    }

    /// Number of shard event loops.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The tightest conservative lookahead over all shard pairs (the
    /// global window bound before the pairwise matrix; kept for
    /// diagnostics). `SimDuration` max when nothing ever crosses.
    pub fn lookahead(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.lookahead
                .iter()
                .copied()
                .min()
                .unwrap_or(NO_INTERACTION),
        )
    }

    /// The conservative lookahead from shard `from` to shard `to`:
    /// `None` when `from` can never hand `to` an event.
    pub fn lookahead_between(&self, from: u32, to: u32) -> Option<SimDuration> {
        let k = self.shards.len();
        let v = self.lookahead[shard_idx(from) * k + shard_idx(to)];
        (v != NO_INTERACTION).then_some(SimDuration::from_nanos(v))
    }

    /// Total events handed across shard boundaries so far.
    pub fn cross_shard_events(&self) -> u64 {
        self.shards.iter().map(|s| s.world.cross_shard_events).sum()
    }

    /// Events processed so far, per shard loop (who is doing the work).
    pub fn shard_event_counts(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.world.events_processed)
            .collect()
    }

    /// Total packets dropped anywhere (overflow + fault).
    pub fn total_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.world.total_drops).sum()
    }

    /// Install an application on `node`. Replaces any previous one.
    ///
    /// Compatibility path: the box is handed to [`AppSet::from_boxed`],
    /// which for enum sets recovers the concrete type (so dispatch stays
    /// devirtualized) and for the default `Box<dyn App>` set is free.
    pub fn add_app(&mut self, node: NodeId, app: Box<dyn App>) {
        self.add_slot(node, S::from_boxed(app));
    }

    /// Install an application on `node` as an [`AppSet`] value directly
    /// (no box, no recovery). Replaces any previous one.
    pub fn add_slot(&mut self, node: NodeId, app: S) {
        let shard = shard_idx(self.assignment[node.index()]);
        self.shards[shard].apps[node.index()] = Some(app);
    }

    /// Callbacks delivered per app variant, summed over shards and
    /// labeled with [`AppSet::variant_names`] (dispatch-share
    /// diagnostics; `[("boxed", n)]` for the default set).
    pub fn dispatch_counts(&self) -> Vec<(&'static str, u64)> {
        S::variant_names()
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, self.shards.iter().map(|s| s.dispatch_counts[i]).sum()))
            .collect()
    }

    /// Read access to shard 0's world — the whole world for single-shard
    /// simulations (metrics extraction, tests).
    pub fn world(&self) -> &World {
        &self.shards[0].world
    }

    /// Read access to the world shard owning `node`.
    pub fn world_of(&self, node: NodeId) -> &World {
        &self.shards[shard_idx(self.assignment[node.index()])].world
    }

    /// Downcast the application on `node` to a concrete type.
    pub fn app<T: App>(&self, node: NodeId) -> Option<&T> {
        let shard = shard_idx(self.assignment[node.index()]);
        self.shards[shard].apps[node.index()]
            .as_ref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast of the application on `node`.
    pub fn app_mut<T: App>(&mut self, node: NodeId) -> Option<&mut T> {
        let shard = shard_idx(self.assignment[node.index()]);
        self.shards[shard].apps[node.index()]
            .as_mut()
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Run the simulation until `until` (inclusive of events at `until`).
    ///
    /// With multiple shards, each shard's loop runs on its own thread;
    /// shards advance in lookahead windows and exchange cross-shard
    /// events at barriers between windows.
    pub fn run_until(&mut self, until: SimTime) {
        if self.shards.len() == 1 {
            let shard = &mut self.shards[0];
            shard.start_apps();
            debug_assert!(
                shard.world.outboxes.iter().all(Vec::is_empty),
                "single shard has no peers"
            );
            shard.process_window(SimTime::MAX, until);
            if shard.world.now < until {
                shard.world.now = until;
            }
            return;
        }

        let n = self.shards.len();
        let lookahead: &[u64] = &self.lookahead;
        let live = LIVE_SHARD_THREADS.fetch_add(n, Ordering::SeqCst) + n;
        let barrier = SpinBarrier::new(n, live, self.barrier_watchdog);
        let barrier = &barrier;
        let diag: &[ShardDiag] = &self.diag;
        // The exchange buffers live on the Simulator and are recycled
        // across calls — no per-call (or per-window) reallocation.
        let inboxes: &[Mutex<Vec<Remote>>] = &self.inboxes;
        let next_times: &[AtomicU64] = &self.next_times;

        let first_panic = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(i, shard)| {
                    scope.spawn(move || {
                        // A panic anywhere in the window loop (app
                        // callback, routing, the lookahead assert) must
                        // poison the barrier so peer shards exit instead
                        // of parking forever; the payload travels back
                        // through the join below.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            Self::run_shard_loop(
                                i, shard, until, lookahead, barrier, inboxes, next_times, diag,
                            )
                        }));
                        if let Err(panic) = run {
                            barrier.poison();
                            std::panic::resume_unwind(panic);
                        }
                    })
                })
                .collect();
            // Join explicitly and re-raise the first shard's panic with
            // its original payload (the scope alone would replace it
            // with a generic "a scoped thread panicked").
            let mut first_panic = None;
            for h in handles {
                if let Err(panic) = h.join() {
                    first_panic.get_or_insert(panic);
                }
            }
            first_panic
        });
        LIVE_SHARD_THREADS.fetch_sub(n, Ordering::SeqCst);
        if let Some(panic) = first_panic {
            std::panic::resume_unwind(panic);
        }
    }

    /// One barrier crossing, watchdog-checked: `true` to continue the
    /// window protocol, `false` to bail out quietly (poisoned peer). A
    /// watchdog expiry dumps every shard's published progress — the
    /// evidence for diagnosing *which* peer wedged and where — then
    /// panics, which poisons the barrier for the survivors.
    fn barrier_sync(
        i: usize,
        barrier: &SpinBarrier,
        lookahead: &[u64],
        next_times: &[AtomicU64],
        diag: &[ShardDiag],
    ) -> bool {
        match barrier.wait() {
            BarrierWait::Released => true,
            BarrierWait::Poisoned => false,
            BarrierWait::TimedOut => {
                let n = next_times.len();
                eprintln!("barrier watchdog: shard {i} saw no release within the deadline");
                for (j, d) in diag.iter().enumerate() {
                    let next = next_times[j].load(Ordering::SeqCst);
                    let next = if next == u64::MAX {
                        "idle".to_string()
                    } else {
                        format!("{:?}", SimTime::from_nanos(next))
                    };
                    let la = lookahead[j * n + i];
                    let la = if la == NO_INTERACTION {
                        "-".to_string()
                    } else {
                        format!("{:?}", SimDuration::from_nanos(la))
                    };
                    eprintln!(
                        "  shard {j}: next_event={next} window_end={:?} events={} lookahead[{j}->{i}]={la}",
                        SimTime::from_nanos(d.window_end.load(Ordering::SeqCst)),
                        d.events.load(Ordering::SeqCst),
                    );
                }
                panic!("barrier watchdog expired — a peer shard stopped advancing");
            }
        }
    }

    /// One shard thread's window loop (see [`Simulator::run_until`]).
    #[allow(clippy::too_many_arguments)]
    fn run_shard_loop(
        i: usize,
        shard: &mut Shard<S>,
        until: SimTime,
        lookahead: &[u64],
        barrier: &SpinBarrier,
        inboxes: &[Mutex<Vec<Remote>>],
        next_times: &[AtomicU64],
        diag: &[ShardDiag],
    ) {
        let n = inboxes.len();
        shard.start_apps();
        loop {
            // Phase 1: publish this window's cross-shard events. The
            // outbox is already partitioned per destination (one lane
            // per peer shard, filled by `World::schedule`), so each
            // non-empty batch moves under a single lock acquisition —
            // no per-record sends, no re-partitioning scratch. Send
            // order is preserved; the receiving heap canonicalizes
            // order across sources by lane.
            for (dest, slot) in inboxes.iter().enumerate() {
                if shard.world.outboxes[dest].is_empty() {
                    continue;
                }
                debug_assert_ne!(dest, i, "outbox entry addressed to self");
                let mut inbox = slot.lock().expect("inbox poisoned");
                inbox.append(&mut shard.world.outboxes[dest]);
            }
            if !Self::barrier_sync(i, barrier, lookahead, next_times, diag) {
                return;
            }

            // Phase 2: absorb incoming events, agree on the next window,
            // and process it. The assert is the conservative guarantee:
            // nothing arrives earlier than the clock a shard has already
            // committed to.
            {
                let mut inbox = inboxes[i].lock().expect("inbox poisoned");
                for r in inbox.drain(..) {
                    assert!(
                        r.time >= shard.world.now,
                        "lookahead violation: event at {:?} delivered at {:?}",
                        r.time,
                        shard.world.now
                    );
                    shard.world.queue.push_lane(r.time, r.lane, r.event);
                }
            }
            let next = shard
                .world
                .queue
                .peek_time()
                .map_or(u64::MAX, SimTime::as_nanos);
            next_times[i].store(next, Ordering::SeqCst);
            if !Self::barrier_sync(i, barrier, lookahead, next_times, diag) {
                return;
            }
            // This shard's window ends where the earliest event another
            // shard could hand it begins: the pairwise bound. The `j == i`
            // term uses the diagonal echo-cycle distance (this shard's
            // own output reflecting off a peer); pairs with no
            // interaction (and idle peers, `next == MAX`) impose no
            // bound at all, so distant or quiet shards never throttle
            // this one the way the old single global lookahead did.
            // One allocation-free pass: this runs once per window, often
            // thousands of times per simulated second.
            let mut t_min = u64::MAX;
            let mut bound = u64::MAX;
            for (j, a) in next_times.iter().enumerate() {
                let next_j = a.load(Ordering::SeqCst);
                t_min = t_min.min(next_j);
                let la = lookahead[j * n + i];
                if la != NO_INTERACTION {
                    bound = bound.min(next_j.saturating_add(la));
                }
            }
            if t_min > until.as_nanos() {
                break;
            }
            let window_end = SimTime::from_nanos(bound);
            diag[i].window_end.store(bound, Ordering::SeqCst);
            shard.process_window(window_end, until);
            diag[i]
                .events
                .store(shard.world.events_processed, Ordering::SeqCst);
            let advanced = window_end.min(until);
            if advanced > shard.world.now {
                shard.world.now = advanced;
            }
        }
        if shard.world.now < until {
            shard.world.now = until;
        }
    }

    /// Run for a span of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let until = self.shards[0].world.now + span;
        self.run_until(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::topology::TopologyBuilder;

    /// Sends one message at start; records drain time.
    struct Sender {
        dst: NodeId,
        bytes: u64,
        flow: Option<FlowId>,
        drained_at: Option<SimTime>,
    }

    impl App for Sender {
        fn start(&mut self, ctx: &mut Ctx) {
            let f = ctx.open_default_flow(self.dst);
            ctx.send(f, self.bytes, 1);
            self.flow = Some(f);
        }
        fn on_flow_drained(&mut self, ctx: &mut Ctx, _flow: FlowId) {
            self.drained_at = Some(ctx.now());
        }
    }

    /// Records message arrivals.
    #[derive(Default)]
    struct Receiver {
        got: Vec<(SimTime, FlowId, u64)>,
    }

    impl App for Receiver {
        fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
            self.got.push((ctx.now(), flow, tag));
        }
    }

    fn two_nodes(rate_bps: u64, delay_ms: u64) -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        b.duplex(
            a,
            z,
            LinkConfig::new(rate_bps, SimDuration::from_millis(delay_ms)),
        );
        (b.build(), a, z)
    }

    #[test]
    fn small_message_delivered_quickly() {
        let (t, a, z) = two_nodes(10_000_000, 5);
        let mut sim = Simulator::new(t, 1);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 500,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(2));
        let rx = sim
            .app::<Receiver>(z)
            .expect("invariant: Receiver installed on z");
        assert_eq!(rx.got.len(), 1);
        assert_eq!(rx.got[0].2, 1);
        // One-way: tx (540B at 10Mbps = 0.432ms) + 5ms prop.
        let arrival = rx.got[0].0.as_secs_f64();
        assert!(arrival > 0.005 && arrival < 0.010, "arrival {arrival}");
        let tx = sim
            .app::<Sender>(a)
            .expect("invariant: Sender installed on a");
        assert!(tx.drained_at.is_some(), "sender saw the drain");
    }

    #[test]
    fn bulk_transfer_throughput_approaches_link_rate() {
        // 2 Mbit/s, 10 ms one-way. Send 2 MB; ideal time ~8 s + slow start.
        let (t, a, z) = two_nodes(2_000_000, 10);
        let mut sim = Simulator::new(t, 2);
        let bytes = 2_000_000u64;
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(60));
        let tx = sim
            .app::<Sender>(a)
            .expect("invariant: Sender installed on a");
        let done = tx.drained_at.expect("transfer completed").as_secs_f64();
        // Payload goodput limit: 2e6*8 bits / (2e6 bps * 1460/1500 eff) ≈ 8.2 s.
        assert!(done > 8.0, "faster than the link allows: {done}");
        assert!(done < 11.0, "took too long (cc problem?): {done}");
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = |seed| {
            let (t, a, z) = two_nodes(1_000_000, 20);
            let mut sim = Simulator::new(t, seed);
            sim.add_app(
                a,
                Box::new(Sender {
                    dst: z,
                    bytes: 300_000,
                    flow: None,
                    drained_at: None,
                }),
            );
            sim.add_app(z, Box::new(Receiver::default()));
            sim.run_until(SimTime::from_secs(30));
            sim.app::<Sender>(a)
                .expect("invariant: Sender installed on a")
                .drained_at
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_fairly() {
        // Two senders behind a shared 2 Mbit/s bottleneck.
        let mut b = TopologyBuilder::new();
        let s1 = b.node();
        let s2 = b.node();
        let gw = b.node();
        let z = b.node();
        let fast = LinkConfig::new(100_000_000, SimDuration::from_millis(1));
        b.duplex(s1, gw, fast);
        b.duplex(s2, gw, fast);
        b.duplex(
            gw,
            z,
            LinkConfig::new(2_000_000, SimDuration::from_millis(10)).queue_packets(25),
        );
        let t = b.build();
        let mut sim = Simulator::new(t, 3);
        for (n, _) in [(s1, 0), (s2, 1)] {
            sim.add_app(
                n,
                Box::new(Sender {
                    dst: z,
                    bytes: 30_000_000, // never finishes in 40 s
                    flow: None,
                    drained_at: None,
                }),
            );
        }
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(40));
        let f1 = sim.world().flow(flow_id(s1, 0)).acked_bytes() as f64;
        let f2 = sim.world().flow(flow_id(s2, 0)).acked_bytes() as f64;
        let ratio = f1.min(f2) / f1.max(f2);
        assert!(ratio > 0.6, "unfair split: {f1} vs {f2}");
        // Aggregate goodput should be near 2 Mbit/s payload-adjusted.
        let total_mbps = (f1 + f2) * 8.0 / 40.0 / 1e6;
        assert!(
            total_mbps > 1.6 && total_mbps < 2.01,
            "goodput {total_mbps}"
        );
    }

    #[test]
    fn lossy_link_still_delivers_reliably() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        // 5% loss each way.
        b.duplex(
            a,
            z,
            LinkConfig::new(5_000_000, SimDuration::from_millis(5)).drop_prob(0.05),
        );
        let t = b.build();
        let mut sim = Simulator::new(t, 4);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 500_000,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(120));
        let rx = sim
            .app::<Receiver>(z)
            .expect("invariant: Receiver installed on z");
        assert_eq!(rx.got.len(), 1, "message must arrive despite loss");
        let f = sim.world().flow(flow_id(a, 0));
        assert!(
            f.stats.segments_retransmitted > 0,
            "loss caused retransmits"
        );
        assert_eq!(
            sim.world().flow_rx(flow_id(a, 0)).delivered_bytes(),
            500_000
        );
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerApp {
            fired: Vec<u64>,
            cancelled_handle: Option<TimerHandle>,
        }
        impl App for TimerApp {
            fn start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let h = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                self.cancelled_handle = Some(h);
            }
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    let h = self
                        .cancelled_handle
                        .take()
                        .expect("invariant: handle stored before timer 2 fires");
                    ctx.cancel_timer(h);
                }
            }
        }
        let (t, a, _z) = two_nodes(1_000_000, 1);
        let mut sim = Simulator::new(t, 5);
        sim.add_app(
            a,
            Box::new(TimerApp {
                fired: vec![],
                cancelled_handle: None,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.app::<TimerApp>(a)
                .expect("invariant: TimerApp installed on a")
                .fired,
            vec![1, 3]
        );
    }

    #[test]
    fn abort_notifies_peer() {
        struct Aborter {
            dst: NodeId,
        }
        impl App for Aborter {
            fn start(&mut self, ctx: &mut Ctx) {
                let f = ctx.open_default_flow(self.dst);
                ctx.send(f, 1_000_000, 1);
                ctx.set_timer(SimDuration::from_millis(50), f.0 as u64);
            }
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                ctx.abort_flow(FlowId(token as u32));
            }
        }
        #[derive(Default)]
        struct PeerWatch {
            aborted: Vec<FlowId>,
        }
        impl App for PeerWatch {
            fn on_flow_aborted(&mut self, _ctx: &mut Ctx, flow: FlowId) {
                self.aborted.push(flow);
            }
        }
        let (t, a, z) = two_nodes(1_000_000, 5);
        let mut sim = Simulator::new(t, 6);
        sim.add_app(a, Box::new(Aborter { dst: z }));
        sim.add_app(z, Box::new(PeerWatch::default()));
        sim.run_until(SimTime::from_secs(2));
        let f = flow_id(a, 0);
        assert_eq!(
            sim.app::<PeerWatch>(z)
                .expect("invariant: PeerWatch installed on z")
                .aborted,
            vec![f]
        );
        assert!(sim.world().flow(f).is_aborted());
        assert!(sim.world().flow_rx(f).is_aborted());
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let (t, _a, _z) = two_nodes(1_000_000, 1);
        let mut sim = Simulator::new(t, 7);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.world().now(), SimTime::from_secs(5));
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.world().now(), SimTime::from_secs(8));
    }

    // ------------------------------------------------------- sharding

    /// A star: `leaves` clients around a hub, each uploading to a
    /// receiver app on the hub, with per-leaf byte counts.
    fn star(leaves: usize) -> (Topology, NodeId, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.node();
        let mut nodes = Vec::new();
        for i in 0..leaves {
            let n = b.node();
            b.duplex(
                n,
                hub,
                LinkConfig::new(2_000_000, SimDuration::from_millis(2 + i as u64)),
            );
            nodes.push(n);
        }
        (b.build(), hub, nodes)
    }

    /// (message arrivals at the hub, per-leaf drain times, cross-shard
    /// event count)
    type StarOutcome = (Vec<(SimTime, FlowId, u64)>, Vec<Option<SimTime>>, u64);

    fn run_star(assignment: Option<Vec<u32>>, seed: u64) -> StarOutcome {
        let (t, hub, leaves) = star(4);
        let mut sim = match assignment {
            None => Simulator::new(t, seed),
            Some(a) => Simulator::new_sharded(t, seed, a),
        };
        for (i, &n) in leaves.iter().enumerate() {
            sim.add_app(
                n,
                Box::new(Sender {
                    dst: hub,
                    bytes: 100_000 * (i as u64 + 1),
                    flow: None,
                    drained_at: None,
                }),
            );
        }
        sim.add_app(hub, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(20));
        let got = sim
            .app::<Receiver>(hub)
            .expect("invariant: Receiver installed on hub")
            .got
            .clone();
        let drains = leaves
            .iter()
            .map(|&n| {
                sim.app::<Sender>(n)
                    .expect("invariant: Sender installed on every leaf")
                    .drained_at
            })
            .collect();
        (got, drains, sim.cross_shard_events())
    }

    #[test]
    fn sharded_run_matches_single_shard_exactly() {
        // hub + 4 leaves: single shard vs 3 shards (hub alone on 0).
        let single = run_star(None, 11);
        let sharded = run_star(Some(vec![0, 1, 1, 2, 2]), 11);
        assert_eq!(single.0, sharded.0, "message arrival timelines differ");
        assert_eq!(single.1, sharded.1, "drain times differ");
        assert_eq!(single.2, 0, "single shard crosses no boundary");
        assert!(sharded.2 > 0, "sharded run must exchange events");
    }

    #[test]
    fn shard_count_does_not_change_results() {
        // Every split of the same population agrees.
        let a = run_star(Some(vec![0, 1, 1, 1, 1]), 23);
        let b = run_star(Some(vec![0, 1, 2, 3, 4]), 23);
        let c = run_star(Some(vec![0, 0, 1, 0, 1]), 23);
        assert_eq!(a.0, b.0);
        assert_eq!(a.0, c.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.1, c.1);
    }

    #[test]
    fn lookahead_is_min_cross_shard_delay_and_never_early() {
        let (t, hub, leaves) = star(4);
        // Leaves on shard 1: cross-shard delays are 2..5 ms, lookahead 2 ms.
        let mut sim = Simulator::new_sharded(t, 9, vec![0, 1, 1, 1, 1]);
        assert_eq!(sim.lookahead(), SimDuration::from_millis(2));
        for &n in &leaves {
            sim.add_app(
                n,
                Box::new(Sender {
                    dst: hub,
                    bytes: 50_000,
                    flow: None,
                    drained_at: None,
                }),
            );
        }
        sim.add_app(hub, Box::new(Receiver::default()));
        // The engine asserts on every barrier exchange that no event is
        // delivered before the receiving shard's clock; a violation
        // panics the run.
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.cross_shard_events() > 0);
        let rx = sim
            .app::<Receiver>(hub)
            .expect("invariant: Receiver installed on hub");
        assert_eq!(rx.got.len(), 4, "all uploads completed");
    }

    #[test]
    #[should_panic(expected = "app exploded")]
    fn sharded_panic_propagates_instead_of_hanging() {
        struct Bomb;
        impl App for Bomb {
            fn start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {
                panic!("app exploded");
            }
        }
        let (t, hub, leaves) = star(4);
        let mut sim = Simulator::new_sharded(t, 5, vec![0, 1, 2, 1, 2]);
        sim.add_app(leaves[0], Box::new(Bomb));
        for &n in &leaves[1..] {
            sim.add_app(
                n,
                Box::new(Sender {
                    dst: hub,
                    bytes: 100_000,
                    flow: None,
                    drained_at: None,
                }),
            );
        }
        sim.add_app(hub, Box::new(Receiver::default()));
        // Without barrier poisoning the surviving shards would park
        // forever and this test would hang rather than panic.
        sim.run_until(SimTime::from_secs(5));
    }

    #[test]
    fn pairwise_lookahead_closes_over_shard_hops_and_echo_cycles() {
        let (t, _hub, _leaves) = star(4);
        // Shard 0 = hub; shard 1 = leaves with 2/3 ms links; shard 2 =
        // leaves with 4/5 ms links.
        let sim = Simulator::new_sharded(t, 1, vec![0, 1, 1, 2, 2]);
        let ms = SimDuration::from_millis;
        assert_eq!(sim.lookahead_between(1, 0), Some(ms(2)));
        assert_eq!(sim.lookahead_between(0, 1), Some(ms(2)));
        assert_eq!(sim.lookahead_between(2, 0), Some(ms(4)));
        // No direct links between the leaf shards: the closure routes
        // their distance through the hub shard.
        assert_eq!(sim.lookahead_between(1, 2), Some(ms(6)));
        assert_eq!(sim.lookahead_between(2, 1), Some(ms(6)));
        // Diagonals are echo cycles (out through a peer and back), not
        // zero: they bound how far past its own queue a shard may run.
        assert_eq!(sim.lookahead_between(0, 0), Some(ms(4)));
        assert_eq!(sim.lookahead_between(1, 1), Some(ms(4)));
        assert_eq!(sim.lookahead_between(2, 2), Some(ms(8)));
        // The legacy scalar accessor still reports the tightest bound.
        assert_eq!(sim.lookahead(), ms(2));
        // Single-shard simulations have no cross-shard constraint.
        let (t, _, _) = star(2);
        let single = Simulator::new(t, 1);
        assert_eq!(single.lookahead_between(0, 0), None);
    }

    // ------------------------------------------- app control payloads

    /// Broadcasts a control payload to its peers at fixed times.
    struct CtlSender {
        peers: Vec<NodeId>,
        payload: Vec<u64>,
    }
    impl App for CtlSender {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            for &p in &self.peers {
                ctx.send_control(p, self.payload.clone().into_boxed_slice());
            }
        }
    }
    /// Records control arrivals `(time, src, payload)`.
    #[derive(Default)]
    struct CtlReceiver {
        got: Vec<(SimTime, NodeId, Vec<u64>)>,
    }
    impl App for CtlReceiver {
        fn on_control(&mut self, ctx: &mut Ctx, src: NodeId, payload: &[u64]) {
            self.got.push((ctx.now(), src, payload.to_vec()));
        }
    }

    #[test]
    fn control_payload_arrives_at_path_delay() {
        let (t, a, z) = two_nodes(1_000_000, 5);
        let mut sim = Simulator::new(t, 31);
        sim.add_app(
            a,
            Box::new(CtlSender {
                peers: vec![z],
                payload: vec![7, 8, 9],
            }),
        );
        sim.add_app(z, Box::new(CtlReceiver::default()));
        sim.run_until(SimTime::from_secs(1));
        let rx = sim
            .app::<CtlReceiver>(z)
            .expect("invariant: CtlReceiver installed on z");
        assert_eq!(
            rx.got,
            vec![(SimTime::from_nanos(15_000_000), a, vec![7, 8, 9])]
        );
    }

    #[test]
    fn simultaneous_control_sends_are_shard_invariant() {
        // Every leaf broadcasts to the hub at the same instant over
        // equal-delay links, so all four payloads *arrive* at the same
        // instant: the tie must order identically in every sharding
        // (the source-keyed control lane provides the canonical order).
        let equal_star = || {
            let mut b = TopologyBuilder::new();
            let hub = b.node();
            let leaves: Vec<_> = (0..4)
                .map(|_| {
                    let n = b.node();
                    b.duplex(
                        n,
                        hub,
                        LinkConfig::new(2_000_000, SimDuration::from_millis(3)),
                    );
                    n
                })
                .collect();
            (b.build(), hub, leaves)
        };
        let run = |assignment: Option<Vec<u32>>| {
            let (t, hub, leaves) = equal_star();
            let mut sim = match assignment {
                None => Simulator::new(t, 13),
                Some(asg) => Simulator::new_sharded(t, 13, asg),
            };
            for (i, &n) in leaves.iter().enumerate() {
                sim.add_app(
                    n,
                    Box::new(CtlSender {
                        peers: vec![hub],
                        payload: vec![i as u64],
                    }),
                );
            }
            sim.add_app(hub, Box::new(CtlReceiver::default()));
            sim.run_until(SimTime::from_secs(1));
            sim.app::<CtlReceiver>(hub)
                .expect("invariant: CtlReceiver installed on hub")
                .got
                .clone()
        };
        let single = run(None);
        assert_eq!(single.len(), 4, "all payloads delivered");
        assert_eq!(single, run(Some(vec![0, 1, 1, 2, 2])));
        assert_eq!(single, run(Some(vec![0, 1, 2, 3, 4])));
    }

    /// Watches a peer's flow from the start and drains delivery
    /// progress on a fixed timer cadence, logging what each drain saw.
    struct ProgressWatcher {
        watched: FlowId,
        offset: SimDuration,
        period: SimDuration,
        log: Vec<(SimTime, u64)>,
        scratch: Vec<FlowId>,
    }

    impl App for ProgressWatcher {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.watch_flow(self.watched);
            ctx.set_timer(self.offset, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            let mut out = std::mem::take(&mut self.scratch);
            out.clear();
            ctx.drain_progress(&mut out);
            for &f in &out {
                self.log.push((ctx.now(), ctx.flow(f).delivered_bytes()));
            }
            self.scratch = out;
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn progress_drains_are_node_local_in_every_sharding() {
        // Two disjoint sender -> watcher pairs whose drain timers are
        // offset by 1 ms. Watches are node-keyed, so a watcher's drain
        // must see exactly its own flow's progress whether the two
        // watchers share a shard or sit on different shards — a drain
        // that consumed a co-located peer's entries would make fused
        // and split placements of the same topology diverge.
        let build = || {
            let mut b = TopologyBuilder::new();
            let link = LinkConfig::new(1_000_000, SimDuration::from_millis(2));
            let s0 = b.node();
            let w0 = b.node();
            b.duplex(s0, w0, link);
            let s1 = b.node();
            let w1 = b.node();
            b.duplex(s1, w1, link);
            (b.build(), [s0, w0, s1, w1])
        };
        let run = |assignment: Option<Vec<u32>>| {
            let (t, [s0, w0, s1, w1]) = build();
            let mut sim = match assignment {
                None => Simulator::new(t, 47),
                Some(asg) => Simulator::new_sharded(t, 47, asg),
            };
            for (s, w) in [(s0, w0), (s1, w1)] {
                sim.add_app(
                    s,
                    Box::new(Sender {
                        dst: w,
                        bytes: 30_000,
                        flow: None,
                        drained_at: None,
                    }),
                );
            }
            for (i, (s, w)) in [(s0, w0), (s1, w1)].into_iter().enumerate() {
                sim.add_app(
                    w,
                    Box::new(ProgressWatcher {
                        watched: flow_id(s, 0),
                        offset: SimDuration::from_millis(10 + i as u64),
                        period: SimDuration::from_millis(10),
                        log: Vec::new(),
                        scratch: Vec::new(),
                    }),
                );
            }
            sim.run_until(SimTime::from_secs(1));
            let log_of = |w| {
                sim.app::<ProgressWatcher>(w)
                    .expect("invariant: ProgressWatcher installed")
                    .log
                    .clone()
            };
            (log_of(w0), log_of(w1))
        };
        let fused = run(None);
        assert!(
            fused.0.len() >= 5 && fused.1.len() >= 5,
            "both watchers saw steady progress: {} / {} drains",
            fused.0.len(),
            fused.1.len()
        );
        // Watchers co-located off shard 0, then one pair per shard,
        // then fully split: all identical to the single-shard run.
        assert_eq!(fused, run(Some(vec![0, 1, 1, 1])));
        assert_eq!(fused, run(Some(vec![0, 0, 1, 1])));
        assert_eq!(fused, run(Some(vec![0, 1, 2, 3])));
    }

    #[test]
    #[should_panic(expected = "no lookahead")]
    fn zero_delay_cross_shard_link_is_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        b.duplex(a, z, LinkConfig::new(1_000_000, SimDuration::ZERO));
        Simulator::new_sharded(b.build(), 1, vec![0, 1]);
    }

    // ------------------------------------------------ fault injection

    #[test]
    fn link_flap_drops_traffic_and_transfer_recovers() {
        // A bulk transfer over a link that dies for 2 s mid-flight: the
        // flap must drop packets (queue flush + doomed in-flight), the
        // loss must be attributed to the flap, and the transport must
        // still complete the transfer after recovery.
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        let (fwd, _rev) = b.duplex(
            a,
            z,
            LinkConfig::new(2_000_000, SimDuration::from_millis(10)),
        );
        let mut sim = Simulator::new(b.build(), 71);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 2_000_000,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        let mut faults = FaultSchedule::new();
        faults.link_down(SimTime::from_secs(3), fwd, SimDuration::from_secs(2));
        sim.inject_faults(&faults);
        sim.run_until(SimTime::from_secs(60));
        let stats = sim.world().link_stats(fwd);
        assert!(stats.drops_down > 0, "flap must drop packets");
        assert!(sim.total_drops() >= stats.drops_down);
        let done = sim
            .app::<Sender>(a)
            .expect("invariant: Sender installed on a")
            .drained_at
            .expect("transfer must finish after the link recovers");
        // Loss-free the transfer takes ~8.2 s; the 2 s hole plus the
        // retransmission backoff push it past 10 s but it must converge.
        assert!(done > SimTime::from_secs(10), "flap had no effect: {done}");
    }

    #[test]
    fn link_flap_leaves_loss_sampler_stream_untouched() {
        // On a lossy link, the Bernoulli stream must consume one roll
        // per *offered* packet whether or not a flap is layered on. Run
        // the same workload with and without a flap and compare the
        // post-recovery drop pattern indirectly: total sampled drops
        // (overall drops minus flap-attributed drops) must evolve from
        // the same stream, so the faulted run's sampled drops never
        // exceed what the sampler drew in the clean run by more than
        // the extra packets retransmission generates. The cheap, exact
        // check: a flap on a *loss-free* link must not panic or drop
        // anything once it is back up, and a clean rerun is identical.
        let run = |flap: bool| {
            let mut b = TopologyBuilder::new();
            let a = b.node();
            let z = b.node();
            let (fwd, _) = b.duplex(
                a,
                z,
                LinkConfig::new(5_000_000, SimDuration::from_millis(5)).drop_prob(0.05),
            );
            let mut sim = Simulator::new(b.build(), 4);
            sim.add_app(
                a,
                Box::new(Sender {
                    dst: z,
                    bytes: 500_000,
                    flow: None,
                    drained_at: None,
                }),
            );
            sim.add_app(z, Box::new(Receiver::default()));
            if flap {
                let mut faults = FaultSchedule::new();
                faults.link_down(SimTime::from_secs(1), fwd, SimDuration::from_millis(500));
                sim.inject_faults(&faults);
            }
            sim.run_until(SimTime::from_secs(120));
            let rx_done = sim.world().flow_rx(flow_id(a, 0)).delivered_bytes();
            (rx_done, sim.world().link_stats(fwd).drops_down)
        };
        let (clean_bytes, clean_down) = run(false);
        let (flap_bytes, flap_down) = run(true);
        assert_eq!(clean_bytes, 500_000);
        assert_eq!(flap_bytes, 500_000, "delivery survives flap + loss");
        assert_eq!(clean_down, 0);
        assert!(flap_down > 0, "the flap dropped something");
    }

    /// Fires a periodic timer and logs every fire; records restarts.
    struct Heartbeat {
        period: SimDuration,
        fires: Vec<SimTime>,
        restarts: Vec<SimTime>,
    }
    impl App for Heartbeat {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(self.period, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            self.fires.push(ctx.now());
            ctx.set_timer(self.period, 0);
        }
        fn on_restart(&mut self, ctx: &mut Ctx) {
            self.restarts.push(ctx.now());
            // Re-arm: the pre-crash timer chain died with the node.
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn crashed_node_loses_timers_and_restart_reinitializes() {
        let (t, a, _z) = two_nodes(1_000_000, 2);
        let mut sim = Simulator::new(t, 8);
        sim.add_app(
            a,
            Box::new(Heartbeat {
                period: SimDuration::from_millis(100),
                fires: vec![],
                restarts: vec![],
            }),
        );
        let mut faults = FaultSchedule::new();
        faults.node_crash(
            SimTime::from_nanos(450_000_000),
            a,
            SimDuration::from_millis(400),
        );
        sim.inject_faults(&faults);
        sim.run_until(SimTime::from_secs(2));
        let hb = sim
            .app::<Heartbeat>(a)
            .expect("invariant: Heartbeat installed on a");
        assert_eq!(hb.restarts, vec![SimTime::from_nanos(850_000_000)]);
        // Fires at 100..400 ms, silence through the outage (the 500 ms
        // pre-crash timer dies with its incarnation), then the restart
        // re-arms: 950 ms onward.
        let expect_head: Vec<_> = (1..=4)
            .map(|i| SimTime::from_nanos(i * 100_000_000))
            .collect();
        assert_eq!(&hb.fires[..4], &expect_head[..]);
        assert_eq!(hb.fires[4], SimTime::from_nanos(950_000_000));
        assert_eq!(hb.fires.len(), 4 + 11, "steady 100 ms cadence resumes");
    }

    #[test]
    fn crashed_node_aborts_its_flows_and_notifies_peers() {
        struct CrashWatch {
            aborted: Vec<(SimTime, FlowId)>,
        }
        impl App for CrashWatch {
            fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
                self.aborted.push((ctx.now(), flow));
            }
        }
        let (t, a, z) = two_nodes(1_000_000, 5);
        let mut sim = Simulator::new(t, 9);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 10_000_000, // cannot finish before the crash
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(CrashWatch { aborted: vec![] }));
        let mut faults = FaultSchedule::new();
        faults.node_crash(SimTime::from_secs(1), a, SimDuration::from_secs(1));
        sim.inject_faults(&faults);
        sim.run_until(SimTime::from_secs(5));
        let f = flow_id(a, 0);
        assert!(sim.world().flow(f).is_aborted(), "sender half aborted");
        assert!(sim.world().flow_rx(f).is_aborted(), "receiver half aborted");
        let w = sim
            .app::<CrashWatch>(z)
            .expect("invariant: CrashWatch installed on z");
        // The abort record travels at path propagation delay (5 ms).
        assert_eq!(w.aborted, vec![(SimTime::from_nanos(1_005_000_000), f)]);
    }

    #[test]
    fn crash_purges_the_nodes_flow_watches() {
        // Satellite regression: watches held by a crashed node must be
        // purged (and their queued progress entries dropped) — before
        // the fix nothing removed them, so a reborn watcher inherited a
        // ghost watch and stale progress.
        let (t, a, z) = two_nodes(1_000_000, 2);
        let mut sim = Simulator::new(t, 10);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 10_000_000,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(
            z,
            Box::new(ProgressWatcher {
                watched: flow_id(a, 0),
                offset: SimDuration::from_millis(10),
                period: SimDuration::from_millis(10),
                log: Vec::new(),
                scratch: Vec::new(),
            }),
        );
        let mut faults = FaultSchedule::new();
        faults.node_crash(SimTime::from_secs(1), z, SimDuration::from_secs(1));
        sim.inject_faults(&faults);
        sim.run_until(SimTime::from_secs(3));
        let f = flow_id(a, 0);
        let world = sim.world();
        assert!(
            world.watch_rx.get(f).is_none(),
            "crash must purge the dead node's watch"
        );
        assert!(
            world.progress_rx.is_empty(),
            "queued progress for purged watches must be dropped"
        );
        let w = sim
            .app::<ProgressWatcher>(z)
            .expect("invariant: ProgressWatcher installed on z");
        // The drain timer at exactly t = 1 s still fires (node lane
        // sorts before the fault lane at equal time); nothing after.
        assert!(
            w.log.last().expect("some drains happened").0 <= SimTime::from_secs(1),
            "no progress credited after the watch died"
        );
    }

    #[test]
    fn faults_are_shard_invariant() {
        // The same explicit fault schedule (one leaf link flap + one
        // leaf crash) must produce byte-identical outcomes in every
        // sharding — fault events ride canonical lanes.
        let run = |assignment: Option<Vec<u32>>| {
            let (t, hub, leaves) = star(4);
            let flapped_link = LinkId(0); // leaves[0] -> hub
            let mut sim = match assignment {
                None => Simulator::new(t, 29),
                Some(a) => Simulator::new_sharded(t, 29, a),
            };
            for (i, &n) in leaves.iter().enumerate() {
                sim.add_app(
                    n,
                    Box::new(Sender {
                        dst: hub,
                        bytes: 100_000 * (i as u64 + 1),
                        flow: None,
                        drained_at: None,
                    }),
                );
            }
            sim.add_app(hub, Box::new(Receiver::default()));
            let mut faults = FaultSchedule::new();
            faults
                .link_down(
                    SimTime::from_nanos(200_000_000),
                    flapped_link,
                    SimDuration::from_millis(300),
                )
                .node_crash(SimTime::from_secs(1), leaves[1], SimDuration::from_secs(2));
            sim.inject_faults(&faults);
            sim.run_until(SimTime::from_secs(20));
            let got = sim
                .app::<Receiver>(hub)
                .expect("invariant: Receiver installed on hub")
                .got
                .clone();
            let drains: Vec<_> = leaves
                .iter()
                .map(|&n| {
                    sim.app::<Sender>(n)
                        .expect("invariant: Sender installed on every leaf")
                        .drained_at
                })
                .collect();
            (got, drains, sim.total_drops())
        };
        let single = run(None);
        assert!(single.2 > 0, "the schedule dropped something");
        assert_eq!(single, run(Some(vec![0, 1, 1, 2, 2])));
        assert_eq!(single, run(Some(vec![0, 1, 2, 3, 4])));
        assert_eq!(single, run(Some(vec![0, 0, 1, 0, 1])));
    }

    #[test]
    #[should_panic(expected = "barrier watchdog")]
    fn barrier_watchdog_dumps_instead_of_hanging() {
        use std::sync::atomic::AtomicBool;
        // A shard wedged inside an app callback: its peer must trip the
        // watchdog and abort the run rather than park forever. The
        // staller's release comes from a host-side thread so the scoped
        // threads can all be joined once the panic propagates.
        static RELEASED: AtomicBool = AtomicBool::new(false);
        struct Staller;
        impl App for Staller {
            fn start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {
                while !RELEASED.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
        }
        let (t, a, z) = two_nodes(1_000_000, 5);
        let mut sim = Simulator::new_sharded(t, 12, vec![0, 1]);
        sim.add_app(a, Box::new(Staller));
        sim.add_app(
            z,
            Box::new(Sender {
                dst: a,
                bytes: 100_000,
                flow: None,
                drained_at: None,
            }),
        );
        sim.set_barrier_watchdog(std::time::Duration::from_millis(200));
        let releaser = std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_secs(1));
            RELEASED.store(true, Ordering::Release);
        });
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_until(SimTime::from_secs(5));
        }));
        releaser.join().expect("releaser thread exits");
        if let Err(panic) = run {
            std::panic::resume_unwind(panic);
        }
    }
}
