//! The simulator: world state, event loop, and the application interface.
//!
//! One application ([`App`]) runs per node. Applications interact with the
//! world exclusively through [`Ctx`]: they open flows, write messages, set
//! timers, and abort flows. The world delivers callbacks — message arrival,
//! timer expiry, flow drained, flow aborted by peer — in deterministic
//! order.
//!
//! Determinism: the event queue breaks time ties by insertion order, the
//! RNG is seeded PCG-32, and all state transitions are single-threaded, so
//! a `(topology, apps, seed)` triple always produces the same trace.

use crate::event::{EventHandle, EventQueue};
use crate::link::{Enqueue, Link, LinkStats};
use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketKind};
use crate::rng::Pcg32;
use crate::tcp::{Flow, FlowAction, FlowConfig};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use std::any::Any;
use std::collections::VecDeque;

/// Handle to a pending application timer, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle(EventHandle);

/// A per-node application.
///
/// All methods have empty defaults so implementations override only what
/// they need. `Any` is a supertrait so harnesses can downcast applications
/// back out of the simulator to read their results.
pub trait App: Any {
    /// Called once when the simulation starts.
    fn start(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }
    /// A complete message (written with [`Ctx::send`]) arrived on `flow`.
    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
        let _ = (ctx, flow, tag);
    }
    /// A timer set with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let _ = (ctx, token);
    }
    /// Every byte written to `flow` has been acknowledged.
    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId) {
        let _ = (ctx, flow);
    }
    /// The peer aborted `flow`.
    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        let _ = (ctx, flow);
    }
}

enum Event {
    TxDone(LinkId),
    Arrive { node: NodeId, packet: Packet },
    AppTimer { node: NodeId, token: u64 },
    Rto(FlowId),
}

enum Notify {
    Message {
        node: NodeId,
        flow: FlowId,
        tag: u64,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Drained {
        node: NodeId,
        flow: FlowId,
    },
    Aborted {
        node: NodeId,
        flow: FlowId,
    },
}

/// Everything in the simulated world except the applications.
pub struct World {
    now: SimTime,
    queue: EventQueue<Event>,
    topology: Topology,
    links: Vec<Link>,
    flows: Vec<Flow>,
    rto_handles: Vec<Option<EventHandle>>,
    rng: Pcg32,
    notifies: VecDeque<Notify>,
    actions_scratch: Vec<FlowAction>,
    /// Total packets dropped anywhere (overflow + fault), for quick checks.
    pub total_drops: u64,
}

impl World {
    fn new(topology: Topology, seed: u64) -> Self {
        let links = topology
            .edges()
            .iter()
            .map(|e| Link::new(e.cfg, e.to))
            .collect();
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            topology,
            links,
            flows: Vec::new(),
            rto_handles: Vec::new(),
            rng: Pcg32::seeded(seed),
            notifies: VecDeque::new(),
            actions_scratch: Vec::new(),
            total_drops: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to a flow, for metrics.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.0 as usize]
    }

    /// Number of flows ever opened.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Statistics for a link.
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        self.links[id.0 as usize].stats
    }

    /// The topology the world was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn open_flow(&mut self, src: NodeId, dst: NodeId, cfg: FlowConfig) -> FlowId {
        assert!(
            self.topology.reachable(src, dst) && self.topology.reachable(dst, src),
            "flow endpoints must be mutually reachable ({src} <-> {dst})"
        );
        assert_ne!(src, dst, "flows must connect distinct nodes");
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(Flow::new(id, src, dst, cfg));
        self.rto_handles.push(None);
        id
    }

    fn route_packet(&mut self, at: NodeId, packet: Packet) {
        let lid = self
            .topology
            .next_hop(at, packet.dst)
            .unwrap_or_else(|| panic!("no route {at} -> {}", packet.dst));
        let roll = self.rng.f64();
        match self.links[lid.0 as usize].enqueue(packet, roll) {
            Enqueue::StartTx(tx) => {
                self.queue.push(self.now + tx, Event::TxDone(lid));
            }
            Enqueue::Queued => {}
            Enqueue::Dropped => {
                self.total_drops += 1;
            }
        }
    }

    fn apply_flow_actions(&mut self, fid: FlowId) {
        let actions = std::mem::take(&mut self.actions_scratch);
        for action in &actions {
            let (src, dst, header, ack_bytes) = {
                let f = &self.flows[fid.0 as usize];
                (f.src, f.dst, f.cfg.header_bytes, f.cfg.ack_bytes)
            };
            match *action {
                FlowAction::SendData { offset, len } => {
                    let p = Packet {
                        flow: fid,
                        src,
                        dst,
                        size: len + header,
                        kind: PacketKind::Data { offset, len },
                    };
                    self.route_packet(src, p);
                }
                FlowAction::SendAck { cum } => {
                    let p = Packet {
                        flow: fid,
                        src: dst,
                        dst: src,
                        size: ack_bytes,
                        kind: PacketKind::Ack { cum },
                    };
                    self.route_packet(dst, p);
                }
                FlowAction::ArmRto(after) => {
                    if let Some(h) = self.rto_handles[fid.0 as usize].take() {
                        self.queue.cancel(h);
                    }
                    let h = self.queue.push(self.now + after, Event::Rto(fid));
                    self.rto_handles[fid.0 as usize] = Some(h);
                }
                FlowAction::CancelRto => {
                    if let Some(h) = self.rto_handles[fid.0 as usize].take() {
                        self.queue.cancel(h);
                    }
                }
                FlowAction::Deliver { tag } => {
                    self.notifies.push_back(Notify::Message {
                        node: dst,
                        flow: fid,
                        tag,
                    });
                }
                FlowAction::Drained => {
                    self.notifies.push_back(Notify::Drained {
                        node: src,
                        flow: fid,
                    });
                }
            }
        }
        // Give the (now empty) buffer back for reuse.
        self.actions_scratch = actions;
        self.actions_scratch.clear();
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::TxDone(lid) => {
                let link = &mut self.links[lid.0 as usize];
                let delay = link.cfg.delay;
                let dst = link.dst;
                let (packet, next) = link.tx_done();
                if let Some(tx) = next {
                    self.queue.push(self.now + tx, Event::TxDone(lid));
                }
                self.queue
                    .push(self.now + delay, Event::Arrive { node: dst, packet });
            }
            Event::Arrive { node, packet } => {
                if node == packet.dst {
                    self.receive(packet);
                } else {
                    self.route_packet(node, packet);
                }
            }
            Event::AppTimer { node, token } => {
                self.notifies.push_back(Notify::Timer { node, token });
            }
            Event::Rto(fid) => {
                self.rto_handles[fid.0 as usize] = None;
                let now = self.now;
                let mut actions = std::mem::take(&mut self.actions_scratch);
                self.flows[fid.0 as usize].on_rto(now, &mut actions);
                self.actions_scratch = actions;
                self.apply_flow_actions(fid);
            }
        }
    }

    fn receive(&mut self, packet: Packet) {
        let fid = packet.flow;
        let now = self.now;
        let mut actions = std::mem::take(&mut self.actions_scratch);
        match packet.kind {
            PacketKind::Data { offset, len } => {
                self.flows[fid.0 as usize].on_data(now, offset, len, &mut actions);
            }
            PacketKind::Ack { cum } => {
                self.flows[fid.0 as usize].on_ack(now, cum, &mut actions);
            }
        }
        self.actions_scratch = actions;
        self.apply_flow_actions(fid);
    }
}

/// The world as seen by one application during a callback.
pub struct Ctx<'a> {
    world: &'a mut World,
    node: NodeId,
}

impl<'a> Ctx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The node this application runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The shared deterministic RNG.
    pub fn rng(&mut self) -> &mut Pcg32 {
        &mut self.world.rng
    }

    /// Open a flow from this node to `dst` with the given transport config.
    pub fn open_flow(&mut self, dst: NodeId, cfg: FlowConfig) -> FlowId {
        self.world.open_flow(self.node, dst, cfg)
    }

    /// Open a flow with default transport parameters.
    pub fn open_default_flow(&mut self, dst: NodeId) -> FlowId {
        self.open_flow(dst, FlowConfig::default())
    }

    /// Write a message of `bytes` bytes tagged `tag` onto `flow`. Must be
    /// called from the flow's source node.
    pub fn send(&mut self, flow: FlowId, bytes: u64, tag: u64) {
        assert_eq!(
            self.world.flows[flow.0 as usize].src, self.node,
            "send from the wrong endpoint"
        );
        let now = self.world.now;
        let mut actions = std::mem::take(&mut self.world.actions_scratch);
        self.world.flows[flow.0 as usize].write(now, bytes, tag, &mut actions);
        self.world.actions_scratch = actions;
        self.world.apply_flow_actions(flow);
    }

    /// Abort `flow` from either endpoint. The peer gets an
    /// [`App::on_flow_aborted`] callback; in-flight packets are ignored.
    pub fn abort_flow(&mut self, flow: FlowId) {
        let f = &self.world.flows[flow.0 as usize];
        assert!(
            f.src == self.node || f.dst == self.node,
            "abort from a non-endpoint"
        );
        if f.is_aborted() {
            return;
        }
        let peer = if f.src == self.node { f.dst } else { f.src };
        let mut actions = std::mem::take(&mut self.world.actions_scratch);
        self.world.flows[flow.0 as usize].abort(&mut actions);
        self.world.actions_scratch = actions;
        self.world.apply_flow_actions(flow);
        self.world
            .notifies
            .push_back(Notify::Aborted { node: peer, flow });
    }

    /// Arm a timer that fires [`App::on_timer`] with `token` after `after`.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle {
        let h = self.world.queue.push(
            self.world.now + after,
            Event::AppTimer {
                node: self.node,
                token,
            },
        );
        TimerHandle(h)
    }

    /// Cancel a pending timer. No-op if it already fired.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.world.queue.cancel(handle.0);
    }

    /// Read access to a flow (either endpoint), for byte counts etc.
    pub fn flow(&self, id: FlowId) -> &Flow {
        self.world.flow(id)
    }

    /// Propagation delay of the route to `dst` (for informed apps/tests).
    pub fn path_delay(&self, dst: NodeId) -> Option<SimDuration> {
        self.world.topology.path_delay(self.node, dst)
    }
}

/// The simulator: a world plus one application per node.
pub struct Simulator {
    world: World,
    apps: Vec<Option<Box<dyn App>>>,
    started: bool,
}

impl Simulator {
    /// Create a simulator over `topology`, seeded for determinism.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let n = topology.node_count() as usize;
        let mut apps = Vec::with_capacity(n);
        apps.resize_with(n, || None);
        Simulator {
            world: World::new(topology, seed),
            apps,
            started: false,
        }
    }

    /// Install an application on `node`. Replaces any previous one.
    pub fn add_app(&mut self, node: NodeId, app: Box<dyn App>) {
        self.apps[node.0 as usize] = Some(app);
    }

    /// Read access to the world, for metrics extraction.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Downcast the application on `node` to a concrete type.
    pub fn app<T: App>(&self, node: NodeId) -> Option<&T> {
        self.apps[node.0 as usize]
            .as_deref()
            .and_then(|a| (a as &dyn Any).downcast_ref::<T>())
    }

    /// Mutable downcast of the application on `node`.
    pub fn app_mut<T: App>(&mut self, node: NodeId) -> Option<&mut T> {
        self.apps[node.0 as usize]
            .as_deref_mut()
            .and_then(|a| (a as &mut dyn Any).downcast_mut::<T>())
    }

    fn with_app<R>(&mut self, node: NodeId, f: impl FnOnce(&mut dyn App, &mut Ctx) -> R) -> R {
        let mut app = self.apps[node.0 as usize]
            .take()
            .unwrap_or_else(|| panic!("no app on {node} (or reentrant dispatch)"));
        let mut ctx = Ctx {
            world: &mut self.world,
            node,
        };
        let r = f(app.as_mut(), &mut ctx);
        self.apps[node.0 as usize] = Some(app);
        r
    }

    fn dispatch_notifies(&mut self) {
        while let Some(n) = self.world.notifies.pop_front() {
            match n {
                Notify::Message { node, flow, tag } => {
                    self.with_app(node, |a, ctx| a.on_message(ctx, flow, tag));
                }
                Notify::Timer { node, token } => {
                    self.with_app(node, |a, ctx| a.on_timer(ctx, token));
                }
                Notify::Drained { node, flow } => {
                    self.with_app(node, |a, ctx| a.on_flow_drained(ctx, flow));
                }
                Notify::Aborted { node, flow } => {
                    self.with_app(node, |a, ctx| a.on_flow_aborted(ctx, flow));
                }
            }
        }
    }

    fn start_apps(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.apps.len() {
            if self.apps[i].is_some() {
                self.with_app(NodeId(i as u32), |a, ctx| a.start(ctx));
            }
        }
    }

    /// Run the simulation until `until` (inclusive of events at `until`).
    pub fn run_until(&mut self, until: SimTime) {
        self.start_apps();
        self.dispatch_notifies();
        while let Some(t) = self.world.queue.peek_time() {
            if t > until {
                break;
            }
            let (t, ev) = self.world.queue.pop().expect("peeked");
            debug_assert!(t >= self.world.now, "time went backwards");
            self.world.now = t;
            self.world.handle_event(ev);
            self.dispatch_notifies();
        }
        if self.world.now < until {
            self.world.now = until;
        }
    }

    /// Run for a span of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let until = self.world.now + span;
        self.run_until(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::topology::TopologyBuilder;

    /// Sends one message at start; records drain time.
    struct Sender {
        dst: NodeId,
        bytes: u64,
        flow: Option<FlowId>,
        drained_at: Option<SimTime>,
    }

    impl App for Sender {
        fn start(&mut self, ctx: &mut Ctx) {
            let f = ctx.open_default_flow(self.dst);
            ctx.send(f, self.bytes, 1);
            self.flow = Some(f);
        }
        fn on_flow_drained(&mut self, ctx: &mut Ctx, _flow: FlowId) {
            self.drained_at = Some(ctx.now());
        }
    }

    /// Records message arrivals.
    #[derive(Default)]
    struct Receiver {
        got: Vec<(SimTime, FlowId, u64)>,
    }

    impl App for Receiver {
        fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
            self.got.push((ctx.now(), flow, tag));
        }
    }

    fn two_nodes(rate_bps: u64, delay_ms: u64) -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        b.duplex(
            a,
            z,
            LinkConfig::new(rate_bps, SimDuration::from_millis(delay_ms)),
        );
        (b.build(), a, z)
    }

    #[test]
    fn small_message_delivered_quickly() {
        let (t, a, z) = two_nodes(10_000_000, 5);
        let mut sim = Simulator::new(t, 1);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 500,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(2));
        let rx = sim.app::<Receiver>(z).unwrap();
        assert_eq!(rx.got.len(), 1);
        assert_eq!(rx.got[0].2, 1);
        // One-way: tx (540B at 10Mbps = 0.432ms) + 5ms prop.
        let arrival = rx.got[0].0.as_secs_f64();
        assert!(arrival > 0.005 && arrival < 0.010, "arrival {arrival}");
        let tx = sim.app::<Sender>(a).unwrap();
        assert!(tx.drained_at.is_some(), "sender saw the drain");
    }

    #[test]
    fn bulk_transfer_throughput_approaches_link_rate() {
        // 2 Mbit/s, 10 ms one-way. Send 2 MB; ideal time ~8 s + slow start.
        let (t, a, z) = two_nodes(2_000_000, 10);
        let mut sim = Simulator::new(t, 2);
        let bytes = 2_000_000u64;
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(60));
        let tx = sim.app::<Sender>(a).unwrap();
        let done = tx.drained_at.expect("transfer completed").as_secs_f64();
        // Payload goodput limit: 2e6*8 bits / (2e6 bps * 1460/1500 eff) ≈ 8.2 s.
        assert!(done > 8.0, "faster than the link allows: {done}");
        assert!(done < 11.0, "took too long (cc problem?): {done}");
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = |seed| {
            let (t, a, z) = two_nodes(1_000_000, 20);
            let mut sim = Simulator::new(t, seed);
            sim.add_app(
                a,
                Box::new(Sender {
                    dst: z,
                    bytes: 300_000,
                    flow: None,
                    drained_at: None,
                }),
            );
            sim.add_app(z, Box::new(Receiver::default()));
            sim.run_until(SimTime::from_secs(30));
            sim.app::<Sender>(a).unwrap().drained_at
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_fairly() {
        // Two senders behind a shared 2 Mbit/s bottleneck.
        let mut b = TopologyBuilder::new();
        let s1 = b.node();
        let s2 = b.node();
        let gw = b.node();
        let z = b.node();
        let fast = LinkConfig::new(100_000_000, SimDuration::from_millis(1));
        b.duplex(s1, gw, fast);
        b.duplex(s2, gw, fast);
        b.duplex(
            gw,
            z,
            LinkConfig::new(2_000_000, SimDuration::from_millis(10)).queue_packets(25),
        );
        let t = b.build();
        let mut sim = Simulator::new(t, 3);
        for (n, _) in [(s1, 0), (s2, 1)] {
            sim.add_app(
                n,
                Box::new(Sender {
                    dst: z,
                    bytes: 30_000_000, // never finishes in 40 s
                    flow: None,
                    drained_at: None,
                }),
            );
        }
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(40));
        let f1 = sim.world().flow(FlowId(0)).acked_bytes() as f64;
        let f2 = sim.world().flow(FlowId(1)).acked_bytes() as f64;
        let ratio = f1.min(f2) / f1.max(f2);
        assert!(ratio > 0.6, "unfair split: {f1} vs {f2}");
        // Aggregate goodput should be near 2 Mbit/s payload-adjusted.
        let total_mbps = (f1 + f2) * 8.0 / 40.0 / 1e6;
        assert!(
            total_mbps > 1.6 && total_mbps < 2.01,
            "goodput {total_mbps}"
        );
    }

    #[test]
    fn lossy_link_still_delivers_reliably() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        // 5% loss each way.
        b.duplex(
            a,
            z,
            LinkConfig::new(5_000_000, SimDuration::from_millis(5)).drop_prob(0.05),
        );
        let t = b.build();
        let mut sim = Simulator::new(t, 4);
        sim.add_app(
            a,
            Box::new(Sender {
                dst: z,
                bytes: 500_000,
                flow: None,
                drained_at: None,
            }),
        );
        sim.add_app(z, Box::new(Receiver::default()));
        sim.run_until(SimTime::from_secs(120));
        let rx = sim.app::<Receiver>(z).unwrap();
        assert_eq!(rx.got.len(), 1, "message must arrive despite loss");
        let f = sim.world().flow(FlowId(0));
        assert!(
            f.stats.segments_retransmitted > 0,
            "loss caused retransmits"
        );
        assert_eq!(f.delivered_bytes(), 500_000);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerApp {
            fired: Vec<u64>,
            cancelled_handle: Option<TimerHandle>,
        }
        impl App for TimerApp {
            fn start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let h = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                self.cancelled_handle = Some(h);
            }
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    let h = self.cancelled_handle.take().unwrap();
                    ctx.cancel_timer(h);
                }
            }
        }
        let (t, a, _z) = two_nodes(1_000_000, 1);
        let mut sim = Simulator::new(t, 5);
        sim.add_app(
            a,
            Box::new(TimerApp {
                fired: vec![],
                cancelled_handle: None,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app::<TimerApp>(a).unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn abort_notifies_peer() {
        struct Aborter {
            dst: NodeId,
        }
        impl App for Aborter {
            fn start(&mut self, ctx: &mut Ctx) {
                let f = ctx.open_default_flow(self.dst);
                ctx.send(f, 1_000_000, 1);
                ctx.set_timer(SimDuration::from_millis(50), f.0 as u64);
            }
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                ctx.abort_flow(FlowId(token as u32));
            }
        }
        #[derive(Default)]
        struct PeerWatch {
            aborted: Vec<FlowId>,
        }
        impl App for PeerWatch {
            fn on_flow_aborted(&mut self, _ctx: &mut Ctx, flow: FlowId) {
                self.aborted.push(flow);
            }
        }
        let (t, a, z) = two_nodes(1_000_000, 5);
        let mut sim = Simulator::new(t, 6);
        sim.add_app(a, Box::new(Aborter { dst: z }));
        sim.add_app(z, Box::new(PeerWatch::default()));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.app::<PeerWatch>(z).unwrap().aborted, vec![FlowId(0)]);
        assert!(sim.world().flow(FlowId(0)).is_aborted());
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let (t, _a, _z) = two_nodes(1_000_000, 1);
        let mut sim = Simulator::new(t, 7);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.world().now(), SimTime::from_secs(5));
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.world().now(), SimTime::from_secs(8));
    }
}
