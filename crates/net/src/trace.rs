//! Measurement helpers: summaries, percentiles, time series.

use crate::time::{SimDuration, SimTime};

/// An accumulating sample set with summary statistics.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Record a duration sample, in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.sum() / self.values.len() as f64
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// The p-th percentile (0..=100) by nearest-rank on the sorted samples.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let n = self.values.len();
        // lint: allow(cast) — percentile rank in [0, n] by construction, clamped next line
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.values[rank.clamp(1, n) - 1]
    }

    /// Smallest sample.
    pub fn min(&mut self) -> f64 {
        self.percentile(0.0)
    }

    /// Largest sample.
    pub fn max(&mut self) -> f64 {
        self.percentile(100.0)
    }

    /// The raw samples, in insertion (or sorted, after percentile) order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A time series with fixed-width buckets, summing values per bucket
/// (e.g. bytes per 5-second interval, as the paper's capacity test uses).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: SimDuration,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// A series with the given bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(bucket.as_nanos() > 0);
        TimeSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Add `value` to the bucket containing `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = usize::try_from(at.as_nanos() / self.bucket.as_nanos())
            .expect("invariant: bucket index fits usize");
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// Per-bucket sums.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// Mean and standard deviation of per-bucket sums, excluding the first
    /// and last bucket (edge effects), matching the paper's methodology of
    /// reporting a 5-second-interval time series mean ± stddev.
    pub fn interior_mean_stddev(&self) -> (f64, f64) {
        if self.buckets.len() <= 2 {
            let mut s = Samples::new();
            for &b in &self.buckets {
                s.push(b);
            }
            return (s.mean(), s.stddev());
        }
        let mut s = Samples::new();
        for &b in &self.buckets[1..self.buckets.len() - 1] {
            s.push(b);
        }
        (s.mean(), s.stddev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let mut s = Samples::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.push(v as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(90.0), 90.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.min(), 1.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let mut s = Samples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(50.0), 3.0);
        s.push(0.5);
        assert_eq!(s.min(), 0.5);
    }

    #[test]
    fn empty_samples_are_zero() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(90.0), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn time_series_buckets() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(5));
        ts.add(SimTime::from_secs(1), 10.0);
        ts.add(SimTime::from_secs(4), 5.0);
        ts.add(SimTime::from_secs(5), 7.0);
        ts.add(SimTime::from_secs(14), 3.0);
        assert_eq!(ts.buckets(), &[15.0, 7.0, 3.0]);
    }

    #[test]
    fn interior_stats_drop_edges() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        for (t, v) in [(0, 100.0), (1, 10.0), (2, 10.0), (3, 10.0), (4, 100.0)] {
            ts.add(SimTime::from_secs(t), v);
        }
        let (mean, sd) = ts.interior_mean_stddev();
        assert_eq!(mean, 10.0);
        assert_eq!(sd, 0.0);
    }
}
