//! The simulator's event queue: a hierarchical timing wheel.
//!
//! ## Determinism contract
//!
//! Events pop in ascending `(time, lane, seq)` order. The *lane* is a
//! caller-chosen canonical key (the sharded engine uses the link, node,
//! or flow an event belongs to) that totally orders same-time events the
//! same way no matter which shard's queue they sit in — the property the
//! split-population engine needs for `--shards K`-invariant results. The
//! sequence number breaks remaining ties in insertion order, which makes
//! runs deterministic: two events scheduled for the same instant and lane
//! always fire in the order they were scheduled, regardless of queue
//! internals. The wheel preserves this order *exactly*; the pre-wheel
//! binary-heap implementation is kept in [`reference`] as a differential
//! oracle.
//!
//! ## Structure
//!
//! Time (nanoseconds) is bucketed into `2^13` ns ≈ 8 µs *granules*. The
//! wheel has [`LEVELS`] levels of [`SLOTS`] slots each; a slot at level
//! `l` spans `SLOTS^l` granules, so nine levels cover the full `u64`
//! nanosecond range with 64 slots (one occupancy bit-word) per level. An
//! event is filed at the level of the highest bit in which its granule
//! differs from the *cursor* (the next granule to drain), which means a
//! level's occupied slots always lie ahead of the cursor — there is no
//! wrap-around, and finding the next occupied slot is a handful of
//! `trailing_zeros` calls. Advancing the cursor into a higher-level slot
//! *cascades* it: its entries are re-filed, now landing at lower levels.
//! Draining a level-0 slot moves its entries into a small *ready* heap
//! ordered by the full `(time, lane, seq)` key, which merges same-granule
//! events (and late schedules aimed below the cursor) into the canonical
//! order. Pushes and pops are O(1) amortized — a bounded number of
//! cascade moves per event plus heap operations on the granule-sized
//! ready set — where the old heap paid O(log pending) per operation.
//!
//! ## Cancellation
//!
//! Cancellable pushes ([`EventQueue::push_lane_handle`]) allocate a slot
//! in a generation-stamped slab; the handle captures the slot and its
//! generation. Firing or reaping an event retires its slot (bumping the
//! generation), so cancelling a handle whose event already fired sees a
//! stale generation and is a free no-op. The pre-wheel queue kept a
//! tombstone forever in that case — bookkeeping here is O(pending).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem;

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
///
/// Carries a cancellation-slot index and the slot's generation at push
/// time; once the event fires, the slot is recycled under a new
/// generation and the handle goes permanently stale (cancel becomes a
/// no-op). The generation is 64-bit and monotonic per slot, so a stale
/// handle can never alias a recycled slot (no ABA mis-cancel, however
/// long the run).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle {
    slot: u32,
    generation: u64,
}

/// Level-0 slots cover `2^GRANULE_BITS` nanoseconds (~8 µs). Widened
/// from `2^10` when profiling showed most of the pop cost was cursor
/// advancement over empty level-0 slots: an 8 µs granule keeps the
/// sub-granule `ready` heap small (same-granule events at fig2 densities
/// are a handful) while cutting slot scans per pop by 8×.
const GRANULE_BITS: u32 = 13;
/// log2 of the slots per level; one `u64` occupancy word per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Mask selecting one level's slot index out of a granule.
const SLOT_MASK: u64 = (1u64 << LEVEL_BITS) - 1;
/// Levels needed to cover all 64 − [`GRANULE_BITS`] granule bits.
const LEVELS: usize = 9;

/// Bit shift of level `level`'s slot-index field within a granule.
#[inline]
fn level_shift(level: usize) -> u32 {
    debug_assert!(level < LEVELS);
    // lint: allow(cast) — level < LEVELS = 9, trivially fits u32
    LEVEL_BITS * level as u32
}

/// Vec index for a 6-bit slot number extracted via [`SLOT_MASK`].
#[inline]
fn idx_of(idx: u64) -> usize {
    debug_assert!(idx <= SLOT_MASK);
    // lint: allow(cast) — masked to 6 bits, never truncates
    idx as usize
}

/// Vec index for a 24-bit cancellation slot from the packed word.
#[inline]
fn slot_of(slot: u64) -> usize {
    debug_assert!(slot <= NO_SLOT);
    // lint: allow(cast) — slot is 24-bit by construction (masked with NO_SLOT)
    slot as usize
}

/// Low bits of [`Entry::seq_slot`] holding the cancellation slot.
const SLOT_BITS: u32 = 24;
/// Cancellation-slot sentinel for fire-and-forget events (all slot bits
/// set — the largest 24-bit value, reserved).
const NO_SLOT: u64 = (1 << SLOT_BITS) - 1;

/// Pack a sequence number and cancellation slot into one word. The
/// sequence lives in the high 40 bits so raw `seq_slot` comparisons
/// order by sequence (slot bits only tie-break, and sequences are
/// unique, so they never actually decide). 2^40 events is ~32 years of
/// simulated fig2 load; the assert turns silent wraparound into a crash.
#[inline]
fn seq_slot(seq: u64, slot: u64) -> u64 {
    assert!(
        seq < 1 << (64 - SLOT_BITS),
        "event sequence space exhausted"
    );
    debug_assert!(slot <= NO_SLOT);
    (seq << SLOT_BITS) | slot
}

/// A filed event. 24-byte header (down from 32): the sequence number
/// and cancellation slot share one word via [`seq_slot`], which packs
/// three more entries per pair of cache lines in the wheel's slot
/// vectors and the ready heap.
struct Entry<E> {
    time: SimTime,
    lane: u64,
    /// `seq << SLOT_BITS | slot`; slot is [`NO_SLOT`] when the caller
    /// kept no handle.
    seq_slot: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The cancellation slot (24-bit, [`NO_SLOT`] when handle-less).
    #[inline]
    fn slot(&self) -> u64 {
        self.seq_slot & NO_SLOT
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq_slot == other.seq_slot
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is on
        // top. Comparing the packed word is comparing sequences: the
        // sequence occupies the high bits and is unique per entry.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.lane.cmp(&self.lane))
            .then_with(|| other.seq_slot.cmp(&self.seq_slot))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy)]
struct CancelSlot {
    generation: u64,
    cancelled: bool,
}

/// A deterministic time-ordered event queue (hierarchical timing wheel).
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, row-major by level.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level bitmap of non-empty slots.
    occupancy: [u64; LEVELS],
    /// The next granule to drain; entries at granules below it live in
    /// `ready`, entries at or above it in the wheel.
    cursor: u64,
    /// Drained (and below-cursor) entries, popped in `(time, lane, seq)`
    /// order.
    ready: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Live (pushed, not fired, not cancelled) events.
    pending: usize,
    /// Generation-stamped cancellation slots; grows to the peak number of
    /// simultaneously pending *cancellable* events, never with the total
    /// pushed or cancelled.
    cancel_slots: Vec<CancelSlot>,
    free_slots: Vec<u32>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        let mut slots = Vec::new();
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        EventQueue {
            slots,
            occupancy: [0; LEVELS],
            cursor: 0,
            ready: BinaryHeap::new(),
            next_seq: 0,
            pending: 0,
            cancel_slots: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// Schedule `event` to fire at `time` on lane 0. Returns a handle that
    /// can cancel it.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        self.push_lane_handle(time, 0, event)
    }

    /// Schedule `event` at `time` on a canonical `lane`, fire-and-forget:
    /// no cancellation handle, no bookkeeping. Same-time events order by
    /// lane first, then insertion order within the lane.
    pub fn push_lane(&mut self, time: SimTime, lane: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.place(Entry {
            time,
            lane,
            seq_slot: seq_slot(seq, NO_SLOT),
            event,
        });
    }

    /// Like [`EventQueue::push_lane`], but returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn push_lane_handle(&mut self, time: SimTime, lane: u64, event: E) -> EventHandle {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.cancel_slots.len())
                    .expect("invariant: slot count bounded by NO_SLOT assert below");
                assert!(
                    u64::from(s) < NO_SLOT,
                    "cancellable-event slot space exhausted"
                );
                self.cancel_slots.push(CancelSlot {
                    generation: 0,
                    cancelled: false,
                });
                s
            }
        };
        let generation = self.cancel_slots
            [usize::try_from(slot).expect("invariant: u32 slot fits usize")]
        .generation;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.place(Entry {
            time,
            lane,
            seq_slot: seq_slot(seq, u64::from(slot)),
            event,
        });
        EventHandle { slot, generation }
    }

    /// Cancel a previously scheduled event. Cancelling an event that
    /// already fired (or was already cancelled) is a no-op and costs no
    /// memory — the handle's generation no longer matches its slot.
    pub fn cancel(&mut self, handle: EventHandle) {
        let Some(rec) = self
            .cancel_slots
            .get_mut(usize::try_from(handle.slot).expect("invariant: u32 slot fits usize"))
        else {
            return;
        };
        if rec.generation == handle.generation && !rec.cancelled {
            rec.cancelled = true;
            self.pending -= 1;
        }
    }

    /// Pop the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.settle();
        let e = self.ready.pop()?;
        self.retire(e.slot());
        self.pending -= 1;
        Some((e.time, e.event))
    }

    /// The time of the earliest pending event, skipping cancelled ones.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle();
        self.ready.peek().map(|e| e.time)
    }

    /// Pop the earliest non-cancelled event if it fires strictly before
    /// `limit`. One settle serves both the bound check and the pop,
    /// where a `peek_time` + `pop` pairing settles twice per event —
    /// this is the shard event loop's hot call.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        self.settle();
        if self.ready.peek()?.time >= limit {
            return None;
        }
        let e = self.ready.pop().expect("peeked");
        self.retire(e.slot());
        self.pending -= 1;
        Some((e.time, e.event))
    }

    /// Whether nothing would fire.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// File an entry into the wheel, or into `ready` if its granule has
    /// already been drained (late schedule below the cursor).
    fn place(&mut self, e: Entry<E>) {
        let granule = e.time.as_nanos() >> GRANULE_BITS;
        if granule < self.cursor {
            self.ready.push(e);
            return;
        }
        // The level of the highest bit where the granule differs from the
        // cursor; equal-granule entries land at level 0 in the cursor's
        // own (not yet drained) slot.
        let diff = granule ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            // lint: allow(cast) — u32 -> usize widening; value < LEVELS
            ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
        };
        debug_assert!(level < LEVELS);
        let idx = idx_of((granule >> level_shift(level)) & SLOT_MASK);
        self.slots[level * SLOTS + idx].push(e);
        self.occupancy[level] |= 1 << idx;
    }

    /// Recycle a cancellation slot after its event fired or was reaped.
    fn retire(&mut self, slot: u64) {
        if slot == NO_SLOT {
            return;
        }
        let rec = &mut self.cancel_slots[slot_of(slot)];
        rec.generation += 1;
        rec.cancelled = false;
        self.free_slots
            .push(u32::try_from(slot).expect("invariant: slot is 24-bit"));
    }

    /// Establish the pop invariant: `ready`'s top is the global earliest
    /// live event (every wheel granule ahead of every ready entry), with
    /// cancelled entries reaped off the top.
    fn settle(&mut self) {
        loop {
            while let Some(top) = self.ready.peek() {
                let slot = top.slot();
                if slot != NO_SLOT && self.cancel_slots[slot_of(slot)].cancelled {
                    let e = self.ready.pop().expect("peeked");
                    self.retire(e.slot());
                } else {
                    return;
                }
            }
            if !self.drain_next_slot() {
                return;
            }
        }
    }

    /// Advance the cursor to the next occupied slot — cascading
    /// higher-level slots down as the cursor enters them — and drain one
    /// level-0 slot into `ready`. Returns `false` when the wheel is empty.
    fn drain_next_slot(&mut self) -> bool {
        loop {
            // The lowest occupied level holds the earliest granule: level
            // l entries differ from the cursor only in granule bits
            // [6l, 6l+6), so they are strictly nearer than any higher
            // level's.
            let mut found = None;
            for (level, &occ) in self.occupancy.iter().enumerate() {
                let at = (self.cursor >> level_shift(level)) & SLOT_MASK;
                debug_assert_eq!(
                    occ & !(u64::MAX << at),
                    0,
                    "occupied slot behind the cursor"
                );
                if occ != 0 {
                    found = Some((level, u64::from(occ.trailing_zeros())));
                    break;
                }
            }
            let Some((level, idx)) = found else {
                return false;
            };
            self.occupancy[level] &= !(1 << idx);
            let mut entries = mem::take(&mut self.slots[level * SLOTS + idx_of(idx)]);
            if level == 0 {
                let granule = (self.cursor & !SLOT_MASK) | idx;
                debug_assert!(granule >= self.cursor);
                self.cursor = granule + 1;
                self.ready.extend(entries.drain(..));
                // Hand the allocation back to the slot for reuse.
                self.slots[idx_of(idx)] = entries;
                // If the increment carried across a block boundary, the
                // cursor just entered fresh higher-level slots; cascade
                // them now so new level-0 pushes into the entered block
                // cannot be drained ahead of the entries they hold. (A
                // carry that crosses the level-l boundary zeroes every
                // bit below 6l, so the entered slots are checked in one
                // low-bits scan.)
                if self.cursor & SLOT_MASK == 0 {
                    self.cascade_entered_blocks();
                }
                return true;
            }
            // Cascade: move the cursor to the slot's base granule (all
            // lower levels are provably empty up to there) and re-file
            // the entries, which now land at lower levels.
            let shift = level_shift(level);
            let span_mask = (1u64 << (shift + LEVEL_BITS)) - 1;
            let base = (self.cursor & !span_mask) | (idx << shift);
            debug_assert!(base >= self.cursor);
            self.cursor = base;
            for e in entries.drain(..) {
                self.place(e);
            }
            self.slots[level * SLOTS + idx_of(idx)] = entries;
        }
    }

    /// Cascade the slots the cursor sits at the base of, lowest level
    /// first. Called whenever the cursor lands on a block boundary, this
    /// maintains the invariant that the slot covering the cursor at every
    /// level `l ≥ 1` is empty — which is what makes "lowest occupied
    /// level holds the earliest granule" true and keeps level placement
    /// of later pushes consistent with entries filed before the cursor
    /// entered the block.
    fn cascade_entered_blocks(&mut self) {
        for level in 1..LEVELS {
            let shift = level_shift(level);
            if self.cursor & ((1u64 << shift) - 1) != 0 {
                break;
            }
            let idx = idx_of((self.cursor >> shift) & SLOT_MASK);
            if self.occupancy[level] & (1 << idx) == 0 {
                continue;
            }
            self.occupancy[level] &= !(1 << idx);
            let mut entries = mem::take(&mut self.slots[level * SLOTS + idx]);
            for e in entries.drain(..) {
                debug_assert!(e.time.as_nanos() >> GRANULE_BITS >= self.cursor);
                self.place(e);
            }
            self.slots[level * SLOTS + idx] = entries;
        }
    }
}

pub mod reference {
    //! The pre-wheel event queue: a binary heap with tombstone
    //! cancellation, kept verbatim as a differential-testing oracle (see
    //! `tests/event_queue_props.rs`) and as the baseline the
    //! `engine_throughput` bench measures the wheel against. Known wart,
    //! deliberately preserved: cancelling a handle whose event already
    //! fired leaves a tombstone in the `HashSet` forever.

    use super::Ordering;
    use crate::time::SimTime;
    use std::collections::BinaryHeap;

    /// Handle to an event scheduled on a [`HeapQueue`].
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct HeapHandle(u64);

    struct Scheduled<E> {
        time: SimTime,
        lane: u64,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.seq == other.seq
        }
    }
    impl<E> Eq for Scheduled<E> {}

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.lane.cmp(&self.lane))
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }
    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The pre-wheel `(time, lane, seq)` binary-heap queue.
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
        cancelled: std::collections::HashSet<u64>,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        /// An empty queue.
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                cancelled: std::collections::HashSet::new(),
            }
        }

        /// Schedule `event` at `time` on a canonical `lane`.
        pub fn push_lane(&mut self, time: SimTime, lane: u64, event: E) -> HeapHandle {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled {
                time,
                lane,
                seq,
                event,
            });
            HeapHandle(seq)
        }

        /// Cancel a scheduled event (tombstone; leaks if already fired).
        pub fn cancel(&mut self, handle: HeapHandle) {
            self.cancelled.insert(handle.0);
        }

        /// Pop the earliest non-cancelled event.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(s) = self.heap.pop() {
                if self.cancelled.remove(&s.seq) {
                    continue;
                }
                return Some((s.time, s.event));
            }
            None
        }

        /// The time of the earliest pending event.
        pub fn peek_time(&mut self) -> Option<SimTime> {
            while let Some(s) = self.heap.peek() {
                if self.cancelled.contains(&s.seq) {
                    let s = self.heap.pop().expect("peeked");
                    self.cancelled.remove(&s.seq);
                    continue;
                }
                return Some(s.time);
            }
            None
        }

        /// Number of pending (non-cancelled) events. Saturating: a
        /// cancel-after-fire tombstone can outnumber heap entries (the
        /// preserved wart), which must not underflow here.
        pub fn len(&self) -> usize {
            self.heap.len().saturating_sub(self.cancelled.len())
        }

        /// Whether nothing would fire.
        pub fn is_empty(&self) -> bool {
            self.heap.len() <= self.cancelled.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "b");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().expect("invariant: event still pending").1, i);
        }
    }

    #[test]
    fn lanes_order_same_time_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push_lane(t, 9, "lane9");
        q.push_lane(t, 2, "lane2-first");
        q.push_lane(t, 5, "lane5");
        q.push_lane(t, 2, "lane2-second");
        // Earlier time always wins over lane.
        q.push_lane(SimTime::from_secs(2), 0, "later");
        assert_eq!(
            q.pop().expect("invariant: event still pending").1,
            "lane2-first"
        );
        assert_eq!(
            q.pop().expect("invariant: event still pending").1,
            "lane2-second"
        );
        assert_eq!(q.pop().expect("invariant: event still pending").1, "lane5");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "lane9");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "later");
    }

    #[test]
    fn pop_before_respects_the_bound() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        let h = q.push(SimTime::from_secs(2), "b");
        q.push(SimTime::from_secs(3), "c");
        q.cancel(h);
        assert_eq!(q.pop_before(SimTime::from_secs(1)), None, "strict bound");
        assert_eq!(
            q.pop_before(SimTime::from_secs(2))
                .expect("invariant: \"a\" is below the bound")
                .1,
            "a"
        );
        // The cancelled "b" is skipped; "c" sits at the bound.
        assert_eq!(q.pop_before(SimTime::from_secs(3)), None);
        assert_eq!(
            q.pop_before(SimTime::MAX)
                .expect("invariant: \"c\" still pending")
                .1,
            "c"
        );
        assert_eq!(q.pop_before(SimTime::MAX), None);
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.cancel(h1);
        assert_eq!(q.pop().expect("invariant: event still pending").1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "a");
        q.cancel(h);
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "b");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(5), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::ZERO, 1);
        let _h2 = q.push(SimTime::ZERO + SimDuration::from_secs(1), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_when_all_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::ZERO, ());
        q.cancel(h);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_events_cross_every_level() {
        // One event per time scale, pushed in reverse order: exercises
        // placement at every wheel level and the cascade path down.
        let mut q = EventQueue::new();
        // 2^60 ns reaches granule bit 50 → the top wheel level (8).
        let times: Vec<u64> = (0..16).map(|i| 1u64 << (4 * i)).collect();
        for (i, &t) in times.iter().enumerate().rev() {
            q.push_lane(SimTime::from_nanos(t), 0, i);
        }
        for (i, &t) in times.iter().enumerate() {
            let (at, got) = q.pop().expect("invariant: event still pending");
            assert_eq!((at, got), (SimTime::from_nanos(t), i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_granule_events_sort_by_full_key() {
        // Three events inside one ~1 µs granule: granularity must not
        // coarsen the (time, lane, seq) order.
        let mut q = EventQueue::new();
        q.push_lane(SimTime::from_nanos(900), 5, "b");
        q.push_lane(SimTime::from_nanos(1000), 0, "c");
        q.push_lane(SimTime::from_nanos(900), 1, "a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "b");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "c");
    }

    #[test]
    fn late_push_below_cursor_still_orders() {
        // After draining past a granule, a push aimed below the cursor
        // must still pop (immediately, and in key order).
        let mut q = EventQueue::new();
        q.push_lane(SimTime::from_nanos(10_000_000), 0, "far");
        q.push_lane(SimTime::from_nanos(100), 0, "early");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "early");
        // Cursor is now past t=100ns; schedule below it.
        q.push_lane(SimTime::from_nanos(200), 7, "late-b");
        q.push_lane(SimTime::from_nanos(200), 3, "late-a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "late-a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "late-b");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "far");
    }

    #[test]
    fn entry_header_is_cache_packed() {
        // The seq/slot packing exists to shrink the per-entry header
        // from 32 to 24 bytes; a regression here silently costs a third
        // more wheel and ready-heap memory traffic.
        assert_eq!(mem::size_of::<Entry<()>>(), 24);
        assert_eq!(mem::size_of::<Entry<u64>>(), 32);
    }

    #[test]
    fn packed_seq_orders_across_slot_values() {
        // An earlier push with a high slot must still pop before a later
        // push with a low slot at the same (time, lane): the sequence
        // occupies the high bits of the packed word.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        // Burn slots so the live ones differ: handle-less (all slot bits
        // set) interleaved with slot 0.
        q.push_lane(t, 3, "no-handle-first");
        let h = q.push_lane_handle(t, 3, "slot0-second");
        q.push_lane(t, 3, "no-handle-third");
        assert_eq!(
            q.pop().expect("invariant: event still pending").1,
            "no-handle-first"
        );
        assert_eq!(
            q.pop().expect("invariant: event still pending").1,
            "slot0-second"
        );
        assert_eq!(
            q.pop().expect("invariant: event still pending").1,
            "no-handle-third"
        );
        q.cancel(h); // stale; exercises slot extraction post-fire
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_fired_handles_does_not_grow_bookkeeping() {
        // Regression for the pre-wheel tombstone leak: cancel N handles
        // after their events fired and assert the queue's bookkeeping
        // stays O(pending), not O(cancelled-ever).
        let mut q = EventQueue::new();
        let mut stale = Vec::new();
        for i in 0..10_000u64 {
            let h = q.push_lane_handle(SimTime::from_nanos(i * 50), 0, i);
            assert_eq!(q.pop().expect("invariant: event still pending").1, i);
            stale.push(h);
        }
        for h in stale {
            q.cancel(h); // all no-ops: every event already fired
        }
        assert!(q.is_empty());
        // One cancellable event was ever pending at a time, so one slot
        // suffices forever; the stale cancels must not have re-marked it.
        assert_eq!(q.cancel_slots.len(), 1, "slot slab grew with fired handles");
        assert_eq!(q.free_slots.len(), 1);
        assert!(
            !q.cancel_slots[0].cancelled,
            "stale cancel marked a recycled slot"
        );
        // And the recycled slot still works for a live cancellation.
        let h = q.push_lane_handle(SimTime::from_secs(1), 0, 42);
        q.cancel(h);
        assert!(q.pop().is_none());
        assert_eq!(q.cancel_slots.len(), 1);
    }

    #[test]
    fn interleaved_pushes_pops_and_cancels_match_reference() {
        // A deterministic mixed workload against the reference heap
        // (the proptest in tests/event_queue_props.rs randomizes this).
        use super::reference::HeapQueue;
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut wheel_handles = Vec::new();
        let mut heap_handles = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut next_rand = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..50_000u64 {
            let r = next_rand();
            let t = SimTime::from_nanos((r >> 16) % (1 << ((r % 36) + 8)));
            let lane = r % 5;
            match r % 10 {
                0..=5 => {
                    wheel_handles.push(wheel.push_lane_handle(t, lane, i));
                    heap_handles.push(heap.push_lane(t, lane, i));
                }
                6 | 7 => {
                    assert_eq!(wheel.pop(), heap.pop(), "pop #{i} diverged");
                }
                8 => {
                    assert_eq!(wheel.peek_time(), heap.peek_time());
                }
                _ => {
                    if !wheel_handles.is_empty() {
                        let k = (r as usize / 7) % wheel_handles.len();
                        wheel.cancel(wheel_handles[k]);
                        heap.cancel(heap_handles[k]);
                    }
                }
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reference_heap_len_survives_cancel_after_fire() {
        // The oracle's preserved wart is a leaked tombstone, not a
        // panic: once cancel-after-fire makes `cancelled` outnumber the
        // heap, `len`/`is_empty` must saturate instead of underflowing.
        use super::reference::HeapQueue;
        let mut q = HeapQueue::new();
        let h = q.push_lane(SimTime::from_secs(1), 0, "a");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "a");
        q.cancel(h); // fired already: tombstone leaks
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        q.push_lane(SimTime::from_secs(2), 0, "b");
        assert_eq!(q.len(), 0, "leaked tombstone undercounts (known wart)");
        assert_eq!(q.pop().expect("invariant: event still pending").1, "b");
    }
}
