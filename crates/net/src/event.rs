//! The simulator's event queue.
//!
//! A binary heap keyed on `(time, lane, sequence)`. The *lane* is a
//! caller-chosen canonical key (the sharded engine uses the link, node,
//! or flow an event belongs to) that totally orders same-time events the
//! same way no matter which shard's queue they sit in — the property the
//! split-population engine needs for `--shards K`-invariant results. The
//! sequence number breaks remaining ties in insertion order, which makes
//! runs deterministic: two events scheduled for the same instant and lane
//! always fire in the order they were scheduled, regardless of heap
//! internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Scheduled<E> {
    time: SimTime,
    lane: u64,
    seq: u64,
    cancelled_check: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.lane == other.lane && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.lane.cmp(&self.lane))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedule `event` to fire at `time` on lane 0. Returns a handle that
    /// can cancel it.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        self.push_lane(time, 0, event)
    }

    /// Schedule `event` at `time` on a canonical `lane`. Same-time events
    /// order by lane first, then insertion order within the lane.
    pub fn push_lane(&mut self, time: SimTime, lane: u64, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            lane,
            seq,
            cancelled_check: seq,
            event,
        });
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Pop the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.cancelled_check) {
                continue;
            }
            return Some((s.time, s.event));
        }
        None
    }

    /// The time of the earliest pending event, skipping cancelled ones.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.cancelled_check) {
                let s = self.heap.pop().expect("peeked");
                self.cancelled.remove(&s.cancelled_check);
                continue;
            }
            return Some(s.time);
        }
        None
    }

    /// Whether nothing would fire.
    pub fn is_empty(&self) -> bool {
        // Cancelled-but-unpopped events may remain; treat the queue as empty
        // only when genuinely nothing would fire.
        self.heap.len() == self.cancelled.len()
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn lanes_order_same_time_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push_lane(t, 9, "lane9");
        q.push_lane(t, 2, "lane2-first");
        q.push_lane(t, 5, "lane5");
        q.push_lane(t, 2, "lane2-second");
        // Earlier time always wins over lane.
        q.push_lane(SimTime::from_secs(2), 0, "later");
        assert_eq!(q.pop().unwrap().1, "lane2-first");
        assert_eq!(q.pop().unwrap().1, "lane2-second");
        assert_eq!(q.pop().unwrap().1, "lane5");
        assert_eq!(q.pop().unwrap().1, "lane9");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.cancel(h1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.cancel(h);
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(5), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::ZERO, 1);
        let _h2 = q.push(SimTime::ZERO + SimDuration::from_secs(1), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_when_all_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::ZERO, ());
        q.cancel(h);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
