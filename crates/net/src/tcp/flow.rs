//! The flow state machine. See the module docs in [`crate::tcp`].

use crate::packet::{FlowId, NodeId};
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Congestion-control algorithm for a flow.
///
/// Reno is the period-correct default (the paper predates CUBIC's
/// deployment); CUBIC is provided for ablations on modern-Internet
/// payment dynamics, mirroring smoltcp's optional Reno/CUBIC support.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CongestionControl {
    /// NewReno-style AIMD (default).
    #[default]
    Reno,
    /// CUBIC (RFC 9438 shape): window grows as a cubic of time since the
    /// last congestion event, with β = 0.7 multiplicative decrease.
    Cubic,
}

/// Transport configuration for one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Maximum segment size: payload bytes per data packet.
    pub mss: u32,
    /// Wire overhead added to each data segment (IP + TCP headers).
    pub header_bytes: u32,
    /// Wire size of a pure ACK.
    pub ack_bytes: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segments: u32,
    /// Congestion window ceiling in bytes (stands in for the peer's
    /// receive window).
    pub max_cwnd_bytes: u64,
    /// Retransmission timeout before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Lower bound on the RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the RTO (with backoff applied).
    pub max_rto: SimDuration,
    /// Congestion-control algorithm.
    pub cc: CongestionControl,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            mss: 1460,
            header_bytes: 40,
            ack_bytes: 40,
            init_cwnd_segments: 2,
            max_cwnd_bytes: 1 << 20,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(16),
            cc: CongestionControl::Reno,
        }
    }
}

/// Counters for one flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowStats {
    /// Data segments sent, including retransmissions.
    pub segments_sent: u64,
    /// Data segments retransmitted (fast retransmit or timeout).
    pub segments_retransmitted: u64,
    /// Fast-retransmit episodes entered.
    pub fast_retransmits: u64,
    /// Retransmission timer expirations.
    pub rto_events: u64,
    /// Pure ACKs emitted by the receiver side.
    pub acks_sent: u64,
    /// Largest congestion window observed, in bytes.
    pub max_cwnd: u64,
}

/// What the world must do in response to a flow event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowAction {
    /// Transmit stream bytes `[offset, offset+len)` from `src` toward `dst`.
    SendData {
        /// First stream byte of the segment.
        offset: u64,
        /// Segment payload length.
        len: u32,
    },
    /// Transmit a cumulative ACK from `dst` toward `src`.
    SendAck {
        /// One past the highest in-order byte received.
        cum: u64,
    },
    /// (Re)arm the retransmission timer to fire after this long.
    ArmRto(SimDuration),
    /// Cancel the retransmission timer.
    CancelRto,
    /// The last byte of the message with this tag arrived in order:
    /// deliver it to the receiving application.
    Deliver {
        /// The tag the sender attached to the message.
        tag: u64,
    },
    /// Every byte written so far has been acknowledged: tell the sending
    /// application its buffer drained.
    Drained,
}

/// One direction of a connection. See module docs.
#[derive(Debug)]
pub struct Flow {
    /// Flow identifier.
    pub id: FlowId,
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Transport parameters.
    pub cfg: FlowConfig,

    // ---- sender state ----
    /// Lowest unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    /// Total bytes the application has written.
    write_limit: u64,
    /// Congestion window, bytes. f64 so congestion-avoidance fractions
    /// accumulate.
    cwnd: f64,
    /// Slow-start threshold, bytes.
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    /// On entering recovery, snd_nxt at that moment; recovery ends when
    /// cumulative ACK reaches it.
    recover: u64,
    /// Smoothed RTT (seconds), RFC 6298.
    srtt: Option<f64>,
    rttvar: f64,
    /// Current retransmission timeout (with backoff applied).
    rto: SimDuration,
    /// Outstanding RTT measurement: (segment end byte, send time).
    rtt_probe: Option<(u64, SimTime)>,
    /// Whether we believe the world has an armed RTO timer for us.
    rto_armed: bool,

    // ---- CUBIC state (unused under Reno) ----
    /// Window size (bytes) just before the last congestion event.
    cubic_w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    cubic_epoch: Option<SimTime>,

    // ---- receiver state ----
    /// Next in-order byte expected.
    rcv_nxt: u64,
    /// Out-of-order ranges received: start -> end (coalesced).
    ooo: BTreeMap<u64, u64>,

    // ---- framing ----
    /// Message boundaries in write order: (end offset, tag).
    boundaries: VecDeque<(u64, u64)>,

    // ---- lifecycle ----
    aborted: bool,
    drained_notified: bool,

    /// Counters.
    pub stats: FlowStats,
}

impl Flow {
    /// A fresh flow in the initial (slow-start) state.
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, cfg: FlowConfig) -> Self {
        let cwnd = (cfg.init_cwnd_segments as f64) * cfg.mss as f64;
        Flow {
            id,
            src,
            dst,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            write_limit: 0,
            cwnd,
            ssthresh: cfg.max_cwnd_bytes as f64,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.initial_rto,
            rtt_probe: None,
            rto_armed: false,
            cubic_w_max: 0.0,
            cubic_epoch: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            boundaries: VecDeque::new(),
            aborted: false,
            drained_notified: false,
            stats: FlowStats::default(),
        }
    }

    // ---------------------------------------------------------------- inputs

    /// The application writes a message of `bytes` bytes tagged `tag`.
    pub fn write(&mut self, now: SimTime, bytes: u64, tag: u64, out: &mut Vec<FlowAction>) {
        assert!(bytes > 0, "zero-length messages are not supported");
        if self.aborted {
            return;
        }
        self.write_limit += bytes;
        self.boundaries.push_back((self.write_limit, tag));
        self.drained_notified = false;
        self.pump(now, out);
        self.update_timer(out);
    }

    /// A cumulative ACK for everything below `cum` arrived at the sender.
    pub fn on_ack(&mut self, now: SimTime, cum: u64, out: &mut Vec<FlowAction>) {
        if self.aborted {
            return;
        }
        let cum = cum.min(self.snd_nxt);
        if cum > self.snd_una {
            let acked = cum - self.snd_una;
            self.snd_una = cum;
            self.dup_acks = 0;

            // Drop fully-acked message boundaries: on a split sender half
            // nothing ever consumes them (delivery runs on the receiver
            // half), and on a combined instance delivery has already
            // popped everything at or below the acked watermark, so this
            // only bounds memory.
            while self
                .boundaries
                .front()
                .is_some_and(|&(end, _)| end <= self.snd_una)
            {
                self.boundaries.pop_front();
            }

            // RTT sample (Karn's rule: the probe is invalidated whenever the
            // probed range is retransmitted).
            if let Some((end, sent)) = self.rtt_probe {
                if cum >= end {
                    if let Some(sample) = now.checked_since(sent) {
                        self.take_rtt_sample(sample.as_secs_f64());
                    }
                    self.rtt_probe = None;
                }
            }

            if self.in_recovery {
                if cum >= self.recover {
                    // Full recovery: deflate to ssthresh.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh.max(self.cfg.mss as f64);
                } else {
                    // NewReno partial ACK: retransmit the next hole and
                    // deflate by the amount acked.
                    self.retransmit_head(out);
                    self.cwnd =
                        (self.cwnd - acked as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start: one MSS per ACK (bounded by bytes acked).
                self.cwnd += (acked as f64).min(self.cfg.mss as f64);
            } else {
                match self.cfg.cc {
                    CongestionControl::Reno => {
                        // Congestion avoidance: ~one MSS per RTT.
                        self.cwnd += self.cfg.mss as f64 * self.cfg.mss as f64 / self.cwnd;
                    }
                    CongestionControl::Cubic => self.cubic_grow(now),
                }
            }
            self.cap_cwnd();
            self.pump(now, out);
            self.update_timer(out);
            self.maybe_drained(out);
        } else if cum == self.snd_una && self.snd_una < self.snd_nxt {
            // Duplicate ACK with data outstanding.
            self.dup_acks += 1;
            if self.in_recovery {
                // Inflate during recovery so new data keeps flowing.
                self.cwnd += self.cfg.mss as f64;
                self.cap_cwnd();
                self.pump(now, out);
            } else if self.dup_acks == 3 {
                self.enter_fast_retransmit(now, out);
            }
        }
    }

    /// The retransmission timer fired at the sender.
    pub fn on_rto(&mut self, _now: SimTime, out: &mut Vec<FlowAction>) {
        self.rto_armed = false;
        if self.aborted || self.snd_una == self.snd_nxt {
            return;
        }
        self.stats.rto_events += 1;
        let flight = (self.snd_nxt - self.snd_una) as f64;
        self.ssthresh = match self.cfg.cc {
            CongestionControl::Reno => (flight / 2.0).max(2.0 * self.cfg.mss as f64),
            CongestionControl::Cubic => (self.cwnd * 0.7).max(2.0 * self.cfg.mss as f64),
        };
        self.on_congestion_event();
        self.cwnd = self.cfg.mss as f64;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.rtt_probe = None; // Karn: no sampling across a timeout
                               // Exponential backoff, bounded.
        let doubled = SimDuration::from_nanos(self.rto.as_nanos().saturating_mul(2));
        self.rto = doubled.min(self.cfg.max_rto);
        // Go-back-N: rewind and resend from the hole.
        self.snd_nxt = self.snd_una;
        self.pump_retransmission(out);
        self.update_timer(out);
    }

    /// Record a message boundary on the receiver half of a split flow:
    /// the stream byte range ending at `end` completes the message tagged
    /// `tag`. The sharded engine replicates the sender's [`Flow::write`]
    /// boundaries to the receiver's shard through this (boundary records
    /// travel at the path's propagation delay, so they always precede the
    /// data bytes they frame).
    pub fn note_boundary(&mut self, end: u64, tag: u64) {
        self.boundaries.push_back((end, tag));
    }

    /// A data segment `[offset, offset+len)` arrived at the receiver.
    pub fn on_data(&mut self, _now: SimTime, offset: u64, len: u32, out: &mut Vec<FlowAction>) {
        if self.aborted {
            return;
        }
        let end = offset + u64::from(len);
        if end > self.rcv_nxt {
            if offset <= self.rcv_nxt && self.ooo.is_empty() {
                // In-order data with nothing buffered — the steady state
                // on a loss-free path. Skip the out-of-order machinery.
                self.rcv_nxt = end;
                self.deliver_boundaries(out);
            } else {
                self.insert_ooo(offset.max(self.rcv_nxt), end);
                self.advance_rcv(out);
            }
        }
        self.stats.acks_sent += 1;
        out.push(FlowAction::SendAck { cum: self.rcv_nxt });
    }

    /// Abort the flow from either endpoint: stop transmitting, ignore
    /// stragglers. Irreversible.
    pub fn abort(&mut self, out: &mut Vec<FlowAction>) {
        if self.aborted {
            return;
        }
        self.aborted = true;
        if self.rto_armed {
            self.rto_armed = false;
            out.push(FlowAction::CancelRto);
        }
    }

    // -------------------------------------------------------------- queries

    /// Whether the flow was aborted by either endpoint.
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// Bytes delivered in order to the receiving application.
    pub fn delivered_bytes(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes acknowledged back to the sender.
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// Bytes the application has written.
    pub fn written_bytes(&self) -> u64 {
        self.write_limit
    }

    /// Bytes in flight (sent but unacknowledged).
    pub fn flight_bytes(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        // lint: allow(cast) — f64 -> u64 saturates; cwnd is clamped to [mss, cap]
        self.cwnd as u64
    }

    /// Current smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn current_rto(&self) -> SimDuration {
        self.rto
    }

    /// True once every written byte has been acknowledged.
    pub fn is_drained(&self) -> bool {
        self.snd_una == self.write_limit
    }

    // ------------------------------------------------------------ internals

    fn cap_cwnd(&mut self) {
        let cap = self.cfg.max_cwnd_bytes as f64;
        if self.cwnd > cap {
            self.cwnd = cap;
        }
        // lint: allow(cast) — f64 -> u64 saturates; cwnd is clamped to [mss, cap]
        self.stats.max_cwnd = self.stats.max_cwnd.max(self.cwnd as u64);
    }

    /// Send as much new data as the window allows.
    fn pump(&mut self, now: SimTime, out: &mut Vec<FlowAction>) {
        while self.snd_nxt < self.write_limit {
            let flight = (self.snd_nxt - self.snd_una) as f64;
            if flight + 1.0 > self.cwnd {
                break;
            }
            let len = u32::try_from((self.write_limit - self.snd_nxt).min(u64::from(self.cfg.mss)))
                .expect("invariant: min-clamped by mss");
            out.push(FlowAction::SendData {
                offset: self.snd_nxt,
                len,
            });
            self.stats.segments_sent += 1;
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt + u64::from(len), now));
            }
            self.snd_nxt += u64::from(len);
        }
    }

    /// After a timeout: resend one window starting at the hole.
    fn pump_retransmission(&mut self, out: &mut Vec<FlowAction>) {
        // snd_nxt was rewound to snd_una; everything we now emit below the
        // old high-water mark is a retransmission.
        let mut sent = 0f64;
        while self.snd_nxt < self.write_limit && sent + 1.0 <= self.cwnd {
            let len = u32::try_from((self.write_limit - self.snd_nxt).min(u64::from(self.cfg.mss)))
                .expect("invariant: min-clamped by mss");
            out.push(FlowAction::SendData {
                offset: self.snd_nxt,
                len,
            });
            self.stats.segments_sent += 1;
            self.stats.segments_retransmitted += 1;
            self.snd_nxt += u64::from(len);
            sent += len as f64;
        }
    }

    fn enter_fast_retransmit(&mut self, _now: SimTime, out: &mut Vec<FlowAction>) {
        let flight = (self.snd_nxt - self.snd_una) as f64;
        self.ssthresh = match self.cfg.cc {
            CongestionControl::Reno => (flight / 2.0).max(2.0 * self.cfg.mss as f64),
            CongestionControl::Cubic => (self.cwnd * 0.7).max(2.0 * self.cfg.mss as f64),
        };
        self.on_congestion_event();
        self.retransmit_head(out);
        self.cwnd = self.ssthresh + 3.0 * self.cfg.mss as f64;
        self.cap_cwnd();
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        self.rtt_probe = None;
        self.stats.fast_retransmits += 1;
    }

    /// Retransmit the first unacknowledged segment.
    fn retransmit_head(&mut self, out: &mut Vec<FlowAction>) {
        let len = u32::try_from((self.write_limit - self.snd_una).min(u64::from(self.cfg.mss)))
            .expect("invariant: min-clamped by mss");
        if len == 0 {
            return;
        }
        out.push(FlowAction::SendData {
            offset: self.snd_una,
            len,
        });
        self.stats.segments_sent += 1;
        self.stats.segments_retransmitted += 1;
        self.rtt_probe = None;
    }

    /// Record a congestion event for CUBIC: remember the window and start
    /// a fresh cubic epoch.
    fn on_congestion_event(&mut self) {
        if self.cfg.cc == CongestionControl::Cubic {
            self.cubic_w_max = self.cwnd;
            self.cubic_epoch = None; // restarted on the next CA ACK
        }
    }

    /// CUBIC window growth (RFC 9438 shape, in MSS/second units):
    /// `W(t) = C·(t − K)³ + W_max`, `K = cbrt(W_max·(1−β)/C)` with
    /// β = 0.7 and C = 0.4. The window steps toward the target by at most
    /// one MSS per ACK.
    fn cubic_grow(&mut self, now: SimTime) {
        const C: f64 = 0.4; // MSS/s³
        const BETA: f64 = 0.7;
        let mss = self.cfg.mss as f64;
        let epoch = *self.cubic_epoch.get_or_insert(now);
        let t = now.saturating_since(epoch).as_secs_f64();
        let w_max = (self.cubic_w_max / mss).max(2.0); // in MSS
        let k = (w_max * (1.0 - BETA) / C).cbrt();
        let target = (C * (t - k).powi(3) + w_max) * mss; // bytes
        if target > self.cwnd {
            // Move toward the cubic curve, at most one MSS per ACK.
            let step = ((target - self.cwnd) / self.cwnd) * mss;
            self.cwnd += step.min(mss);
        } else {
            // TCP-friendly floor: creep like Reno so CUBIC never does
            // worse than AIMD in its concave region.
            self.cwnd += 0.25 * mss * mss / self.cwnd;
        }
    }

    fn take_rtt_sample(&mut self, r: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto = self.srtt.expect("just set") + (4.0 * self.rttvar).max(0.001);
        self.rto = SimDuration::from_secs_f64(rto)
            .max(self.cfg.min_rto)
            .min(self.cfg.max_rto);
    }

    /// Keep the RTO timer armed exactly when data is outstanding.
    fn update_timer(&mut self, out: &mut Vec<FlowAction>) {
        let want = self.snd_una < self.snd_nxt && !self.aborted;
        if want {
            // Restart on every ACK that advances, and on new transmissions.
            out.push(FlowAction::ArmRto(self.rto));
            self.rto_armed = true;
        } else if self.rto_armed {
            out.push(FlowAction::CancelRto);
            self.rto_armed = false;
        }
    }

    fn maybe_drained(&mut self, out: &mut Vec<FlowAction>) {
        if self.snd_una == self.write_limit && !self.drained_notified && self.write_limit > 0 {
            self.drained_notified = true;
            out.push(FlowAction::Drained);
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Coalesce with overlapping or adjacent ranges, one at a time
        // (no scratch allocation; overlaps are rare and few).
        while let Some(s) = self
            .ooo
            .range(..=new_end)
            .find(|&(_, &e)| e >= new_start)
            .map(|(&s, _)| s)
        {
            let e = self.ooo.remove(&s).expect("present");
            new_start = new_start.min(s);
            new_end = new_end.max(e);
        }
        self.ooo.insert(new_start, new_end);
    }

    fn advance_rcv(&mut self, out: &mut Vec<FlowAction>) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
        self.deliver_boundaries(out);
    }

    fn deliver_boundaries(&mut self, out: &mut Vec<FlowAction>) {
        while let Some(&(end, tag)) = self.boundaries.front() {
            if end > self.rcv_nxt {
                break;
            }
            self.boundaries.pop_front();
            out.push(FlowAction::Deliver { tag });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1460;

    fn flow() -> Flow {
        Flow::new(FlowId(0), NodeId(0), NodeId(1), FlowConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// Collect the data segments from an action list.
    fn datas(out: &[FlowAction]) -> Vec<(u64, u32)> {
        out.iter()
            .filter_map(|a| match a {
                FlowAction::SendData { offset, len } => Some((*offset, *len)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_write_respects_init_cwnd() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 10 * MSS, 7, &mut out);
        let d = datas(&out);
        assert_eq!(d.len(), 2, "init cwnd is 2 segments");
        assert_eq!(d[0], (0, MSS as u32));
        assert_eq!(d[1], (MSS, MSS as u32));
        assert!(out.contains(&FlowAction::ArmRto(f.current_rto())));
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 100 * MSS, 1, &mut out);
        assert_eq!(datas(&out).len(), 2);
        out.clear();
        // ACK both segments: cwnd 2 -> 4, so 4 more segments flow.
        f.on_ack(t(10), MSS, &mut out);
        f.on_ack(t(10), 2 * MSS, &mut out);
        assert_eq!(datas(&out).len(), 4);
    }

    #[test]
    fn receiver_delivers_in_order_message() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 2 * MSS, 42, &mut out);
        out.clear();
        f.on_data(t(5), 0, MSS as u32, &mut out);
        assert!(!out.iter().any(|a| matches!(a, FlowAction::Deliver { .. })));
        assert!(out.contains(&FlowAction::SendAck { cum: MSS }));
        out.clear();
        f.on_data(t(6), MSS, MSS as u32, &mut out);
        assert!(out.contains(&FlowAction::Deliver { tag: 42 }));
        assert!(out.contains(&FlowAction::SendAck { cum: 2 * MSS }));
        assert_eq!(f.delivered_bytes(), 2 * MSS);
    }

    #[test]
    fn out_of_order_data_is_reassembled() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 3 * MSS, 9, &mut out);
        out.clear();
        // Segment 2 arrives first: duplicate ACK for 0.
        f.on_data(t(5), MSS, MSS as u32, &mut out);
        assert!(out.contains(&FlowAction::SendAck { cum: 0 }));
        out.clear();
        f.on_data(t(6), 0, MSS as u32, &mut out);
        // Both now in order.
        assert!(out.contains(&FlowAction::SendAck { cum: 2 * MSS }));
        out.clear();
        f.on_data(t(7), 2 * MSS, MSS as u32, &mut out);
        assert!(out.contains(&FlowAction::Deliver { tag: 9 }));
    }

    #[test]
    fn duplicate_data_reacked_not_redelivered() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), MSS, 5, &mut out);
        out.clear();
        f.on_data(t(5), 0, MSS as u32, &mut out);
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, FlowAction::Deliver { .. }))
                .count(),
            1
        );
        out.clear();
        f.on_data(t(6), 0, MSS as u32, &mut out);
        assert!(out.contains(&FlowAction::SendAck { cum: MSS }));
        assert!(!out.iter().any(|a| matches!(a, FlowAction::Deliver { .. })));
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 20 * MSS, 1, &mut out);
        // Grow the window a bit first.
        f.on_ack(t(10), MSS, &mut out);
        f.on_ack(t(11), 2 * MSS, &mut out);
        out.clear();
        // Now dup-ACK three times at 2*MSS.
        f.on_ack(t(20), 2 * MSS, &mut out);
        f.on_ack(t(21), 2 * MSS, &mut out);
        assert_eq!(datas(&out).len(), 0);
        f.on_ack(t(22), 2 * MSS, &mut out);
        let d = datas(&out);
        assert_eq!(d.len(), 1, "exactly the head segment is retransmitted");
        assert_eq!(d[0].0, 2 * MSS);
        assert_eq!(f.stats.fast_retransmits, 1);
        assert_eq!(f.stats.segments_retransmitted, 1);
    }

    #[test]
    fn recovery_exits_on_full_ack_and_deflates() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 40 * MSS, 1, &mut out);
        for i in 1..=8u64 {
            f.on_ack(t(i), i * MSS, &mut out);
        }
        let cwnd_before = f.cwnd_bytes();
        out.clear();
        for _ in 0..3 {
            f.on_ack(t(50), 8 * MSS, &mut out);
        }
        assert!(f.cwnd_bytes() < cwnd_before + 4 * MSS);
        let recover_point = 8 * MSS + f.flight_bytes();
        // Ack everything outstanding: recovery ends, cwnd = ssthresh.
        out.clear();
        f.on_ack(t(60), recover_point, &mut out);
        assert!(!f.in_recovery);
        assert!((f.cwnd - f.ssthresh).abs() < 1.0 + MSS as f64);
    }

    #[test]
    fn rto_backs_off_and_goes_back_n() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 10 * MSS, 1, &mut out);
        let rto0 = f.current_rto();
        out.clear();
        f.on_rto(t(1000), &mut out);
        let d = datas(&out);
        assert_eq!(d.len(), 1, "cwnd collapses to 1 MSS");
        assert_eq!(d[0].0, 0, "retransmission starts at snd_una");
        assert_eq!(f.current_rto(), rto0 * 2);
        assert_eq!(f.stats.rto_events, 1);
        out.clear();
        f.on_rto(t(3000), &mut out);
        assert_eq!(f.current_rto(), rto0 * 4);
        // Backoff is bounded.
        for i in 0..20 {
            f.on_rto(t(4000 + i), &mut out);
        }
        assert_eq!(f.current_rto(), FlowConfig::default().max_rto);
    }

    #[test]
    fn rtt_sample_sets_rto() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), MSS, 1, &mut out);
        out.clear();
        f.on_ack(t(100), MSS, &mut out); // 100 ms RTT
        let srtt = f.srtt().expect("sampled");
        assert!((srtt - 0.1).abs() < 1e-9);
        // RTO = srtt + max(4*rttvar, 1ms) = 0.1 + 0.2 = 0.3 s.
        assert_eq!(f.current_rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn min_rto_respected() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), MSS, 1, &mut out);
        out.clear();
        f.on_ack(t(1), MSS, &mut out); // 1 ms RTT
        assert_eq!(f.current_rto(), FlowConfig::default().min_rto);
    }

    #[test]
    fn drained_fires_once() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), MSS, 1, &mut out);
        out.clear();
        f.on_ack(t(10), MSS, &mut out);
        assert!(out.contains(&FlowAction::Drained));
        assert!(out.contains(&FlowAction::CancelRto));
        assert!(f.is_drained());
        out.clear();
        f.on_ack(t(11), MSS, &mut out);
        assert!(!out.contains(&FlowAction::Drained));
        // A new write re-arms the whole machinery.
        f.write(t(20), MSS, 2, &mut out);
        out.clear();
        f.on_ack(t(30), 2 * MSS, &mut out);
        assert!(out.contains(&FlowAction::Drained));
    }

    #[test]
    fn abort_silences_everything() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 10 * MSS, 1, &mut out);
        out.clear();
        f.abort(&mut out);
        assert!(out.contains(&FlowAction::CancelRto));
        assert!(f.is_aborted());
        out.clear();
        f.on_ack(t(10), MSS, &mut out);
        f.on_data(t(10), 0, MSS as u32, &mut out);
        f.on_rto(t(20), &mut out);
        f.write(t(30), MSS, 2, &mut out);
        assert!(out.is_empty());
        // Double-abort is a no-op.
        f.abort(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cwnd_capped_by_max() {
        let cfg = FlowConfig {
            max_cwnd_bytes: 8 * MSS,
            ..Default::default()
        };
        let mut f = Flow::new(FlowId(0), NodeId(0), NodeId(1), cfg);
        let mut out = Vec::new();
        f.write(t(0), 1000 * MSS, 1, &mut out);
        for i in 1..200u64 {
            f.on_ack(t(i), i * MSS, &mut out);
        }
        assert!(f.cwnd_bytes() <= 8 * MSS);
    }

    #[test]
    fn multiple_message_boundaries_deliver_in_order() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 100, 1, &mut out);
        f.write(t(0), 200, 2, &mut out);
        f.write(t(0), 300, 3, &mut out);
        out.clear();
        f.on_data(t(5), 0, 600, &mut out);
        let tags: Vec<u64> = out
            .iter()
            .filter_map(|a| match a {
                FlowAction::Deliver { tag } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn partial_message_not_delivered() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 1000, 1, &mut out);
        out.clear();
        f.on_data(t(5), 0, 999, &mut out);
        assert!(!out.iter().any(|a| matches!(a, FlowAction::Deliver { .. })));
        f.on_data(t(6), 999, 1, &mut out);
        assert!(out.contains(&FlowAction::Deliver { tag: 1 }));
    }

    #[test]
    fn ooo_coalescing_handles_overlaps() {
        let mut f = flow();
        let mut out = Vec::new();
        f.write(t(0), 10_000, 1, &mut out);
        out.clear();
        // Insert overlapping out-of-order ranges in nasty orders.
        f.on_data(t(1), 5000, 1000, &mut out); // [5000,6000)
        f.on_data(t(2), 4500, 600, &mut out); // [4500,5100) merges
        f.on_data(t(3), 6000, 500, &mut out); // [6000,6500) adjacent merges
        f.on_data(t(4), 100, 200, &mut out); // [100,300)
                                             // Fill the head: everything up to 6500 should complete.
        f.on_data(t(5), 0, 4500, &mut out);
        assert_eq!(f.delivered_bytes(), 6500);
    }
}

#[cfg(test)]
mod cubic_tests {
    use super::*;

    const MSS: u64 = 1460;

    fn cubic_flow() -> Flow {
        let cfg = FlowConfig {
            cc: CongestionControl::Cubic,
            ..FlowConfig::default()
        };
        Flow::new(FlowId(0), NodeId(0), NodeId(1), cfg)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// Drive a flow through slow start into congestion avoidance by
    /// ACKing steadily, with one loss event to set ssthresh.
    fn into_avoidance(f: &mut Flow) -> u64 {
        let mut out = Vec::new();
        f.write(t(0), 10_000 * MSS, 1, &mut out);
        let mut acked = 0;
        for i in 1..=8u64 {
            acked = i * MSS;
            f.on_ack(t(i * 10), acked, &mut out);
        }
        // Trigger fast retransmit: cwnd collapses, epoch recorded.
        for _ in 0..3 {
            f.on_ack(t(100), acked, &mut out);
        }
        // Recover fully.
        let recover = acked + f.flight_bytes();
        f.on_ack(t(120), recover, &mut out);
        recover
    }

    #[test]
    fn cubic_recovers_and_keeps_transferring() {
        let mut f = cubic_flow();
        let mut acked = into_avoidance(&mut f);
        let mut out = Vec::new();
        for i in 0..200u64 {
            acked += MSS;
            f.on_ack(t(200 + i * 10), acked, &mut out);
        }
        assert!(f.cwnd_bytes() >= 2 * MSS);
        assert_eq!(f.acked_bytes(), acked);
    }

    #[test]
    fn cubic_growth_accelerates_past_the_plateau() {
        // After a congestion event the cubic curve is flat near W_max and
        // accelerates beyond it: the window gained in the second half of
        // an epoch exceeds the first half's gain (convex region), unlike
        // Reno's constant slope.
        let mut f = cubic_flow();
        let mut acked = into_avoidance(&mut f);
        let mut out = Vec::new();
        let w0 = f.cwnd_bytes();
        // First half: 5 simulated seconds of steady ACKs.
        for i in 0..500u64 {
            acked += MSS;
            f.on_ack(t(200 + i * 10), acked, &mut out);
        }
        let w1 = f.cwnd_bytes();
        // Second half: 5 more seconds.
        for i in 500..1000u64 {
            acked += MSS;
            f.on_ack(t(200 + i * 10), acked, &mut out);
        }
        let w2 = f.cwnd_bytes();
        let first_half = w1.saturating_sub(w0);
        let second_half = w2.saturating_sub(w1);
        assert!(
            second_half > first_half,
            "cubic should accelerate: {first_half} then {second_half}"
        );
    }

    #[test]
    fn cubic_beta_decrease_is_gentler_than_reno() {
        // Same loss pattern: CUBIC keeps 70% of the window, Reno 50%.
        let run = |cc: CongestionControl| {
            let cfg = FlowConfig {
                cc,
                ..FlowConfig::default()
            };
            let mut f = Flow::new(FlowId(0), NodeId(0), NodeId(1), cfg);
            let mut out = Vec::new();
            f.write(t(0), 10_000 * MSS, 1, &mut out);
            let mut acked = 0;
            for i in 1..=20u64 {
                acked = i * MSS;
                f.on_ack(t(i * 10), acked, &mut out);
            }
            let before = f.cwnd_bytes();
            for _ in 0..3 {
                f.on_ack(t(300), acked, &mut out);
            }
            let recover = acked + f.flight_bytes();
            f.on_ack(t(320), recover, &mut out);
            (before, f.cwnd_bytes())
        };
        let (reno_before, reno_after) = run(CongestionControl::Reno);
        let (cubic_before, cubic_after) = run(CongestionControl::Cubic);
        let reno_ratio = reno_after as f64 / reno_before as f64;
        let cubic_ratio = cubic_after as f64 / cubic_before as f64;
        assert!(
            cubic_ratio > reno_ratio,
            "cubic β=0.7 should retain more window: {cubic_ratio} vs {reno_ratio}"
        );
        assert!((0.6..=0.8).contains(&cubic_ratio), "{cubic_ratio}");
    }

    #[test]
    fn default_is_reno() {
        assert_eq!(FlowConfig::default().cc, CongestionControl::Reno);
    }
}
