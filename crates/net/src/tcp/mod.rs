//! A Reno-style reliable, congestion-controlled transport.
//!
//! Each [`Flow`] is one direction of a connection: a byte stream from
//! `src` to `dst`, segmented into MSS-sized packets, acknowledged
//! cumulatively, with slow start, AIMD congestion avoidance, fast
//! retransmit/recovery (NewReno-style partial-ACK handling), and an
//! RFC 6298 retransmission timer with exponential backoff.
//!
//! Applications write *messages* (a byte count plus a tag); the flow
//! delivers the tag to the receiving application exactly when the last
//! in-order byte of the message arrives, giving length-prefixed framing
//! semantics on top of the stream.
//!
//! The flow is a pure state machine: every input returns a list of
//! [`FlowAction`]s for the surrounding world to execute (send a packet, arm
//! a timer, deliver a message). This keeps the protocol logic directly
//! unit-testable, in the spirit of event-driven stacks like smoltcp.

mod flow;

pub use flow::{CongestionControl, Flow, FlowAction, FlowConfig, FlowStats};
