//! Topology construction and static routing.
//!
//! Topologies are small (tens of nodes): clients, optional aggregation
//! switches, a thinner, a server. Routing is computed once at build time
//! with per-destination BFS next-hop tables; ties break on the smaller
//! link id so routes are deterministic.

use crate::ids::Ident;
use crate::link::LinkConfig;
use crate::packet::{LinkId, NodeId};
use std::collections::VecDeque;

/// A directed edge in the topology under construction.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Link parameters.
    pub cfg: LinkConfig,
}

/// Builder for a [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: u32,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node and return its id.
    pub fn node(&mut self) -> NodeId {
        let id = NodeId(self.nodes);
        self.nodes += 1;
        id
    }

    /// Add `n` nodes and return their ids.
    pub fn nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.node()).collect()
    }

    /// Add a unidirectional link and return its id.
    pub fn link(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(from.0 < self.nodes && to.0 < self.nodes, "unknown node");
        assert_ne!(from, to, "self-links are not allowed");
        let id = LinkId::from_index(self.edges.len());
        self.edges.push(Edge { from, to, cfg });
        id
    }

    /// Add a symmetric pair of links and return `(forward, reverse)` ids.
    pub fn duplex(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        (self.link(a, b, cfg), self.link(b, a, cfg))
    }

    /// Add an asymmetric pair of links: `a -> b` with `up`, `b -> a` with
    /// `down`. Returns `(up_id, down_id)`.
    pub fn duplex_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        up: LinkConfig,
        down: LinkConfig,
    ) -> (LinkId, LinkId) {
        (self.link(a, b, up), self.link(b, a, down))
    }

    /// Finalize: compute routes. Panics if any node pair connected by the
    /// application later turns out unreachable — unreachable pairs are
    /// permitted here and only fail if a flow is opened across one.
    pub fn build(self) -> Topology {
        let n = usize::try_from(self.nodes).expect("invariant: u32 node count fits usize");
        // adjacency: per node, outgoing (link, to) sorted by link id.
        let mut adj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.from.index()].push((LinkId::from_index(i), e.to));
        }
        // next_hop[src * n + dst] = first link on a shortest path.
        let mut next_hop = vec![None; n * n];
        for src in 0..n {
            // BFS from src over directed edges.
            let mut dist = vec![u32::MAX; n];
            let mut first_link: Vec<Option<LinkId>> = vec![None; n];
            dist[src] = 0;
            let mut q = VecDeque::new();
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for &(lid, v) in &adj[u] {
                    let v = v.index();
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        first_link[v] = if u == src { Some(lid) } else { first_link[u] };
                        q.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                if dst != src {
                    next_hop[src * n + dst] = first_link[dst];
                }
            }
        }
        // Memoize end-to-end propagation delays along the exact
        // forwarding chain (each hop re-consults its own next-hop row,
        // which may differ from the source's BFS tree).
        let mut path_delays = vec![None; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut at = src;
                let mut d = crate::time::SimDuration::ZERO;
                while at != dst {
                    let Some(lid) = next_hop[at * n + dst] else {
                        break;
                    };
                    let e = &self.edges[lid.index()];
                    d += e.cfg.delay;
                    at = e.to.index();
                }
                if at == dst {
                    path_delays[src * n + dst] = Some(d);
                }
            }
        }
        Topology {
            node_count: self.nodes,
            edges: self.edges,
            next_hop,
            path_delays,
        }
    }
}

/// A finished topology: edges plus routing tables.
pub struct Topology {
    node_count: u32,
    edges: Vec<Edge>,
    /// `next_hop[src * n + dst]`: the first link on the route, if
    /// reachable (flat row-major matrix: one bounds check + no pointer
    /// chase on the per-packet forwarding lookup).
    next_hop: Vec<Option<LinkId>>,
    /// `path_delays[src * n + dst]`: total propagation delay along the
    /// forwarding route, memoized at build time. The engine consults
    /// this on every control record (flow open, message boundary,
    /// abort), so it must not walk the route — or allocate — per call.
    path_delays: Vec<Option<crate::time::SimDuration>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Node count as a vec-index bound.
    pub fn node_slots(&self) -> usize {
        // lint: allow(cast) — u32 -> usize widening on 64-bit targets
        self.node_count as usize
    }

    /// All directed edges, indexed by `LinkId`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The outgoing link `at` should use to forward toward `dst`.
    #[inline]
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        self.next_hop[at.index() * self.node_slots() + dst.index()]
    }

    /// Whether `dst` is reachable from `src`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.next_hop(src, dst).is_some()
    }

    /// The full ordered list of links a packet from `src` to `dst` will
    /// traverse. Useful for tests and for computing path RTTs.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        let mut at = src;
        let mut links = Vec::new();
        while at != dst {
            let lid = self.next_hop(at, dst)?;
            links.push(lid);
            at = self.edges[lid.index()].to;
            if links.len() > self.node_slots() {
                return None; // routing loop; cannot happen with BFS tables
            }
        }
        Some(links)
    }

    /// Sum of propagation delays along `src -> dst` (excludes transmission
    /// and queueing time).
    pub fn path_delay(&self, src: NodeId, dst: NodeId) -> Option<crate::time::SimDuration> {
        let n = self.node_slots();
        if src == dst {
            return Some(crate::time::SimDuration::ZERO);
        }
        self.path_delays[src.index() * n + dst.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn cfg() -> LinkConfig {
        LinkConfig::new(1_000_000, SimDuration::from_millis(5))
    }

    #[test]
    fn direct_route() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let c = b.node();
        let (up, down) = b.duplex(a, c, cfg());
        let t = b.build();
        assert_eq!(t.next_hop(a, c), Some(up));
        assert_eq!(t.next_hop(c, a), Some(down));
        assert_eq!(
            t.path(a, c)
                .expect("invariant: star topology connects all leaves"),
            vec![up]
        );
    }

    #[test]
    fn star_routes_through_hub() {
        let mut b = TopologyBuilder::new();
        let hub = b.node();
        let leaves: Vec<_> = (0..5).map(|_| b.node()).collect();
        for &leaf in &leaves {
            b.duplex(leaf, hub, cfg());
        }
        let t = b.build();
        // Leaf to leaf goes through the hub: two hops.
        let p = t
            .path(leaves[0], leaves[4])
            .expect("invariant: star topology connects all leaves");
        assert_eq!(p.len(), 2);
        assert_eq!(
            t.path_delay(leaves[0], leaves[4]),
            Some(SimDuration::from_millis(10))
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let c = b.node();
        let d = b.node();
        b.link(a, c, cfg()); // one-way only; nothing touches d
        let t = b.build();
        assert!(t.reachable(a, c));
        assert!(!t.reachable(c, a));
        assert!(!t.reachable(a, d));
        assert_eq!(t.path(a, d), None);
        assert!(t.reachable(d, d));
    }

    #[test]
    fn shortest_path_chosen() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let m1 = b.node();
        let m2 = b.node();
        let z = b.node();
        // Long path a -> m1 -> m2 -> z, short path a -> z.
        b.link(a, m1, cfg());
        b.link(m1, m2, cfg());
        b.link(m2, z, cfg());
        let direct = b.link(a, z, cfg());
        let t = b.build();
        assert_eq!(
            t.path(a, z)
                .expect("invariant: a and z are directly linked"),
            vec![direct]
        );
    }

    #[test]
    fn deterministic_tie_break() {
        // Two parallel equal-length routes; the smaller link id wins.
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        let l0 = b.link(a, z, cfg());
        let _l1 = b.link(a, z, cfg());
        let t = b.build();
        assert_eq!(t.next_hop(a, z), Some(l0));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        b.link(a, a, cfg());
    }

    #[test]
    fn bottleneck_topology_path() {
        // clients -> gateway -> (bottleneck) -> hub -> thinner
        let mut b = TopologyBuilder::new();
        let hub = b.node();
        let thinner = b.node();
        b.duplex(hub, thinner, cfg());
        let gw = b.node();
        b.duplex(gw, hub, cfg());
        let c1 = b.node();
        b.duplex(c1, gw, cfg());
        let t = b.build();
        assert_eq!(
            t.path(c1, thinner)
                .expect("invariant: client reaches thinner via hub")
                .len(),
            3
        );
        assert_eq!(
            t.path(thinner, c1)
                .expect("invariant: thinner reaches client via hub")
                .len(),
            3
        );
    }
}
