//! # speakup-net — deterministic packet-level network simulator
//!
//! The substrate for the speak-up reproduction (Walfish et al.,
//! *DDoS Defense by Offense*, SIGCOMM 2006). The paper evaluated on the
//! Emulab testbed; this crate stands in for it with a discrete-event,
//! packet-level simulator providing the behaviours the evaluation depends
//! on:
//!
//! * **Links** with transmission rate, propagation delay, bounded drop-tail
//!   queues, and optional fault injection ([`link`]).
//! * **Topologies** with static shortest-path routing — client access
//!   links, shared bottlenecks, LAN aggregation ([`topology`]).
//! * **A Reno-style congestion-controlled transport** with slow start,
//!   AIMD, fast retransmit/recovery and RFC 6298 timers ([`tcp`]) —
//!   payment channels in speak-up are congestion-controlled streams, and
//!   several of the paper's findings (RTT sensitivity, slow-start cost per
//!   POST, bottleneck crowd-out) are transport effects.
//! * **A deterministic event loop** with per-node applications ([`sim`]):
//!   same seed, same trace, on any platform.
//!
//! ## Example
//!
//! ```
//! use speakup_net::link::LinkConfig;
//! use speakup_net::packet::{FlowId, NodeId};
//! use speakup_net::sim::{App, Ctx, Simulator};
//! use speakup_net::time::{SimDuration, SimTime};
//! use speakup_net::topology::TopologyBuilder;
//!
//! struct Pinger { dst: NodeId }
//! impl App for Pinger {
//!     fn start(&mut self, ctx: &mut Ctx) {
//!         let f = ctx.open_default_flow(self.dst);
//!         ctx.send(f, 1000, 0xbeef);
//!     }
//! }
//! #[derive(Default)]
//! struct Sink { got: Vec<u64> }
//! impl App for Sink {
//!     fn on_message(&mut self, _ctx: &mut Ctx, _flow: FlowId, tag: u64) {
//!         self.got.push(tag);
//!     }
//! }
//!
//! let mut b = TopologyBuilder::new();
//! let a = b.node();
//! let z = b.node();
//! b.duplex(a, z, LinkConfig::new(2_000_000, SimDuration::from_millis(10)));
//! let mut sim = Simulator::new(b.build(), 42);
//! sim.add_app(a, Box::new(Pinger { dst: z }));
//! sim.add_app(z, Box::new(Sink::default()));
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.app::<Sink>(z).unwrap().got, vec![0xbeef]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod ids;
pub mod link;
pub mod packet;
pub mod rng;
pub mod sim;
pub mod slab;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;

pub use ids::{CohortId, IdVec, Ident, MemberId};
pub use packet::{FlowId, LinkId, NodeId};
pub use sim::{App, Ctx, Simulator};
pub use time::{SimDuration, SimTime};
