//! Links: rate-limited, delayed, drop-tail-queued pipes between nodes.
//!
//! A link is unidirectional. When a packet is offered to a busy link it
//! joins a FIFO queue bounded in bytes; overflow is dropped at the tail,
//! which is how congestion manifests and what drives the transport's
//! congestion control. Links also support probabilistic fault injection
//! (random drop), in the style of smoltcp's example fault injectors.

use crate::packet::{NodeId, Packet};
use crate::rng::Pcg32;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Static configuration of a link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in bytes (drop-tail). The packet currently being
    /// transmitted does not count against the queue.
    pub queue_bytes: u64,
    /// Probability that an enqueued packet is randomly dropped (fault
    /// injection). Zero for a healthy link.
    pub drop_prob: f64,
}

impl LinkConfig {
    /// A link with the given rate (bits/s) and one-way delay, a 100-packet
    /// (150 kB) queue, and no fault injection.
    pub fn new(rate_bps: u64, delay: SimDuration) -> Self {
        LinkConfig {
            rate_bps,
            delay,
            queue_bytes: 100 * 1500,
            drop_prob: 0.0,
        }
    }

    /// Override the queue capacity, expressed in 1500-byte packets.
    pub fn queue_packets(mut self, packets: u64) -> Self {
        self.queue_bytes = packets * 1500;
        self
    }

    /// Enable random-drop fault injection with the given probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`. Out-of-range probabilities used to be
    /// accepted silently (p ≥ 1 always-drops, p < 0 never-drops), which
    /// turned scenario typos into mystery results.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "link drop_prob must be in [0, 1), got {p}"
        );
        self.drop_prob = p;
        self
    }
}

/// Batched fault-injection sampler for a lossy link.
///
/// Replaces per-packet `rng.f64() < drop_prob` Bernoulli rolls with a
/// next-drop countdown: the sampler eagerly scans a chunk of draws from
/// the same PCG stream, records the run of survivals before each drop,
/// and then answers `offer()` from the countdown without touching the
/// RNG. The draws consumed — and therefore the decision sequence — are
/// bit-identical to the per-packet formulation, so goldens cannot move
/// (property-tested in `tests/drop_sampler_props.rs`).
#[derive(Debug)]
pub struct DropSampler {
    rng: Pcg32,
    drop_prob: f64,
    /// Packets that survive before the next recorded decision.
    survive: u32,
    /// Whether the decision after the survival run is a drop (false only
    /// when a scan chunk ended without finding one).
    drop_next: bool,
}

impl DropSampler {
    /// Draws scanned ahead per refill. Bounds refill latency at tiny
    /// drop probabilities; each scan consumes exactly the draws whose
    /// decisions it records, so chunking is unobservable.
    const CHUNK: u32 = 1024;

    /// A sampler for a link with the given drop probability, consuming
    /// the link's dedicated PCG stream. Requires `drop_prob ∈ (0, 1)`:
    /// loss-free links must skip sampling entirely rather than pay for a
    /// degenerate sampler.
    pub fn new(rng: Pcg32, drop_prob: f64) -> Self {
        assert!(
            drop_prob > 0.0 && drop_prob < 1.0,
            "DropSampler requires drop_prob in (0, 1), got {drop_prob}"
        );
        DropSampler {
            rng,
            drop_prob,
            survive: 0,
            drop_next: false,
        }
    }

    /// Decide the fate of the next offered packet: `true` means drop.
    /// Bit-identical to `self.rng.f64() < self.drop_prob` per packet.
    #[inline]
    pub fn offer(&mut self) -> bool {
        loop {
            if self.survive > 0 {
                self.survive -= 1;
                return false;
            }
            if self.drop_next {
                self.drop_next = false;
                return true;
            }
            self.refill();
        }
    }

    /// Scan up to [`Self::CHUNK`] draws, recording the survival run and
    /// the terminating drop (if one occurred within the chunk).
    fn refill(&mut self) {
        debug_assert!(self.survive == 0 && !self.drop_next);
        for _ in 0..Self::CHUNK {
            if self.rng.f64() < self.drop_prob {
                self.drop_next = true;
                return;
            }
            self.survive += 1;
        }
    }
}

/// Counters describing everything a link has done.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets fully transmitted.
    pub tx_packets: u64,
    /// Bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped because the queue was full.
    pub drops_overflow: u64,
    /// Packets dropped by fault injection.
    pub drops_fault: u64,
    /// Packets dropped because the link was down (offered, queued, or in
    /// flight during a scheduled flap).
    pub drops_down: u64,
    /// High-water mark of queued bytes.
    pub max_queued_bytes: u64,
}

/// Runtime state of a link.
#[derive(Debug)]
pub struct Link {
    /// Static configuration.
    pub cfg: LinkConfig,
    /// Node the link delivers packets to.
    pub dst: NodeId,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// Packet currently on the wire, if any.
    in_flight: Option<Packet>,
    /// Nesting depth of scheduled outages ([`Link::take_down`] /
    /// [`Link::bring_up`]); the link carries packets only at depth 0.
    down_depth: u32,
    /// Set when an outage strikes mid-transmission: the in-flight packet
    /// finishes serializing (its `TxDone` event is already scheduled) but
    /// must be discarded instead of delivered.
    doomed_in_flight: bool,
    /// Last `(size, transmission time)` computed: wire sizes repeat
    /// (full segments, pure ACKs), and the memo turns the 128-bit
    /// division in [`SimDuration::transmission`] into a compare.
    tx_memo: (u64, SimDuration),
    /// Counters.
    pub stats: LinkStats,
}

/// Outcome of offering a packet to a link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Enqueue {
    /// The link was idle; transmission starts now and completes after the
    /// contained duration.
    StartTx(SimDuration),
    /// The packet joined the queue.
    Queued,
    /// The packet was dropped (queue overflow or fault injection).
    Dropped,
}

impl Link {
    /// A fresh idle link delivering to `dst`.
    pub fn new(cfg: LinkConfig, dst: NodeId) -> Self {
        // Pre-size the queue for its byte budget in full-size packets so
        // steady-state enqueues never grow the ring (capped to keep huge
        // queue configs from reserving memory they may never use).
        let cap = usize::try_from((cfg.queue_bytes / 1500 + 1).min(4096))
            .expect("invariant: min-clamped to 4096");
        Link {
            cfg,
            dst,
            queue: VecDeque::with_capacity(cap),
            queued_bytes: 0,
            in_flight: None,
            down_depth: 0,
            doomed_in_flight: false,
            tx_memo: (0, SimDuration::ZERO),
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet to the link. `fault_roll` is a uniform [0,1) sample
    /// used for fault injection (passed in so the link itself holds no RNG).
    ///
    /// Callers must check [`Link::is_up`] *before* drawing `fault_roll`
    /// for a lossy link — a downed link drops without consuming the
    /// loss stream — but the guard here keeps a missed check from
    /// teleporting packets across an outage.
    pub fn enqueue(&mut self, packet: Packet, fault_roll: f64) -> Enqueue {
        if self.down_depth > 0 {
            self.stats.drops_down += 1;
            return Enqueue::Dropped;
        }
        if self.cfg.drop_prob > 0.0 && fault_roll < self.cfg.drop_prob {
            self.stats.drops_fault += 1;
            return Enqueue::Dropped;
        }
        if self.in_flight.is_none() {
            debug_assert!(self.queue.is_empty());
            let tx = self.tx_time(u64::from(packet.size));
            self.in_flight = Some(packet);
            return Enqueue::StartTx(tx);
        }
        if self.queued_bytes + u64::from(packet.size) > self.cfg.queue_bytes {
            self.stats.drops_overflow += 1;
            return Enqueue::Dropped;
        }
        self.queued_bytes += u64::from(packet.size);
        self.stats.max_queued_bytes = self.stats.max_queued_bytes.max(self.queued_bytes);
        self.queue.push_back(packet);
        Enqueue::Queued
    }

    /// Complete the in-flight transmission. Returns the packet that just
    /// finished (to be delivered after the propagation delay) and, if the
    /// queue was non-empty, the next packet's transmission time.
    pub fn tx_done(&mut self) -> (Packet, Option<SimDuration>) {
        let done = self.in_flight.take().expect("tx_done on idle link");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += u64::from(done.size);
        let next = self.queue.pop_front().map(|p| {
            self.queued_bytes -= u64::from(p.size);
            let tx = self.tx_time(u64::from(p.size));
            self.in_flight = Some(p);
            tx
        });
        (done, next)
    }

    /// Transmission time for `bytes` on this link, memoized on the last
    /// distinct size seen.
    #[inline]
    fn tx_time(&mut self, bytes: u64) -> SimDuration {
        if self.tx_memo.0 != bytes {
            self.tx_memo = (bytes, SimDuration::transmission(bytes, self.cfg.rate_bps));
        }
        self.tx_memo.1
    }

    /// Whether the link is currently carrying packets (no outage active).
    pub fn is_up(&self) -> bool {
        self.down_depth == 0
    }

    /// Start an outage: flush the queue (counting each packet as a
    /// down-drop) and doom the in-flight packet, whose already-scheduled
    /// `TxDone` will discard it via [`Link::take_doomed`]. Outages nest —
    /// overlapping schedule entries keep the link down until every one
    /// has ended. Returns the number of queued packets flushed.
    pub fn take_down(&mut self) -> u64 {
        self.down_depth += 1;
        let flushed = u64::try_from(self.queue.len()).expect("queue length fits u64");
        self.queue.clear();
        self.queued_bytes = 0;
        self.stats.drops_down += flushed;
        if self.in_flight.is_some() {
            self.doomed_in_flight = true;
        }
        flushed
    }

    /// End one outage (the link comes back up when the last overlapping
    /// outage ends).
    ///
    /// # Panics
    ///
    /// Panics if the link is not down — an unmatched `bring_up` is a
    /// scheduling bug.
    pub fn bring_up(&mut self) {
        assert!(self.down_depth > 0, "bring_up on a link that is not down");
        self.down_depth -= 1;
    }

    /// Whether the packet just returned by [`Link::tx_done`] was doomed
    /// by an outage and must be dropped instead of delivered. Clears the
    /// doomed flag and counts the drop.
    pub fn take_doomed(&mut self) -> bool {
        if self.doomed_in_flight {
            self.doomed_in_flight = false;
            self.stats.drops_down += 1;
            return true;
        }
        false
    }

    /// Bytes currently waiting in the queue (excludes the in-flight packet).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a packet is currently being transmitted.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Observed utilization over `elapsed`: transmitted bits / capacity.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 || self.cfg.rate_bps == 0 {
            return 0.0;
        }
        (self.stats.tx_bytes as f64 * 8.0) / (self.cfg.rate_bps as f64 * secs)
    }
}

/// A timestamped delivery: used by the world to hand a transmitted packet
/// to the destination node after the propagation delay.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// Arrival time at the destination node.
    pub at: SimTime,
    /// The packet being delivered.
    pub packet: Packet,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};

    fn pkt(size: u32) -> Packet {
        Packet {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            kind: PacketKind::Data {
                offset: 0,
                len: size - 40,
            },
        }
    }

    #[test]
    fn idle_link_starts_transmitting() {
        let mut l = Link::new(
            LinkConfig::new(8_000, SimDuration::from_millis(1)),
            NodeId(1),
        );
        // 1000 bytes at 8000 bits/s = 1 s.
        match l.enqueue(pkt(1000), 1.0) {
            Enqueue::StartTx(d) => assert_eq!(d, SimDuration::from_secs(1)),
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_then_drains() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        assert!(matches!(l.enqueue(pkt(1000), 1.0), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(500), 1.0), Enqueue::Queued);
        assert_eq!(l.queued_bytes(), 500);
        let (done, next) = l.tx_done();
        assert_eq!(done.size, 1000);
        assert!(next.is_some());
        assert_eq!(l.queued_bytes(), 0);
        let (done2, next2) = l.tx_done();
        assert_eq!(done2.size, 500);
        assert!(next2.is_none());
        assert!(!l.is_busy());
        assert_eq!(l.stats.tx_packets, 2);
        assert_eq!(l.stats.tx_bytes, 1500);
    }

    #[test]
    fn overflow_drops_at_tail() {
        let cfg = LinkConfig {
            rate_bps: 8_000,
            delay: SimDuration::ZERO,
            queue_bytes: 1000,
            drop_prob: 0.0,
        };
        let mut l = Link::new(cfg, NodeId(1));
        assert!(matches!(l.enqueue(pkt(1000), 1.0), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(600), 1.0), Enqueue::Queued);
        // 600 + 600 > 1000: dropped.
        assert_eq!(l.enqueue(pkt(600), 1.0), Enqueue::Dropped);
        assert_eq!(l.stats.drops_overflow, 1);
        // But a smaller packet still fits.
        assert_eq!(l.enqueue(pkt(400), 1.0), Enqueue::Queued);
    }

    #[test]
    fn fault_injection_drops() {
        let cfg = LinkConfig::new(8_000, SimDuration::ZERO).drop_prob(0.5);
        let mut l = Link::new(cfg, NodeId(1));
        assert_eq!(l.enqueue(pkt(100), 0.4), Enqueue::Dropped);
        assert_eq!(l.stats.drops_fault, 1);
        assert!(matches!(l.enqueue(pkt(100), 0.6), Enqueue::StartTx(_)));
    }

    #[test]
    #[should_panic(expected = "tx_done on idle link")]
    fn tx_done_on_idle_panics() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        let _ = l.tx_done();
    }

    #[test]
    fn utilization_accounting() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        assert!(matches!(l.enqueue(pkt(1000), 1.0), Enqueue::StartTx(_)));
        let _ = l.tx_done();
        // 8000 bits sent; over 2 s on an 8000 bit/s link = 0.5.
        let u = l.utilization(SimDuration::from_secs(2));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "drop_prob must be in [0, 1)")]
    fn drop_prob_rejects_one_or_more() {
        let _ = LinkConfig::new(8_000, SimDuration::ZERO).drop_prob(1.0);
    }

    #[test]
    #[should_panic(expected = "drop_prob must be in [0, 1)")]
    fn drop_prob_rejects_negative() {
        let _ = LinkConfig::new(8_000, SimDuration::ZERO).drop_prob(-0.1);
    }

    #[test]
    fn drop_sampler_matches_per_packet_bernoulli() {
        for &p in &[0.001, 0.05, 0.5, 0.999] {
            let mut sampler = DropSampler::new(Pcg32::new(7, 42), p);
            let mut reference = Pcg32::new(7, 42);
            for i in 0..20_000 {
                let expect = reference.f64() < p;
                assert_eq!(sampler.offer(), expect, "p={p} packet {i}");
            }
        }
    }

    #[test]
    fn downed_link_drops_without_consuming_the_fault_roll() {
        let mut l = Link::new(
            LinkConfig::new(8_000, SimDuration::ZERO).drop_prob(0.5),
            NodeId(1),
        );
        l.take_down();
        assert!(!l.is_up());
        // A roll that would survive fault injection still drops: the
        // outage guard runs first (and callers skip the sampler anyway).
        assert_eq!(l.enqueue(pkt(100), 0.9), Enqueue::Dropped);
        assert_eq!(l.stats.drops_down, 1);
        assert_eq!(l.stats.drops_fault, 0);
        l.bring_up();
        assert!(l.is_up());
        assert!(matches!(l.enqueue(pkt(100), 0.9), Enqueue::StartTx(_)));
    }

    #[test]
    fn take_down_flushes_queue_and_dooms_in_flight() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        assert!(matches!(l.enqueue(pkt(1000), 1.0), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(500), 1.0), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(500), 1.0), Enqueue::Queued);
        assert_eq!(l.take_down(), 2, "both queued packets flushed");
        assert_eq!(l.queued_bytes(), 0);
        assert_eq!(l.stats.drops_down, 2);
        // The in-flight packet finishes serializing but is discarded.
        let (done, next) = l.tx_done();
        assert_eq!(done.size, 1000);
        assert!(next.is_none(), "queue was flushed");
        assert!(l.take_doomed(), "in-flight packet was doomed");
        assert_eq!(l.stats.drops_down, 3);
        assert!(!l.take_doomed(), "doom flag is one-shot");
    }

    #[test]
    fn doomed_in_flight_drops_even_if_link_recovered_first() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        assert!(matches!(l.enqueue(pkt(1000), 1.0), Enqueue::StartTx(_)));
        l.take_down();
        l.bring_up();
        let (_done, _next) = l.tx_done();
        assert!(
            l.take_doomed(),
            "a packet on the wire during any outage is lost"
        );
    }

    #[test]
    fn overlapping_outages_nest() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        l.take_down();
        l.take_down();
        l.bring_up();
        assert!(!l.is_up(), "still inside the first outage");
        l.bring_up();
        assert!(l.is_up());
    }

    #[test]
    #[should_panic(expected = "bring_up on a link that is not down")]
    fn unmatched_bring_up_panics() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        l.bring_up();
    }

    #[test]
    fn max_queue_highwater() {
        let mut l = Link::new(LinkConfig::new(8_000, SimDuration::ZERO), NodeId(1));
        assert!(matches!(l.enqueue(pkt(100), 1.0), Enqueue::StartTx(_)));
        l.enqueue(pkt(200), 1.0);
        l.enqueue(pkt(300), 1.0);
        assert_eq!(l.stats.max_queued_bytes, 500);
        let _ = l.tx_done();
        assert_eq!(l.stats.max_queued_bytes, 500);
    }
}
