//! Typed dense identifiers and the tables they index.
//!
//! The parsimon-style idiom: every entity class gets its own `u32`
//! newtype minted by [`identifier!`], and per-entity hot state lives in
//! flat [`IdVec`] tables indexed by the id — struct-of-arrays instead of
//! per-object maps and boxes. A lookup is one bounds-checked array
//! indexing; iteration touches contiguous memory; and the type system
//! stops a `MemberId` from ever indexing a node table.
//!
//! [`crate::packet`] mints the simulator's core ids ([`crate::NodeId`],
//! [`crate::LinkId`], [`crate::FlowId`]) with the same macro; this module
//! adds the crowd-scaling ids ([`CohortId`], [`MemberId`]) used by the
//! flyweight client cohorts.

use std::marker::PhantomData;

/// A dense `u32`-backed identifier usable as an [`IdVec`] index.
pub trait Ident: Copy {
    /// The id as a dense table index.
    fn index(self) -> usize;
    /// The id naming table position `i`.
    fn from_index(i: usize) -> Self;
}

/// Mint a dense `u32` identifier newtype: `identifier!(Name, "prefix")`.
///
/// The type derives the full comparison/hash kit, displays as
/// `"<prefix><n>"`, and implements [`Ident`] so it can key an [`IdVec`].
/// The payload field stays `pub` — call sites that pack or unpack bits
/// (e.g. [`crate::sim::flow_id`]) keep working unchanged.
#[macro_export]
macro_rules! identifier {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u32);

        impl $crate::ids::Ident for $name {
            #[inline]
            fn index(self) -> usize {
                // lint: allow(cast) — the blessed u32 -> usize widening accessor
                self.0 as usize
            }
            #[inline]
            fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id space exhausted"))
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

identifier!(
    /// One flyweight cohort (a node statistically aggregating N clients).
    CohortId,
    "ch"
);
identifier!(
    /// One aggregated client within a cohort (dense, per-cohort).
    MemberId,
    "m"
);

/// A dense table keyed by a typed id: `IdVec<MemberId, T>` is a
/// `Vec<T>` that only a `MemberId` can index.
///
/// Grown by [`IdVec::push`] (which mints the next id) or
/// [`IdVec::with`]; never shrinks — ids are dense and stable for the
/// table's lifetime, matching the append-only id allocation everywhere
/// in the simulator.
#[derive(Clone, Debug)]
pub struct IdVec<I, T> {
    items: Vec<T>,
    _key: PhantomData<I>,
}

impl<I: Ident, T> IdVec<I, T> {
    /// An empty table.
    pub fn new() -> Self {
        IdVec {
            items: Vec::new(),
            _key: PhantomData,
        }
    }

    /// A table of `n` entries built by `f(id)`.
    pub fn with(n: usize, mut f: impl FnMut(I) -> T) -> Self {
        IdVec {
            items: (0..n).map(|i| f(I::from_index(i))).collect(),
            _key: PhantomData,
        }
    }

    /// Append an entry, minting its id.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(value);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate `(id, &entry)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (I::from_index(i), v))
    }

    /// All ids in order.
    pub fn ids(&self) -> impl Iterator<Item = I> + use<I, T> {
        (0..self.items.len()).map(I::from_index)
    }
}

impl<I: Ident, T> Default for IdVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Ident, T> std::ops::Index<I> for IdVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.items[id.index()]
    }
}

impl<I: Ident, T> std::ops::IndexMut<I> for IdVec<I, T> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_dense_and_typed() {
        let mut t: IdVec<MemberId, u64> = IdVec::new();
        assert!(t.is_empty());
        let a = t.push(10);
        let b = t.push(20);
        assert_eq!((a, b), (MemberId(0), MemberId(1)));
        assert_eq!(t.len(), 2);
        t[a] += 1;
        assert_eq!(t[a], 11);
        assert_eq!(t[b], 20);
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(t.iter().map(|(_, &v)| v).sum::<u64>(), 31);
    }

    #[test]
    fn with_builds_from_ids() {
        let t: IdVec<CohortId, u32> = IdVec::with(3, |id: CohortId| id.0 * 100);
        assert_eq!(t[CohortId(2)], 200);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn display_uses_the_prefix() {
        assert_eq!(CohortId(7).to_string(), "ch7");
        assert_eq!(MemberId(3).to_string(), "m3");
    }
}
