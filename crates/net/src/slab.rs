//! Dense flow-keyed tables.
//!
//! [`FlowId`]s are packed — high bits name the opening node, low bits a
//! per-node counter (see [`crate::sim::flow_id`]) — so a per-node vector
//! indexed by the counter replaces the `BTreeMap`s the per-packet hot
//! path used to walk. A lookup is two array indexings: no comparisons,
//! no pointer chasing, and contiguous flows of one node stay on the same
//! cache lines. Entries are never compacted (flow ids are never reused
//! within a run), matching the append-only lifetime the simulator's
//! flow tables already had.

use crate::packet::{FlowId, NodeId, FLOW_NTH_BITS};

/// Recompose the packed [`FlowId`] from slab coordinates (inverse of
/// [`FlowId::node_index`] / [`FlowId::per_node_index`]).
fn compose(node: usize, nth: usize) -> FlowId {
    let node = u32::try_from(node).expect("invariant: node index fits u32");
    let nth = u32::try_from(nth).expect("invariant: per-node flow index fits u32");
    FlowId((node << FLOW_NTH_BITS) | nth)
}

/// A two-level slab keyed by packed [`FlowId`]: outer index the opening
/// node, inner index the node's flow counter.
pub struct FlowSlab<T> {
    per_node: Vec<Vec<Option<T>>>,
    len: usize,
}

impl<T> FlowSlab<T> {
    /// An empty slab for a topology of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        let mut per_node = Vec::new();
        per_node.resize_with(nodes, Vec::new);
        FlowSlab { per_node, len: 0 }
    }

    /// The value stored for `id`, if any.
    #[inline]
    pub fn get(&self, id: FlowId) -> Option<&T> {
        self.per_node
            .get(id.node_index())?
            .get(id.per_node_index())?
            .as_ref()
    }

    /// Mutable access to the value stored for `id`, if any.
    #[inline]
    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut T> {
        self.per_node
            .get_mut(id.node_index())?
            .get_mut(id.per_node_index())?
            .as_mut()
    }

    /// Store `value` for `id`, growing the node's lane as needed.
    /// Returns the previous value, if any.
    pub fn insert(&mut self, id: FlowId, value: T) -> Option<T> {
        let lane = self
            .per_node
            .get_mut(id.node_index())
            .expect("flow id names a node outside the topology");
        let i = id.per_node_index();
        if lane.len() <= i {
            lane.resize_with(i + 1, || None);
        }
        let old = lane[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove and return the value stored for `id`, if any.
    pub fn take(&mut self, id: FlowId) -> Option<T> {
        let v = self
            .per_node
            .get_mut(id.node_index())?
            .get_mut(id.per_node_index())?
            .take();
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Iterate every stored `(id, value)` pair, in `(node, counter)`
    /// order — deterministic, so callers may act on entries in iteration
    /// order without breaking shard-count invariance.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.per_node.iter().enumerate().flat_map(|(node, lane)| {
            lane.iter()
                .enumerate()
                .filter_map(move |(nth, v)| v.as_ref().map(|v| (compose(node, nth), v)))
        })
    }

    /// Iterate the stored `(id, value)` pairs whose ids were allocated
    /// by `node`, in counter order.
    pub fn node_iter(&self, node: NodeId) -> impl Iterator<Item = (FlowId, &T)> {
        let idx = usize::try_from(node.0).expect("invariant: node index fits usize");
        self.per_node
            .get(idx)
            .map(|l| l.as_slice())
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .filter_map(move |(nth, v)| v.as_ref().map(|v| (compose(idx, nth), v)))
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeId;
    use crate::sim::flow_id;

    #[test]
    fn insert_get_take_roundtrip() {
        let mut s: FlowSlab<u64> = FlowSlab::new(4);
        let a = flow_id(NodeId(1), 0);
        let b = flow_id(NodeId(1), 7); // sparse within the node's lane
        let c = flow_id(NodeId(3), 0);
        assert!(s.is_empty());
        assert_eq!(s.insert(a, 10), None);
        assert_eq!(s.insert(b, 11), None);
        assert_eq!(s.insert(c, 12), None);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(a), Some(&10));
        assert_eq!(s.get(b), Some(&11));
        assert_eq!(s.get(flow_id(NodeId(1), 3)), None, "gap stays empty");
        *s.get_mut(c).expect("invariant: c was just inserted") += 1;
        assert_eq!(s.get(c), Some(&13));
        assert_eq!(s.take(b), Some(11));
        assert_eq!(s.take(b), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut s: FlowSlab<&str> = FlowSlab::new(2);
        let id = flow_id(NodeId(0), 5);
        assert_eq!(s.insert(id, "x"), None);
        assert_eq!(s.insert(id, "y"), Some("x"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(id), Some(&"y"));
    }

    #[test]
    fn lookups_outside_the_node_range_are_none() {
        let s: FlowSlab<u8> = FlowSlab::new(1);
        assert_eq!(s.get(flow_id(NodeId(3), 0)), None);
    }

    #[test]
    fn iteration_is_ordered_and_node_scoped() {
        let mut s: FlowSlab<u32> = FlowSlab::new(4);
        let ids = [
            flow_id(NodeId(2), 1),
            flow_id(NodeId(0), 0),
            flow_id(NodeId(2), 0),
            flow_id(NodeId(3), 5),
        ];
        for (i, &id) in ids.iter().enumerate() {
            s.insert(id, u32::try_from(i).expect("small"));
        }
        s.take(flow_id(NodeId(2), 0));
        let all: Vec<_> = s.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(
            all,
            vec![
                (flow_id(NodeId(0), 0), 1),
                (flow_id(NodeId(2), 1), 0),
                (flow_id(NodeId(3), 5), 3),
            ]
        );
        let of_2: Vec<_> = s.node_iter(NodeId(2)).map(|(id, &v)| (id, v)).collect();
        assert_eq!(of_2, vec![(flow_id(NodeId(2), 1), 0)]);
        assert_eq!(s.node_iter(NodeId(9)).count(), 0, "out of range is empty");
    }
}
