//! Packets and identifiers.
//!
//! The simulator moves packets between nodes over links. Packets belong to
//! flows (see [`crate::tcp`]); a packet is either a data segment carrying a
//! byte range of the flow's stream, or a cumulative acknowledgment.

use crate::identifier;

identifier!(
    /// Identifies a node (host or switch) in the topology.
    NodeId,
    "n"
);
identifier!(
    /// Identifies a unidirectional link.
    LinkId,
    "l"
);
identifier!(
    /// Identifies a flow (one direction of a transport connection).
    FlowId,
    "f"
);

/// Bits of a [`FlowId`] holding the opening node's per-node flow
/// counter; the remaining high bits hold the node id (see
/// [`crate::sim::flow_id`] for the allocation scheme).
pub const FLOW_NTH_BITS: u32 = 20;

impl FlowId {
    /// The opening node's id, as an index.
    #[inline]
    pub fn node_index(self) -> usize {
        // lint: allow(cast) — widening: the packed id's high 12 bits
        (self.0 >> FLOW_NTH_BITS) as usize
    }

    /// The flow's per-node counter, as an index.
    #[inline]
    pub fn per_node_index(self) -> usize {
        // lint: allow(cast) — widening: the packed id's low 20 bits
        (self.0 & ((1 << FLOW_NTH_BITS) - 1)) as usize
    }
}

/// What a packet carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// A data segment: stream bytes `[offset, offset + len)`.
    Data {
        /// First stream byte carried.
        offset: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// A cumulative acknowledgment: the receiver has everything below `cum`.
    Ack {
        /// One past the highest in-order byte received.
        cum: u64,
    },
}

/// A packet in flight.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Origin node.
    pub src: NodeId,
    /// Destination node; intermediate nodes forward toward it.
    pub dst: NodeId,
    /// Total size on the wire in bytes, including header overhead.
    pub size: u32,
    /// Payload kind.
    pub kind: PacketKind,
}

impl Packet {
    /// True if the packet carries stream payload (as opposed to an ACK).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_detection() {
        let p = Packet {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1500,
            kind: PacketKind::Data {
                offset: 0,
                len: 1460,
            },
        };
        assert!(p.is_data());
        let a = Packet {
            kind: PacketKind::Ack { cum: 1460 },
            size: 40,
            ..p
        };
        assert!(!a.is_data());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(4).to_string(), "l4");
        assert_eq!(FlowId(5).to_string(), "f5");
    }
}
