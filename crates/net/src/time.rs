//! Simulation time.
//!
//! The simulator keeps time as an integer number of nanoseconds since the
//! start of the run. Integer time makes event ordering exact and runs
//! reproducible across platforms; floating-point clocks accumulate rounding
//! error and can reorder events between machines.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since the run started.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event a run will ever schedule.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than panicking
    /// so metric code can be sloppy about event ordering at the margins.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is actually later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from a float number of seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        // lint: allow(cast) — f64 -> u64 saturates by design (input clamped non-negative above)
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The time to serialize `bytes` onto a link of `rate_bps` bits/second.
    ///
    /// Rounds up to a whole nanosecond so zero-length transmissions are the
    /// only instantaneous ones. A zero rate yields an effectively infinite
    /// duration (callers treat such links as unusable).
    pub fn transmission(bytes: u64, rate_bps: u64) -> Self {
        if rate_bps == 0 {
            return SimDuration(u64::MAX / 4);
        }
        let bits = u128::from(bytes) * 8;
        let nanos = (bits * u128::from(NANOS_PER_SEC)).div_ceil(u128::from(rate_bps));
        SimDuration(
            u64::try_from(nanos.min(u128::from(u64::MAX) / 4))
                .expect("invariant: min-clamped below u64::MAX"),
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_1500b_at_2mbps() {
        // 1500 bytes at 2 Mbit/s = 6 ms.
        let d = SimDuration::transmission(1500, 2_000_000);
        assert_eq!(d.as_nanos(), 6_000_000);
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 3 bits/ns-scale rate: must not round to zero.
        let d = SimDuration::transmission(1, 999_999_999_999);
        assert!(d.as_nanos() >= 1);
        assert_eq!(SimDuration::transmission(0, 1_000).as_nanos(), 0);
    }

    #[test]
    fn zero_rate_is_effectively_infinite() {
        let d = SimDuration::transmission(1500, 0);
        assert!(d > SimDuration::from_secs(1_000_000));
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::ZERO;
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big + big, SimDuration::from_nanos(u64::MAX));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn since_helpers() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(5);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(2)));
    }
}
