//! Fixture corpus: every rule has at least one failing and one passing
//! fixture, and the workspace itself must be lint-clean.
//!
//! Fixtures live under `tests/fixtures/{bad,good}/`; the scanner's
//! directory walker skips any `fixtures` directory, so the bad ones
//! never trip the self-audit. Each fixture is linted under a *pretend*
//! workspace-relative path (the rules scope by path), listed in
//! [`PRETEND_PATHS`].

use speakup_lint::{lint_source, Diagnostic};
use std::path::Path;

/// Fixture stem → the workspace-relative path it pretends to live at.
const PRETEND_PATHS: &[(&str, &str)] = &[
    ("wall_clock", "crates/net/src/wall_clock.rs"),
    ("hash_iter", "crates/core/src/hash_iter.rs"),
    ("entropy_rng", "crates/exp/src/entropy_rng.rs"),
    ("cast", "crates/net/src/cast.rs"),
    ("forbid_unsafe", "crates/fake/src/lib.rs"),
    ("unwrap", "crates/core/src/unwrap.rs"),
    ("annotation", "crates/net/src/annotation.rs"),
    ("fault_module", "crates/net/src/fault_module.rs"),
];

fn lint_fixture(kind: &str, stem: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(format!("{stem}.rs"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    let rel = PRETEND_PATHS
        .iter()
        .find(|(s, _)| *s == stem)
        .unwrap_or_else(|| panic!("no pretend path for fixture {stem}"))
        .1;
    lint_source(rel, &src)
}

fn rule_lines(diags: &[Diagnostic]) -> Vec<(&str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn bad_wall_clock_flags_every_instant() {
    let d = lint_fixture("bad", "wall_clock");
    assert_eq!(rule_lines(&d), vec![("wall-clock", 2), ("wall-clock", 3)]);
}

#[test]
fn bad_hash_iter_flags_for_in_and_retain() {
    let d = lint_fixture("bad", "hash_iter");
    assert_eq!(rule_lines(&d), vec![("hash-iter", 10), ("hash-iter", 17)]);
}

#[test]
fn bad_entropy_rng_flags_thread_rng() {
    let d = lint_fixture("bad", "entropy_rng");
    assert_eq!(rule_lines(&d), vec![("entropy-rng", 2)]);
}

#[test]
fn bad_cast_flags_bare_as() {
    let d = lint_fixture("bad", "cast");
    assert_eq!(rule_lines(&d), vec![("cast", 2)]);
}

#[test]
fn bad_forbid_unsafe_flags_missing_attr_and_unsafe_block() {
    let d = lint_fixture("bad", "forbid_unsafe");
    assert_eq!(
        rule_lines(&d),
        vec![("forbid-unsafe", 1), ("forbid-unsafe", 4)]
    );
}

#[test]
fn bad_unwrap_flags_bare_unwrap() {
    let d = lint_fixture("bad", "unwrap");
    assert_eq!(rule_lines(&d), vec![("unwrap", 2)]);
}

#[test]
fn bad_annotation_unknown_rule_and_missing_reason_do_not_suppress() {
    let d = lint_fixture("bad", "annotation");
    assert_eq!(
        rule_lines(&d),
        vec![
            ("annotation", 2),
            ("cast", 3),
            ("annotation", 7),
            ("cast", 8),
        ]
    );
}

#[test]
fn bad_fault_module_flags_entropy_wall_clock_cast_and_hash_iter() {
    // A fault-injection module is tempted by exactly these four: seeding
    // from entropy, wall-clock onsets, bare casts of elapsed time, and
    // iterating an unordered map of downed entities.
    let d = lint_fixture("bad", "fault_module");
    assert_eq!(
        rule_lines(&d),
        vec![
            ("entropy-rng", 11),
            ("wall-clock", 16),
            ("cast", 17),
            ("hash-iter", 22),
        ]
    );
}

/// The real fault-path modules — net-layer schedule/injection, the
/// digest staleness protocol, and the exp-layer failover wiring — stay
/// individually lint-clean, not just absorbed into the workspace sweep.
#[test]
fn fault_modules_are_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    for rel in [
        "crates/net/src/fault.rs",
        "crates/core/src/thinner/digest.rs",
        "crates/exp/src/scenario.rs",
        "crates/exp/src/agents/thinner.rs",
        "crates/exp/src/runner.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel))
            .unwrap_or_else(|e| panic!("reading {rel}: {e}"));
        let d = lint_source(rel, &src);
        assert!(
            d.is_empty(),
            "{rel} has lint violations: {:?}",
            rule_lines(&d)
        );
    }
}

#[test]
fn good_fixtures_are_silent() {
    for (stem, _) in PRETEND_PATHS {
        let d = lint_fixture("good", stem);
        assert!(
            d.is_empty(),
            "good/{stem}.rs should be clean, got: {:?}",
            rule_lines(&d)
        );
    }
}

#[test]
fn diagnostics_render_with_path_line_severity_and_rule() {
    let d = lint_fixture("bad", "unwrap");
    assert_eq!(d.len(), 1);
    let line = d[0].to_string();
    assert!(
        line.starts_with("crates/core/src/unwrap.rs:2: error [unwrap]"),
        "unexpected rendering: {line}"
    );
}

/// The tentpole acceptance check: the workspace is lint-clean. Runs the
/// same scan as the `speakup-lint` binary and the CI step.
#[test]
fn workspace_self_audit_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let diags = speakup_lint::lint_workspace(root).expect("scanning the workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        speakup_lint::render_report(&diags)
    );
}
