use std::collections::HashMap;

pub struct Table {
    rows: HashMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        let mut s = 0;
        for (_k, v) in &self.rows {
            s += v;
        }
        s
    }

    pub fn drop_zeros(&mut self) {
        self.rows.retain(|_, v| *v != 0);
    }
}
