// Deterministic lib code reading the wall clock.
pub fn stamp() -> std::time::Instant {
    Instant::now()
}
