//! A fault schedule built every way the determinism rules forbid —
//! each violation here is what `crates/net/src/fault.rs` must never do.
use std::collections::HashMap;

pub struct FlakySchedule {
    pub down_until: HashMap<u64, u64>,
}

impl FlakySchedule {
    pub fn entropy_seed() -> u64 {
        let mut rng = rand::thread_rng();
        rng.next_u64()
    }

    pub fn wall_clock_onset() -> u64 {
        let started = std::time::Instant::now();
        started.elapsed().as_nanos() as u64
    }

    pub fn total_outage(&self) -> u64 {
        let mut sum = 0;
        for (_link, until) in &self.down_until {
            sum += until;
        }
        sum
    }
}
