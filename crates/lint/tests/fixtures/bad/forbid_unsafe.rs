//! A lib root missing the forbid attribute, with an unsafe block.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
