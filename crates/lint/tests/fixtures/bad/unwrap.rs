pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
