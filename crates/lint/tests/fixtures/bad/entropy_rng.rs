pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
