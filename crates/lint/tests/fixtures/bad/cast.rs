pub fn truncate(x: u64) -> u32 {
    x as u32
}
