pub fn truncate(x: u64) -> u32 {
    // lint: allow(casts) — misspelled rule name
    x as u32
}

pub fn shrink(x: u64) -> u16 {
    // lint: allow(cast)
    x as u16
}
