pub fn roll(seed: u64) -> u32 {
    let mut rng = Pcg32::new(seed, 7);
    rng.next_u32()
}
