pub fn head(v: &[u32]) -> u32 {
    *v.first().expect("invariant: callers pass non-empty slices")
}
