#![forbid(unsafe_code)]
//! A lib root carrying the required attribute.

pub fn safe() -> u8 {
    0
}
