pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

pub fn narrow(x: u64) -> u32 {
    u32::try_from(x).expect("invariant: callers pass small ids")
}

pub fn packed(x: u64) -> u64 {
    // lint: allow(cast) — masked to 8 bits, never truncates
    (x & 0xff) as u8 as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast() {
        assert_eq!(3u64 as u32, 3);
    }
}
