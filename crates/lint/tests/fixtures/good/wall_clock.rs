// Sim time, not wall time; a test module may measure itself.
pub fn stamp(now: SimTime) -> SimTime {
    now
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let _t = std::time::Instant::now();
    }
}
