pub fn low_bits(x: u64) -> u32 {
    // lint: allow(cast) — intentionally keeps the low 32 bits
    x as u32
}
