use std::collections::HashMap;

pub struct Table {
    rows: HashMap<u64, u64>,
}

impl Table {
    // Point lookups never observe iteration order.
    pub fn get(&self, k: u64) -> Option<u64> {
        self.rows.get(&k).copied()
    }

    pub fn put(&mut self, k: u64, v: u64) {
        self.rows.insert(k, v);
    }

    pub fn size(&self) -> usize {
        self.rows.len()
    }
}
