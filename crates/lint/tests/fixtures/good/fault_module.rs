//! The same schedule the deterministic way: location-keyed PCG streams
//! derived from the run seed, simulated-time onsets, ordered maps.
use std::collections::BTreeMap;

pub struct FaultSchedule {
    pub down_until: BTreeMap<u64, u64>,
}

impl FaultSchedule {
    // One stream per faulted entity: the schedule is a pure function of
    // (seed, entity), independent of sharding or host.
    pub fn per_link_stream(seed: u64, link: u64) -> Pcg32 {
        Pcg32::new(seed, link)
    }

    pub fn total_outage(&self) -> u64 {
        self.down_until.values().sum()
    }
}
