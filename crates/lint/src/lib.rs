#![forbid(unsafe_code)]
//! `speakup-lint` — the workspace's determinism-audit static analysis.
//!
//! The engine promises byte-identical reports at every `--shards K`.
//! Goldens and proptest oracles check that promise dynamically; this
//! crate checks its preconditions statically, on every `cargo test` and
//! as a blocking CI step, so a stray `HashMap` iteration or wall-clock
//! read fails in seconds instead of after a golden run. See
//! [`rules::RULES`] for the rule set and the README's "Static analysis
//! & determinism audit" section for the annotation syntax.

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, Diagnostic, RuleInfo, Severity, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, vendored stand-ins, VCS
/// metadata, golden reports, and the lint fixtures themselves (which
/// exist to violate the rules).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "golden", "fixtures"];

/// Collect every `.rs` file under `root` in a deterministic (sorted)
/// order — the lint tool must itself be reproducible, and `read_dir`
/// order is OS-dependent.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every source file under `root` (a workspace checkout). Returns
/// all diagnostics, sorted by path then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        out.extend(lint_source(&rel, &src));
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(out)
}

/// Ascend from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the binary finds the workspace root
/// when invoked without `--root`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render diagnostics as the stable one-line-each report format used by
/// the CLI and the CI artifact.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&d.to_string());
        s.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if diags.is_empty() {
        s.push_str("lint: clean (0 diagnostics)\n");
    } else {
        s.push_str(&format!("lint: {errors} error(s), {warnings} warning(s)\n"));
    }
    s
}

/// Render diagnostics as a JSON array (hand-rolled; no serde in the
/// offline environment).
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}{}\n",
            d.rule,
            d.severity,
            esc(&d.path),
            d.line,
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

/// Whether a diagnostic list should fail the run.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}
