#![forbid(unsafe_code)]
//! `speakup-lint` — scan the workspace for determinism-rule violations.
//!
//! Exit status: 0 when clean (or warnings only), 1 on any error-severity
//! diagnostic, 2 on usage/IO failure.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
speakup-lint — determinism-audit static analysis over the workspace

USAGE:
    speakup-lint [--root <dir>] [--json]
    speakup-lint --rules

OPTIONS:
    --root <dir>   Workspace root to scan (default: ascend from cwd to
                   the first Cargo.toml containing [workspace])
    --json         Emit diagnostics as a JSON array instead of text
    --rules        List the rule set and exit
    --help         Show this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("error: --root requires a directory\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => json = true,
            "--rules" => {
                for r in speakup_lint::RULES {
                    println!("{:<14} {:<8} {}", r.id, r.severity.to_string(), r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match speakup_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match speakup_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", speakup_lint::render_json(&diags));
    } else {
        print!("{}", speakup_lint::render_report(&diags));
    }

    if speakup_lint::has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
