//! A minimal Rust lexer for the determinism-audit scanner.
//!
//! Produces a flat token stream (identifiers, single-char punctuation,
//! literals, lifetimes) plus the comment text per line — enough for the
//! pattern rules in [`crate::rules`] and for parsing `lint: allow(...)`
//! annotations, without a full parser or any external dependency. The
//! lexer's one hard job is never to mistake comment or string contents
//! for code: a `HashMap.iter()` inside a doc example must not trip a
//! rule, and an `unwrap()` inside a string literal is data, not code.

/// What a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `as`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string/char/number literal, kept as one opaque token.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token: kind plus byte range into the source and a 1-based line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of the first character.
    pub line: u32,
}

/// A comment's text (markers stripped) and the line it starts on.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// Comment body, without the `//`/`/*`/`*/` markers.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (line and block alike).
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: the
/// scanner runs on code that already compiles, so this is best-effort
/// robustness, not validation.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Track newlines inside a consumed span.
    fn count_lines(b: &[u8], from: usize, to: usize) -> u32 {
        let mut n = 0;
        let mut j = from;
        while j < to {
            if b[j] == b'\n' {
                n += 1;
            }
            j += 1;
        }
        n
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..j].to_string(),
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let at = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: at,
                    text: src[start..end].to_string(),
                });
                i = j;
            }
            b'"' => {
                let start = i;
                let at = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i = (i + 2).min(b.len()),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    start,
                    end: i,
                    line: at,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start = i;
                let at = line;
                // Skip the prefix letters (`r`, `b`, `br`).
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    i += 1;
                }
                if b.get(i) == Some(&b'#') || b.get(i) == Some(&b'"') {
                    let mut hashes = 0usize;
                    while b.get(i) == Some(&b'#') {
                        hashes += 1;
                        i += 1;
                    }
                    if b.get(i) == Some(&b'"') {
                        i += 1;
                        // Consume until `"` followed by `hashes` hashes.
                        'scan: while i < b.len() {
                            if b[i] == b'"' {
                                let mut k = 0usize;
                                while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    i += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    } else if b.get(i) == Some(&b'\'') {
                        // `b'x'` byte char literal.
                        i += 1;
                        if b.get(i) == Some(&b'\\') {
                            i += 1;
                        }
                        i += 1;
                        if b.get(i) == Some(&b'\'') {
                            i += 1;
                        }
                    }
                }
                line += count_lines(b, start, i.min(b.len()));
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    start,
                    end: i.min(b.len()),
                    line: at,
                });
            }
            b'\'' => {
                let start = i;
                // Distinguish a char literal (`'a'`, `'\n'`) from a
                // lifetime (`'a`, `'static`): a lifetime's identifier is
                // not followed by a closing quote.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: consume to the closing quote.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        start,
                        end: i,
                        line,
                    });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j == i + 1 {
                        // Bare quote (shouldn't happen in valid code).
                        i += 1;
                    } else if b.get(j) == Some(&b'\'') {
                        // 'a' — a char literal.
                        i = j + 1;
                        out.tokens.push(Token {
                            kind: TokKind::Literal,
                            start,
                            end: i,
                            line,
                        });
                    } else {
                        // 'a — a lifetime.
                        i = j;
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            start,
                            end: i,
                            line,
                        });
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // `1.5` continues the literal; `1..x` and
                        // `1.min(..)` do not.
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b.get(i.wrapping_sub(1)), Some(&b'e') | Some(&b'E'))
                    {
                        // Exponent sign in `1e-5`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    start,
                    end: i,
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    start,
                    end: i,
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    start: i,
                    end: i + 1,
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts a raw/byte string (or byte char) rather
/// than a plain identifier beginning with `r`/`b`.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    // Only prefixes `r`, `b`, `br` count; `rb` is not a string prefix.
    if j - i == 2 && !(b[i] == b'b' && b[i + 1] == b'r') {
        return false;
    }
    match b.get(j) {
        Some(&b'"') => true,
        Some(&b'#') => {
            let mut k = j;
            while b.get(k) == Some(&b'#') {
                k += 1;
            }
            b.get(k) == Some(&b'"')
        }
        Some(&b'\'') => b[i] == b'b' && j - i == 1,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let l = lex(src);
        l.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// map.iter() here\nfn f() {} /* unwrap() */";
        let l = lex(src);
        assert_eq!(idents(src), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("map.iter()"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_are_opaque_literals() {
        let src = r#"let s = "Instant::now() .unwrap()"; let r = r#""#.to_string() + "\"x\"#;";
        assert_eq!(idents(&src), vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let l = lex(src);
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn lines_advance_through_block_comments() {
        let src = "/* a\nb\nc */\nfn f() {}";
        let l = lex(src);
        let f = l.tokens.first().expect("fn token");
        assert_eq!(f.line, 4);
    }

    #[test]
    fn numeric_literals_stop_before_method_calls() {
        let src = "let x = 1.min(2); let y = 1.5e-3;";
        assert_eq!(idents(src), vec!["let", "x", "min", "let", "y"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ fn g() {}";
        assert_eq!(idents(src), vec!["fn", "g"]);
    }
}
