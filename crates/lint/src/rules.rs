//! The determinism-audit rule set.
//!
//! Every rule turns one of the engine's run-time invariants (byte-identical
//! reports at every `--shards K`, reproducible allocation outcomes) into a
//! compile-time gate. Rules are lexical: they pattern-match the token
//! stream from [`crate::lexer`], scoped by workspace-relative path and by
//! whether a token sits inside a `#[cfg(test)] mod`. The escape hatch is
//! an annotation on the same or the preceding line:
//!
//! ```text
//! // lint: allow(<rule>) — <reason>
//! ```
//!
//! The reason is mandatory; an allow without one is itself a diagnostic
//! (`annotation`). Path allowlists (driver/bench/proxy code that may read
//! the wall clock, the PCG reference implementation) are centralized here
//! so a reviewer can see every hole in the fence in one screen.
//!
//! | rule          | invariant it guards                                   |
//! |---------------|-------------------------------------------------------|
//! | `wall-clock`  | no `Instant`/`SystemTime` in deterministic lib code   |
//! | `hash-iter`   | no order-dependent `HashMap`/`HashSet` iteration      |
//! | `entropy-rng` | no entropy-seeded RNG anywhere (location-keyed PCG)   |
//! | `cast`        | no bare `as` integer casts on `crates/net` lib code   |
//! | `forbid-unsafe` | every lib carries `#![forbid(unsafe_code)]`; no     |
//! |               | `unsafe` outside the bench tracking allocator         |
//! | `unwrap`      | no bare `unwrap()` in net/core (use `expect`)         |
//! | `annotation`  | every `lint: allow` names a real rule and a reason    |

use crate::lexer::{lex, Lexed, TokKind, Token};

/// How bad a diagnostic is. Every shipped rule is [`Severity::Error`];
/// the level exists so future advisory rules can ride the same pipe
/// without blocking CI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Fails the lint run (non-zero exit, blocking CI step).
    Error,
    /// Reported but does not fail the run.
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding: rule, severity, location, and a human message.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule id (`wall-clock`, `hash-iter`, ...).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--rules` output and the README.
pub struct RuleInfo {
    /// Rule id as used in diagnostics and `lint: allow(...)`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Severity of its diagnostics.
    pub severity: Severity,
}

/// Every rule the scanner knows, in documentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "no Instant/SystemTime in crates/net + crates/core lib code",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "hash-iter",
        summary: "no order-dependent HashMap/HashSet iteration in deterministic crates",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "entropy-rng",
        summary: "no entropy-seeded RNG anywhere; only location-keyed PCG constructors",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "cast",
        summary: "no bare `as` integer casts in crates/net lib code (try_from/From/typed ids)",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "forbid-unsafe",
        summary: "every workspace lib carries #![forbid(unsafe_code)]; no unsafe outside \
                  the bench tracking allocator",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "unwrap",
        summary: "no bare unwrap() in crates/net + crates/core (use expect(\"invariant: ...\"))",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "annotation",
        summary: "every `lint: allow(...)` names a known rule and carries a written reason",
        severity: Severity::Error,
    },
];

/// Whether `id` names a shipped rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

// ---------------------------------------------------------------------
// Path scoping. All paths are workspace-relative with `/` separators.
// ---------------------------------------------------------------------

/// Crates whose lib code must be bit-reproducible: the simulator and the
/// domain logic it drives. `exp` (driver), `bench`, and `proxy` (a real
/// network proxy, wall clock is its job) are deliberately outside.
fn is_deterministic_lib(rel: &str) -> bool {
    rel.starts_with("crates/net/src/") || rel.starts_with("crates/core/src/")
}

/// `crates/net` lib sources (the `cast` rule's scope).
fn is_net_lib(rel: &str) -> bool {
    rel.starts_with("crates/net/src/")
}

/// Path allowlist for `cast`: the PCG-32 reference implementation is
/// bit-twiddling by definition (O'Neill 2014, ported verbatim); its casts
/// are the algorithm, not id/time conversions.
fn cast_allowlisted(rel: &str) -> bool {
    rel == "crates/net/src/rng.rs"
}

/// Path allowlist for the `unsafe` half of `forbid-unsafe`: the bench
/// tracking allocator must implement `GlobalAlloc`, which is an `unsafe`
/// trait. It is the single sanctioned exception.
fn unsafe_allowlisted(rel: &str) -> bool {
    rel == "crates/bench/benches/engine_throughput.rs"
}

/// Whether `rel` is a workspace lib root that must carry
/// `#![forbid(unsafe_code)]`.
fn is_lib_root(rel: &str) -> bool {
    if rel == "src/harness.rs" {
        return true;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((_crate_dir, tail)) = rest.split_once('/') {
            return tail == "src/lib.rs";
        }
    }
    false
}

// ---------------------------------------------------------------------
// Annotations.
// ---------------------------------------------------------------------

/// A parsed `lint: allow(<rule>) — <reason>` annotation.
struct Allow {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// Extract allow annotations from the file's comments.
fn collect_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint: allow(") {
            let after = &rest[at + "lint: allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            // Prose describing the syntax (`allow(<rule>)`, `allow(...)`)
            // is not an annotation: only ident-shaped names count. A real
            // typo (`allow(casts)`) is still ident-shaped and still audited.
            if rule.is_empty()
                || !rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
            {
                rest = &after[close + 1..];
                continue;
            }
            let tail = &after[close + 1..];
            // The reason follows an optional separator (em dash, dash,
            // colon); anything non-empty counts as written justification.
            let reason = tail
                .trim_start()
                .trim_start_matches(['—', '–', '-', ':'])
                .trim();
            out.push(Allow {
                line: c.line,
                rule,
                has_reason: !reason.is_empty(),
            });
            rest = &after[close + 1..];
        }
    }
    out
}

// ---------------------------------------------------------------------
// Token-stream helpers.
// ---------------------------------------------------------------------

struct File<'a> {
    rel: &'a str,
    src: &'a str,
    toks: &'a [Token],
    /// Parallel to `toks`: inside a `#[cfg(test)] mod` body.
    in_test: Vec<bool>,
}

impl<'a> File<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        let t = self.toks.get(i)?;
        (t.kind == TokKind::Ident).then(|| &self.src[t.start..t.end])
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
    }

    /// Match a sequence of idents/puncts starting at `i`. Each pattern
    /// element is either a single punctuation char or an identifier.
    fn seq(&self, mut i: usize, pat: &[&str]) -> bool {
        for p in pat {
            let matched = if p.len() == 1 && !p.chars().next().is_some_and(char::is_alphanumeric) {
                self.punct(i, p.chars().next().expect("one char"))
            } else {
                self.ident(i) == Some(*p)
            };
            if !matched {
                return false;
            }
            i += 1;
        }
        true
    }

    fn line(&self, i: usize) -> u32 {
        self.toks[i].line
    }
}

/// Mark the tokens inside every `#[cfg(test)] mod ... { ... }` body.
///
/// Unit-test modules are exempt from the lib-code rules (`wall-clock`,
/// `cast`): a test may time itself or index with literals. A
/// `#[cfg(test)]` on anything other than a `mod` is *not* exempted —
/// stricter is safer, and the escape hatch documents intent.
fn mark_test_regions(f: &mut File<'_>) {
    let toks = f.toks;
    let mut i = 0usize;
    while i < toks.len() {
        // `# [ cfg ( test ) ]`
        if f.punct(i, '#') && f.punct(i + 1, '[') && f.ident(i + 2) == Some("cfg") {
            // Find the matching `]` of this attribute.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_test = false;
            while j < toks.len() && depth > 0 {
                if f.punct(j, '[') {
                    depth += 1;
                } else if f.punct(j, ']') {
                    depth -= 1;
                } else if f.ident(j) == Some("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_test {
                // Skip any further attributes between cfg(test) and the item.
                let mut k = j;
                while f.punct(k, '#') && f.punct(k + 1, '[') {
                    let mut d = 0usize;
                    k += 1;
                    loop {
                        if f.punct(k, '[') {
                            d += 1;
                        } else if f.punct(k, ']') {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        } else if k >= toks.len() {
                            break;
                        }
                        k += 1;
                    }
                }
                // `mod name {` — mark to the matching `}`.
                if f.ident(k) == Some("mod") {
                    let mut m = k;
                    while m < toks.len() && !f.punct(m, '{') {
                        m += 1;
                    }
                    let mut d = 0usize;
                    while m < toks.len() {
                        if f.punct(m, '{') {
                            d += 1;
                        } else if f.punct(m, '}') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        f.in_test[m] = true;
                        m += 1;
                    }
                    i = m;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------

/// D1 — `wall-clock`: `Instant` / `SystemTime` in deterministic lib code.
fn check_wall_clock(f: &File<'_>, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_lib(f.rel) {
        return;
    }
    for i in 0..f.toks.len() {
        if f.in_test[i] {
            continue;
        }
        let Some(w) = f.ident(i) else { continue };
        if w == "Instant" || w == "SystemTime" {
            out.push(diag(
                "wall-clock",
                f,
                i,
                format!(
                    "`{w}` in deterministic lib code: simulation logic must use `SimTime` \
                     (wall-clock reads make runs irreproducible)"
                ),
            ));
        }
    }
}

/// Methods whose results depend on a hash map's iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// D2 — `hash-iter`: order-dependent iteration over `HashMap`/`HashSet`
/// bindings in deterministic crates. Point lookups (`get`, `insert`,
/// `remove`, `contains_key`, `entry`, `len`) stay legal.
///
/// Detection is per-file and name-based: a binding is hash-typed if the
/// file declares it with a `HashMap`/`HashSet` type ascription or
/// initializes it from `HashMap::new`-style constructors. That misses a
/// map smuggled across files untyped — accepted, and documented in the
/// README: the conventions this codebase already follows (typed struct
/// fields) are exactly what the scanner sees.
fn check_hash_iter(f: &File<'_>, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_lib(f.rel) {
        return;
    }
    // Pass 1: names bound to hash containers.
    let mut names: Vec<&str> = Vec::new();
    for i in 0..f.toks.len() {
        let Some(w) = f.ident(i) else { continue };
        if w != "HashMap" && w != "HashSet" {
            continue;
        }
        // Walk back over a path (`std :: collections ::`) and an optional
        // `&`/`mut` to the `:` or `=` that binds a name.
        let mut j = i;
        while j >= 2 && f.punct(j - 1, ':') && f.punct(j - 2, ':') && f.ident(j - 3).is_some() {
            j -= 3;
        }
        let mut k = j;
        while k >= 1 && (f.punct(k - 1, '&') || f.ident(k - 1) == Some("mut")) {
            k -= 1;
        }
        let binder = if k >= 1 && f.punct(k - 1, ':') && !f.punct(k.wrapping_sub(2), ':') {
            // `name : HashMap<..>` (type ascription, not a `::` path).
            f.ident(k.wrapping_sub(2))
        } else if f.punct(k.wrapping_sub(1), '=') {
            // `let [mut] name = HashMap::new()`.
            let mut m = k.wrapping_sub(2);
            if f.ident(m) == Some("mut") {
                m = m.wrapping_sub(1);
            }
            f.ident(m)
        } else {
            None
        };
        if let Some(name) = binder {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    if names.is_empty() {
        return;
    }
    // Pass 2: iteration over a tracked name.
    for i in 0..f.toks.len() {
        // `name . method (` — receiver is the ident right before the dot.
        if f.punct(i, '.') {
            let recv = f.ident(i.wrapping_sub(1));
            let m = f.ident(i + 1);
            if let (Some(recv), Some(m)) = (recv, m) {
                if names.contains(&recv) && HASH_ITER_METHODS.contains(&m) && f.punct(i + 2, '(') {
                    out.push(diag(
                        "hash-iter",
                        f,
                        i,
                        format!(
                            "order-dependent `.{m}()` over hash-typed `{recv}`: iteration order \
                             varies across runs — use BTreeMap/an ordered slab, or justify with \
                             an allow annotation"
                        ),
                    ));
                }
            }
        }
        // `for pat in [&][mut] [self .] name {`
        if f.ident(i) == Some("for") {
            let mut j = i + 1;
            // Skip the (possibly destructuring) pattern up to `in`.
            let mut guard = 0;
            while j < f.toks.len() && f.ident(j) != Some("in") && guard < 64 {
                j += 1;
                guard += 1;
            }
            if f.ident(j) != Some("in") {
                continue;
            }
            let mut k = j + 1;
            while f.punct(k, '&') || f.ident(k) == Some("mut") {
                k += 1;
            }
            // A dotted chain: `name` or `self . name`.
            let mut last = None;
            while let Some(w) = f.ident(k) {
                last = Some(w);
                if f.punct(k + 1, '.') && f.ident(k + 2).is_some() {
                    k += 2;
                } else {
                    k += 1;
                    break;
                }
            }
            if let Some(name) = last {
                if names.contains(&name) && f.punct(k, '{') {
                    out.push(diag(
                        "hash-iter",
                        f,
                        k - 1,
                        format!(
                            "order-dependent `for ... in` over hash-typed `{name}`: iteration \
                             order varies across runs — use BTreeMap/an ordered slab, or justify \
                             with an allow annotation"
                        ),
                    ));
                }
            }
        }
    }
}

/// D3 — `entropy-rng`: entropy-seeded RNG constructors, anywhere. The
/// simulator's only randomness source is the location-keyed `Pcg32`.
fn check_entropy_rng(f: &File<'_>, out: &mut Vec<Diagnostic>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "ThreadRng",
        "getrandom",
    ];
    for i in 0..f.toks.len() {
        let Some(w) = f.ident(i) else { continue };
        if BANNED.contains(&w) {
            out.push(diag(
                "entropy-rng",
                f,
                i,
                format!(
                    "entropy-seeded RNG `{w}`: every stream must be a location-keyed \
                     `Pcg32::new(seed, stream)` so reruns reproduce byte-identically"
                ),
            ));
        }
    }
}

/// Integer targets a bare `as` cast may truncate or resize into.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// D4 — `cast`: bare `as` integer casts in `crates/net` lib code. Ids and
/// times are `u32`/`u64` newtypes there; a silent truncation reorders
/// events or aliases flows. Use `From`/`TryFrom`, the `identifier!`
/// accessors (`Ident::index`), or annotate deliberate bit-packing.
fn check_cast(f: &File<'_>, out: &mut Vec<Diagnostic>) {
    if !is_net_lib(f.rel) || cast_allowlisted(f.rel) {
        return;
    }
    for i in 0..f.toks.len() {
        if f.in_test[i] {
            continue;
        }
        if f.ident(i) != Some("as") {
            continue;
        }
        if let Some(ty) = f.ident(i + 1) {
            if INT_TYPES.contains(&ty) {
                out.push(diag(
                    "cast",
                    f,
                    i,
                    format!(
                        "bare `as {ty}` cast in net lib code: use `{ty}::try_from(..)` / \
                         `From`, a typed-id accessor, or annotate the bit-level intent"
                    ),
                ));
            }
        }
    }
}

/// D5 — `forbid-unsafe`: every workspace lib root must carry
/// `#![forbid(unsafe_code)]`, and no file outside the bench tracking
/// allocator may contain `unsafe` at all.
fn check_forbid_unsafe(f: &File<'_>, out: &mut Vec<Diagnostic>) {
    if is_lib_root(f.rel) {
        let mut found = false;
        for i in 0..f.toks.len() {
            if f.punct(i, '#')
                && f.punct(i + 1, '!')
                && f.punct(i + 2, '[')
                && f.seq(i + 3, &["forbid", "(", "unsafe_code", ")", "]"])
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(Diagnostic {
                rule: "forbid-unsafe",
                severity: Severity::Error,
                path: f.rel.to_string(),
                line: 1,
                message: "workspace lib root without `#![forbid(unsafe_code)]`: every lib \
                          asserts the no-unsafe discipline at the root"
                    .to_string(),
            });
        }
    }
    if unsafe_allowlisted(f.rel) {
        return;
    }
    for i in 0..f.toks.len() {
        if f.ident(i) == Some("unsafe") {
            out.push(diag(
                "forbid-unsafe",
                f,
                i,
                "`unsafe` outside the allowlisted bench tracking allocator".to_string(),
            ));
        }
    }
}

/// D6 — `unwrap`: bare `.unwrap()` in net/core sources (tests included —
/// an `expect` message is the failure's first line of documentation).
fn check_unwrap(f: &File<'_>, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_lib(f.rel) {
        return;
    }
    for i in 0..f.toks.len() {
        if f.punct(i, '.') && f.ident(i + 1) == Some("unwrap") && f.punct(i + 2, '(') {
            out.push(diag(
                "unwrap",
                f,
                i,
                "bare `unwrap()`: state the violated invariant with \
                 `expect(\"invariant: ...\")`, or annotate why the panic is the contract"
                    .to_string(),
            ));
        }
    }
}

fn diag(rule: &'static str, f: &File<'_>, tok: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        path: f.rel.to_string(),
        line: f.line(tok.min(f.toks.len().saturating_sub(1))),
        message,
    }
}

/// Lint one source file. `rel` must be the workspace-relative path with
/// `/` separators — rules scope by it.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mut f = File {
        rel,
        src,
        toks: &lexed.tokens,
        in_test: vec![false; lexed.tokens.len()],
    };
    mark_test_regions(&mut f);

    let mut found = Vec::new();
    check_wall_clock(&f, &mut found);
    check_hash_iter(&f, &mut found);
    check_entropy_rng(&f, &mut found);
    check_cast(&f, &mut found);
    check_forbid_unsafe(&f, &mut found);
    check_unwrap(&f, &mut found);

    // Apply the annotation escape hatch, then audit the annotations
    // themselves.
    let allows = collect_allows(&lexed);
    let mut out: Vec<Diagnostic> = found
        .into_iter()
        .filter(|d| {
            !allows.iter().any(|a| {
                a.rule == d.rule && a.has_reason && (a.line == d.line || a.line + 1 == d.line)
            })
        })
        .collect();
    for a in &allows {
        if !is_known_rule(&a.rule) {
            out.push(Diagnostic {
                rule: "annotation",
                severity: Severity::Error,
                path: rel.to_string(),
                line: a.line,
                message: format!(
                    "`lint: allow({})` names no known rule (known: {})",
                    a.rule,
                    RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                ),
            });
        } else if !a.has_reason {
            out.push(Diagnostic {
                rule: "annotation",
                severity: Severity::Error,
                path: rel.to_string(),
                line: a.line,
                message: format!(
                    "`lint: allow({})` without a written reason: append `— <why this is sound>`",
                    a.rule
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
