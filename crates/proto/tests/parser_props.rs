//! Property tests for the HTTP parser: arbitrary TCP segmentation of a
//! valid request stream must never change the parsed result — the exact
//! invariant the thinner relies on when counting payment bytes that
//! arrive in arbitrary-sized reads.

use bytes::BytesMut;
use proptest::prelude::*;
use speakup_proto::http::{ParseEvent, RequestParser};
use speakup_proto::message::{encode_payment_head, encode_service_request};

/// A digest of a parse: (heads, total body bytes, completes).
fn digest(wire: &[u8], cuts: &[usize]) -> (Vec<String>, u64, usize) {
    let mut parser = RequestParser::new();
    let mut heads = Vec::new();
    let mut body = 0u64;
    let mut completes = 0usize;
    let mut consume = |parser: &mut RequestParser| {
        while let Some(ev) = parser.next_event().expect("valid stream") {
            match ev {
                ParseEvent::Head(h) => heads.push(format!("{:?} {}", h.method, h.target)),
                ParseEvent::BodyChunk(n) => body += n,
                ParseEvent::Complete => completes += 1,
            }
        }
    };
    let mut at = 0usize;
    for &cut in cuts {
        let cut = cut % (wire.len() + 1);
        let (lo, hi) = (at.min(cut), at.max(cut));
        // Feed [at..cut] if it moves forward; otherwise skip (the sorted
        // positions below make this always forward).
        let _ = (lo, hi);
        if cut > at {
            parser.push(&wire[at..cut]);
            consume(&mut parser);
            at = cut;
        }
    }
    if at < wire.len() {
        parser.push(&wire[at..]);
        consume(&mut parser);
    }
    (heads, body, completes)
}

/// Build a pipelined stream of service requests and payment POSTs.
fn build_stream(ids: &[(u64, u16)]) -> Vec<u8> {
    let mut wire = BytesMut::new();
    for &(id, body_len) in ids {
        if body_len == 0 {
            wire.extend_from_slice(&encode_service_request(id));
        } else {
            wire.extend_from_slice(&encode_payment_head(id, body_len as u64));
            wire.extend_from_slice(&vec![0xA5u8; body_len as usize]);
        }
    }
    wire.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segmentation_never_changes_the_parse(
        ids in proptest::collection::vec((0u64..1_000_000, 0u16..4096), 1..8),
        mut cuts in proptest::collection::vec(0usize..100_000, 0..64),
    ) {
        let wire = build_stream(&ids);
        cuts.sort_unstable();
        let whole = digest(&wire, &[]);
        let pieces = digest(&wire, &cuts);
        prop_assert_eq!(&whole, &pieces, "segmentation changed the parse");
        // And the parse itself matches what we encoded.
        let total_body: u64 = ids.iter().map(|&(_, b)| b as u64).sum();
        prop_assert_eq!(whole.1, total_body);
        prop_assert_eq!(whole.0.len(), ids.len());
        prop_assert_eq!(whole.2, ids.len());
    }

    #[test]
    fn byte_by_byte_equals_one_shot(
        id in 0u64..1_000_000,
        body_len in 0u16..2048,
    ) {
        let wire = build_stream(&[(id, body_len)]);
        let cuts: Vec<usize> = (1..wire.len()).collect();
        let whole = digest(&wire, &[]);
        let trickled = digest(&wire, &cuts);
        prop_assert_eq!(whole, trickled);
    }
}
