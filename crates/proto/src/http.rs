//! A small HTTP/1.1 subset: request parsing and response serialization.
//!
//! Supports exactly what the speak-up prototype exchange needs (§6):
//! `GET`/`POST` request lines, headers, and `Content-Length` bodies, with
//! *incremental* parsing — the thinner must count payment-body bytes as
//! they arrive on the wire, not when the POST completes, so the parser
//! reports body progress chunk by chunk. Chunked transfer encoding,
//! trailers, and HTTP/2 are out of scope.

use bytes::{Bytes, BytesMut};
use std::fmt;

/// Request method. Only what the prototype uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// `GET` — the actual service request.
    Get,
    /// `POST` — the payment channel.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// An ordered multimap of headers with case-insensitive lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeaderMap(Vec<(String, String)>);

impl HeaderMap {
    /// Empty header set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.0.push((name.into(), value.into()));
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All headers in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no headers.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A parsed request line plus headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestHead {
    /// The request method.
    pub method: Method,
    /// The request target (path and query), e.g. `/payment?id=7`.
    pub target: String,
    /// Headers.
    pub headers: HeaderMap,
    /// Declared body length (0 if no `Content-Length`).
    pub content_length: u64,
}

/// Parse errors. The connection should be closed on any of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Request line was not `METHOD target HTTP/1.x`.
    BadRequestLine,
    /// Unsupported method.
    BadMethod,
    /// Malformed header line.
    BadHeader,
    /// `Content-Length` was not a number.
    BadContentLength,
    /// Head exceeded the maximum allowed size.
    HeadTooLarge,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadMethod => "unsupported method",
            ParseError::BadHeader => "malformed header",
            ParseError::BadContentLength => "bad Content-Length",
            ParseError::HeadTooLarge => "request head too large",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Incremental parse output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseEvent {
    /// The head (request line + headers) finished parsing.
    Head(RequestHead),
    /// `n` more body bytes arrived (the payment-counting hook).
    BodyChunk(u64),
    /// The message (head + declared body) is complete; the parser has
    /// reset and will parse the next pipelined request.
    Complete,
}

#[derive(Debug)]
enum State {
    Head,
    Body { remaining: u64 },
}

/// Incremental request parser. Feed bytes with [`RequestParser::push`],
/// drain events with [`RequestParser::next_event`].
#[derive(Debug)]
pub struct RequestParser {
    buf: BytesMut,
    state: State,
    max_head: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser with an 8 KiB head limit.
    pub fn new() -> Self {
        RequestParser {
            buf: BytesMut::new(),
            state: State::Head,
            max_head: 8 * 1024,
        }
    }

    /// Append raw bytes from the wire.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next parse event, if the buffer holds one.
    pub fn next_event(&mut self) -> Result<Option<ParseEvent>, ParseError> {
        match self.state {
            State::Head => {
                let Some(head_end) = find_head_end(&self.buf) else {
                    if self.buf.len() > self.max_head {
                        return Err(ParseError::HeadTooLarge);
                    }
                    return Ok(None);
                };
                if head_end > self.max_head {
                    return Err(ParseError::HeadTooLarge);
                }
                let head_bytes = self.buf.split_to(head_end);
                let head = parse_head(&head_bytes)?;
                self.state = State::Body {
                    remaining: head.content_length,
                };
                Ok(Some(ParseEvent::Head(head)))
            }
            State::Body { remaining } => {
                if remaining == 0 {
                    self.state = State::Head;
                    return Ok(Some(ParseEvent::Complete));
                }
                if self.buf.is_empty() {
                    return Ok(None);
                }
                let take = (self.buf.len() as u64).min(remaining);
                let _ = self.buf.split_to(take as usize);
                self.state = State::Body {
                    remaining: remaining - take,
                };
                Ok(Some(ParseEvent::BodyChunk(take)))
            }
        }
    }
}

/// Find the index just past the `\r\n\r\n` terminating the head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_head(raw: &[u8]) -> Result<RequestHead, ParseError> {
    let text = std::str::from_utf8(raw).map_err(|_| ParseError::BadRequestLine)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(_) => return Err(ParseError::BadMethod),
        None => return Err(ParseError::BadRequestLine),
    };
    let target = parts.next().ok_or(ParseError::BadRequestLine)?.to_string();
    if target.is_empty() || !target.starts_with('/') {
        return Err(ParseError::BadRequestLine);
    }
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(ParseError::BadRequestLine);
    }
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue; // trailing blank from the final CRLFCRLF
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadHeader);
        }
        headers.push(name, value.trim());
    }
    let content_length = match headers.get("content-length") {
        Some(v) => v.parse::<u64>().map_err(|_| ParseError::BadContentLength)?,
        None => 0,
    };
    Ok(RequestHead {
        method,
        target,
        headers,
        content_length,
    })
}

/// Serialize a request head (plus an optional body for small requests).
pub fn write_request(method: Method, target: &str, headers: &HeaderMap, body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(256 + body.len());
    out.extend_from_slice(format!("{method} {target} HTTP/1.1\r\n").as_bytes());
    for (n, v) in headers.iter() {
        out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    if !body.is_empty() && headers.get("content-length").is_none() {
        out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out.freeze()
}

/// Serialize a response.
pub fn write_response(status: u16, reason: &str, headers: &HeaderMap, body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(256 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    for (n, v) in headers.iter() {
        out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out.freeze()
}

/// A parsed response head (for the client side of the proxy tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// Headers.
    pub headers: HeaderMap,
    /// Declared body length.
    pub content_length: u64,
}

/// Parse a response head from a buffer known to contain the full head.
/// Returns the head and the number of bytes it consumed.
pub fn parse_response_head(buf: &[u8]) -> Result<Option<(ResponseHead, usize)>, ParseError> {
    let Some(end) = find_head_end(buf) else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&buf[..end]).map_err(|_| ParseError::BadRequestLine)?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine);
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(ParseError::BadRequestLine)?;
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        headers.push(name, value.trim());
    }
    let content_length = match headers.get("content-length") {
        Some(v) => v.parse::<u64>().map_err(|_| ParseError::BadContentLength)?,
        None => 0,
    };
    Ok(Some((
        ResponseHead {
            status,
            headers,
            content_length,
        },
        end,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut RequestParser) -> Vec<ParseEvent> {
        let mut evs = Vec::new();
        while let Some(e) = p.next_event().expect("no parse error") {
            evs.push(e);
        }
        evs
    }

    #[test]
    fn parses_simple_get() {
        let mut p = RequestParser::new();
        p.push(b"GET /service?id=7 HTTP/1.1\r\nHost: x\r\n\r\n");
        let evs = drain(&mut p);
        assert_eq!(evs.len(), 2);
        match &evs[0] {
            ParseEvent::Head(h) => {
                assert_eq!(h.method, Method::Get);
                assert_eq!(h.target, "/service?id=7");
                assert_eq!(h.headers.get("host"), Some("x"));
                assert_eq!(h.content_length, 0);
            }
            other => panic!("expected head, got {other:?}"),
        }
        assert_eq!(evs[1], ParseEvent::Complete);
    }

    #[test]
    fn incremental_head_parsing() {
        let mut p = RequestParser::new();
        p.push(b"GET /a HT");
        assert_eq!(drain(&mut p), vec![]);
        p.push(b"TP/1.1\r\nA: b\r\n");
        assert_eq!(drain(&mut p), vec![]);
        p.push(b"\r\n");
        let evs = drain(&mut p);
        assert!(matches!(evs[0], ParseEvent::Head(_)));
        assert_eq!(evs[1], ParseEvent::Complete);
    }

    #[test]
    fn body_reported_in_chunks() {
        let mut p = RequestParser::new();
        p.push(b"POST /payment?id=3 HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
        let evs = drain(&mut p);
        assert!(matches!(&evs[0], ParseEvent::Head(h) if h.content_length == 10));
        assert_eq!(evs.len(), 1, "no body yet");
        p.push(b"abcd");
        assert_eq!(drain(&mut p), vec![ParseEvent::BodyChunk(4)]);
        p.push(b"efghij");
        assert_eq!(
            drain(&mut p),
            vec![ParseEvent::BodyChunk(6), ParseEvent::Complete]
        );
    }

    #[test]
    fn pipelined_requests() {
        let mut p = RequestParser::new();
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let evs = drain(&mut p);
        assert_eq!(evs.len(), 4);
        assert!(matches!(&evs[0], ParseEvent::Head(h) if h.target == "/a"));
        assert_eq!(evs[1], ParseEvent::Complete);
        assert!(matches!(&evs[2], ParseEvent::Head(h) if h.target == "/b"));
        assert_eq!(evs[3], ParseEvent::Complete);
    }

    #[test]
    fn body_bytes_beyond_length_belong_to_next_request() {
        let mut p = RequestParser::new();
        p.push(b"POST /p HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /q HTTP/1.1\r\n\r\n");
        let evs = drain(&mut p);
        assert!(matches!(&evs[0], ParseEvent::Head(h) if h.target == "/p"));
        assert_eq!(evs[1], ParseEvent::BodyChunk(3));
        assert_eq!(evs[2], ParseEvent::Complete);
        assert!(matches!(&evs[3], ParseEvent::Head(h) if h.target == "/q"));
    }

    #[test]
    fn rejects_bad_method() {
        let mut p = RequestParser::new();
        p.push(b"BREW /coffee HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_event(), Err(ParseError::BadMethod));
    }

    #[test]
    fn rejects_bad_request_lines() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /a\r\n\r\n",
            b"GET /a HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
        ] {
            let mut p = RequestParser::new();
            p.push(raw);
            assert!(p.next_event().is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn rejects_bad_content_length() {
        let mut p = RequestParser::new();
        p.push(b"POST /p HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
        assert_eq!(p.next_event(), Err(ParseError::BadContentLength));
    }

    #[test]
    fn rejects_oversized_head() {
        let mut p = RequestParser::new();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
        p.push(huge.as_bytes());
        assert_eq!(p.next_event(), Err(ParseError::HeadTooLarge));
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let mut h = HeaderMap::new();
        h.push("X-SpeakUp-Price", "125000");
        assert_eq!(h.get("x-speakup-price"), Some("125000"));
        assert_eq!(h.get("X-SPEAKUP-PRICE"), Some("125000"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn response_roundtrip() {
        let mut h = HeaderMap::new();
        h.push("X-SpeakUp", "encourage");
        let wire = write_response(200, "OK", &h, b"hello");
        let (head, consumed) = parse_response_head(&wire).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.headers.get("x-speakup"), Some("encourage"));
        assert_eq!(head.content_length, 5);
        assert_eq!(&wire[consumed..], b"hello");
    }

    #[test]
    fn request_roundtrip() {
        let wire = write_request(Method::Post, "/payment?id=9", &HeaderMap::new(), b"12345");
        let mut p = RequestParser::new();
        p.push(&wire);
        let evs = drain(&mut p);
        assert!(matches!(
            &evs[0],
            ParseEvent::Head(h) if h.method == Method::Post && h.content_length == 5
        ));
        assert_eq!(evs[1], ParseEvent::BodyChunk(5));
        assert_eq!(evs[2], ParseEvent::Complete);
    }
}
