//! The speak-up exchange, mapped onto HTTP exactly as §6 describes.
//!
//! When the emulated server is busy, the thinner returns JavaScript that
//! makes the browser issue **two** HTTP requests: (1) the actual request,
//! whose response the thinner delays, and (2) a one-megabyte HTTP POST of
//! dummy bytes — the payment channel. If the POST completes before the
//! client wins the auction, the thinner tells the client to POST again. An
//! `id` field in both requests correlates payment with request.
//!
//! This module gives those moves names and encodings:
//!
//! | wire | meaning |
//! |---|---|
//! | `GET /service?id=N` | the actual request (1) |
//! | `POST /payment?id=N` + 1 MB body | one payment chunk on channel (2) |
//! | `200` + `X-SpeakUp: serve` | request served, body = server response |
//! | `200` + `X-SpeakUp: encourage` + `X-SpeakUp-Price` | open a payment channel (body = the "JavaScript") |
//! | `200` + `X-SpeakUp: continue` | POST finished but not admitted: POST again |
//! | `503` + `X-SpeakUp: drop` | dropped (baseline mode / channel timeout) |

use crate::http::{write_request, write_response, HeaderMap, Method, RequestHead, ResponseHead};
use bytes::Bytes;

/// The size of one payment POST: 1 MB, "reflecting some browsers' limits
/// on POSTs" (§6).
pub const PAYMENT_POST_BYTES: u64 = 1 << 20;

/// A request id as carried in the `id` query parameter.
pub type WireRequestId = u64;

/// What a client→thinner request means.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientMessage {
    /// `GET /service?id=N` — the actual request.
    Service(WireRequestId),
    /// `POST /payment?id=N` — a payment chunk of the given declared size.
    Payment(WireRequestId, u64),
}

/// What a thinner→client response means.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThinnerMessage {
    /// The request was served.
    Served,
    /// Open a payment channel; the going rate (bytes) is advisory.
    Encourage {
        /// Current going rate in bytes (§3.3's emergent price).
        going_rate: u64,
    },
    /// The POST completed but the auction is not yet won: send another.
    Continue,
    /// The request was dropped.
    Dropped,
}

/// Errors interpreting a parsed HTTP message as a speak-up message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Unknown path.
    UnknownEndpoint(String),
    /// Missing or malformed `id` query parameter.
    BadId,
    /// GET where POST was required or vice versa.
    WrongMethod,
    /// Response lacked the `X-SpeakUp` header.
    NotSpeakup,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnknownEndpoint(t) => write!(f, "unknown endpoint {t}"),
            ProtocolError::BadId => f.write_str("missing or malformed id"),
            ProtocolError::WrongMethod => f.write_str("wrong method for endpoint"),
            ProtocolError::NotSpeakup => f.write_str("response is not a speak-up message"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn parse_id(target: &str) -> Result<WireRequestId, ProtocolError> {
    let (_, query) = target.split_once('?').ok_or(ProtocolError::BadId)?;
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("id=") {
            return v.parse().map_err(|_| ProtocolError::BadId);
        }
    }
    Err(ProtocolError::BadId)
}

/// Interpret a parsed request head as a speak-up client message.
pub fn classify_request(head: &RequestHead) -> Result<ClientMessage, ProtocolError> {
    let path = head.target.split('?').next().unwrap_or("");
    match path {
        "/service" => {
            if head.method != Method::Get {
                return Err(ProtocolError::WrongMethod);
            }
            Ok(ClientMessage::Service(parse_id(&head.target)?))
        }
        "/payment" => {
            if head.method != Method::Post {
                return Err(ProtocolError::WrongMethod);
            }
            Ok(ClientMessage::Payment(
                parse_id(&head.target)?,
                head.content_length,
            ))
        }
        _ => Err(ProtocolError::UnknownEndpoint(head.target.clone())),
    }
}

/// Interpret a parsed response head as a speak-up thinner message.
pub fn classify_response(head: &ResponseHead) -> Result<ThinnerMessage, ProtocolError> {
    match head.headers.get("x-speakup") {
        Some("serve") => Ok(ThinnerMessage::Served),
        Some("encourage") => {
            let going_rate = head
                .headers
                .get("x-speakup-price")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            Ok(ThinnerMessage::Encourage { going_rate })
        }
        Some("continue") => Ok(ThinnerMessage::Continue),
        Some("drop") => Ok(ThinnerMessage::Dropped),
        _ => Err(ProtocolError::NotSpeakup),
    }
}

/// Encode the actual request (1).
pub fn encode_service_request(id: WireRequestId) -> Bytes {
    write_request(
        Method::Get,
        &format!("/service?id={id}"),
        &HeaderMap::new(),
        b"",
    )
}

/// Encode the head of a payment POST (2). The dummy body bytes stream
/// separately — the caller writes `len` filler bytes after this.
pub fn encode_payment_head(id: WireRequestId, len: u64) -> Bytes {
    let mut h = HeaderMap::new();
    h.push("Content-Length", len.to_string());
    h.push("Content-Type", "application/octet-stream");
    write_request(Method::Post, &format!("/payment?id={id}"), &h, b"")
}

/// Encode the "request served" response carrying the server's reply.
pub fn encode_served(body: &[u8]) -> Bytes {
    let mut h = HeaderMap::new();
    h.push("X-SpeakUp", "serve");
    write_response(200, "OK", &h, body)
}

/// Encode the encouragement response: in the real prototype this body is
/// JavaScript that makes the browser send the payment POST; any
/// JavaScript-capable browser can participate unmodified (§6).
pub fn encode_encourage(going_rate: u64) -> Bytes {
    let mut h = HeaderMap::new();
    h.push("X-SpeakUp", "encourage");
    h.push("X-SpeakUp-Price", going_rate.to_string());
    let body = format!(
        "<html><script>/* speak-up: POST {PAYMENT_POST_BYTES} dummy bytes to \
         /payment, going rate {going_rate} bytes */</script></html>"
    );
    write_response(200, "OK", &h, body.as_bytes())
}

/// Encode the "POST again" response.
pub fn encode_continue() -> Bytes {
    let mut h = HeaderMap::new();
    h.push("X-SpeakUp", "continue");
    write_response(200, "OK", &h, b"")
}

/// Encode the drop response.
pub fn encode_dropped() -> Bytes {
    let mut h = HeaderMap::new();
    h.push("X-SpeakUp", "drop");
    write_response(503, "Service Unavailable", &h, b"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_response_head, ParseEvent, RequestParser};

    fn parse_one_head(wire: &[u8]) -> RequestHead {
        let mut p = RequestParser::new();
        p.push(wire);
        match p.next_event().unwrap() {
            Some(ParseEvent::Head(h)) => h,
            other => panic!("expected head, got {other:?}"),
        }
    }

    #[test]
    fn service_request_roundtrip() {
        let wire = encode_service_request(42);
        let head = parse_one_head(&wire);
        assert_eq!(classify_request(&head), Ok(ClientMessage::Service(42)));
    }

    #[test]
    fn payment_request_roundtrip() {
        let wire = encode_payment_head(7, PAYMENT_POST_BYTES);
        let head = parse_one_head(&wire);
        assert_eq!(
            classify_request(&head),
            Ok(ClientMessage::Payment(7, PAYMENT_POST_BYTES))
        );
    }

    #[test]
    fn wrong_method_rejected() {
        let head = parse_one_head(b"POST /service?id=1 HTTP/1.1\r\n\r\n");
        assert_eq!(classify_request(&head), Err(ProtocolError::WrongMethod));
        let head = parse_one_head(b"GET /payment?id=1 HTTP/1.1\r\n\r\n");
        assert_eq!(classify_request(&head), Err(ProtocolError::WrongMethod));
    }

    #[test]
    fn missing_id_rejected() {
        let head = parse_one_head(b"GET /service HTTP/1.1\r\n\r\n");
        assert_eq!(classify_request(&head), Err(ProtocolError::BadId));
        let head = parse_one_head(b"GET /service?id=abc HTTP/1.1\r\n\r\n");
        assert_eq!(classify_request(&head), Err(ProtocolError::BadId));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let head = parse_one_head(b"GET /robots.txt HTTP/1.1\r\n\r\n");
        assert!(matches!(
            classify_request(&head),
            Err(ProtocolError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn id_among_other_params() {
        let head = parse_one_head(b"GET /service?session=9&id=33&x=1 HTTP/1.1\r\n\r\n");
        assert_eq!(classify_request(&head), Ok(ClientMessage::Service(33)));
    }

    #[test]
    fn thinner_responses_roundtrip() {
        for (wire, expect) in [
            (encode_served(b"result"), ThinnerMessage::Served),
            (
                encode_encourage(125_000),
                ThinnerMessage::Encourage {
                    going_rate: 125_000,
                },
            ),
            (encode_continue(), ThinnerMessage::Continue),
            (encode_dropped(), ThinnerMessage::Dropped),
        ] {
            let (head, _) = parse_response_head(&wire).unwrap().unwrap();
            assert_eq!(classify_response(&head), Ok(expect));
        }
    }

    #[test]
    fn non_speakup_response_rejected() {
        let wire = crate::http::write_response(200, "OK", &HeaderMap::new(), b"plain");
        let (head, _) = parse_response_head(&wire).unwrap().unwrap();
        assert_eq!(classify_response(&head), Err(ProtocolError::NotSpeakup));
    }

    #[test]
    fn encourage_body_mentions_protocol() {
        let wire = encode_encourage(99);
        let s = String::from_utf8_lossy(&wire);
        assert!(s.contains("script"), "body should carry the 'JavaScript'");
        assert!(s.contains("99"));
    }
}
