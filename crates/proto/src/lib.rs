//! # speakup-proto — the speak-up prototype's wire protocol (§6)
//!
//! The paper's thinner is a Web front-end: unmodified JavaScript-capable
//! browsers participate by issuing an actual request plus one-megabyte
//! dummy HTTP POSTs (the payment channel), correlated by an `id` field.
//! This crate implements that exchange over an HTTP/1.1 subset:
//!
//! * [`http`] — incremental request parsing (body progress is reported
//!   chunk-by-chunk, because the thinner counts payment bytes as they
//!   arrive) and response serialization.
//! * [`message`] — the typed speak-up moves (`Service`, `Payment`,
//!   `Encourage`, `Continue`, `Served`, `Dropped`) and their encodings.
//!
//! Used by `speakup-proxy` (a real TCP thinner) and its tests. The
//! simulation harness (`speakup-exp`) exchanges typed messages directly
//! and only borrows this crate's constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod message;

pub use http::{
    HeaderMap, Method, ParseError, ParseEvent, RequestHead, RequestParser, ResponseHead,
};
pub use message::{
    classify_request, classify_response, ClientMessage, ProtocolError, ThinnerMessage,
    WireRequestId, PAYMENT_POST_BYTES,
};
