//! # speakup-proxy — a real TCP thinner (§6 over sockets)
//!
//! The simulator in `speakup-exp` validates speak-up's *behaviour*; this
//! crate demonstrates the same front end over real TCP sockets, speaking
//! the `speakup-proto` HTTP exchange, so the system can be exercised with
//! loopback clients (see the `real_proxy` example and integration tests).
//!
//! ## Protocol (the polling variant of §6's delayed response)
//!
//! 1. Client sends `GET /service?id=N`. If the emulated server is free
//!    the thinner runs the request and replies `X-SpeakUp: serve`.
//! 2. Otherwise the thinner replies `X-SpeakUp: encourage` immediately
//!    (standing in for the JavaScript the prototype returns) and registers
//!    `N` as a contender in the §3.3 virtual auction.
//! 3. The client opens a payment connection and POSTs 1 MB dummy-byte
//!    chunks to `/payment?id=N`. The thinner credits bytes *as they
//!    arrive*. A completed POST that has not yet won gets
//!    `X-SpeakUp: continue`; when `N` wins an auction, the thinner closes
//!    the payment connection (terminating the channel).
//! 4. The client re-issues `GET /service?id=N`; the thinner holds this
//!    connection until the server finishes and then replies
//!    `X-SpeakUp: serve` (or `drop` if the channel timed out).
//!
//! The architecture is deliberately boring: a listener thread, a thread
//! per connection, one back-end "server" thread that sleeps for the
//! drawn service time (`U[0.9/c, 1.1/c]`), and a housekeeping ticker.
//! All speak-up decisions live in `speakup_core::AuctionFrontEnd` behind
//! a mutex — the same pure state machine the simulator drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;

use speakup_core::thinner::{AuctionConfig, AuctionFrontEnd, FrontEnd};
use speakup_core::types::{ClientId, Directive, RequestId, RequestKey};
use speakup_net::rng::Pcg32;
use speakup_net::time::SimTime;
use speakup_proto::http::{ParseEvent, RequestParser};
use speakup_proto::message::{
    classify_request, encode_continue, encode_dropped, encode_encourage, encode_served,
    ClientMessage,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Proxy configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProxyConfig {
    /// Emulated server capacity, requests/second.
    pub capacity: f64,
    /// RNG seed for service times.
    pub seed: u64,
    /// Auction configuration (channel idle timeout).
    pub auction: AuctionConfig,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            capacity: 50.0,
            seed: 1,
            auction: AuctionConfig::default(),
        }
    }
}

/// Final verdict for a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The request was served.
    Served,
    /// The request was dropped.
    Dropped,
}

#[derive(Default)]
struct Shared {
    fe: Option<AuctionFrontEnd>,
    /// Verdicts for finished requests.
    verdicts: HashMap<u64, Verdict>,
    /// Channels whose payment connection must close.
    terminated: HashMap<u64, bool>,
    /// Requests the front end knows about.
    known: HashMap<u64, ()>,
    /// Counters.
    payment_bytes: u64,
    served: u64,
    dropped: u64,
}

struct Inner {
    state: Mutex<Shared>,
    wake: Condvar,
    start: Instant,
    server_tx: Mutex<mpsc::Sender<(RequestKey, Duration)>>,
    shutdown: AtomicBool,
}

impl Inner {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn execute(&self, shared: &mut Shared, directives: Vec<Directive>) {
        for d in directives {
            match d {
                Directive::Admit(k) => {
                    // Service time is drawn by the server thread.
                    self.server_tx
                        .lock()
                        .expect("server_tx")
                        .send((k, Duration::ZERO))
                        .ok();
                }
                Directive::Encourage(_) => {
                    // The encourage response is written by the connection
                    // thread that received the GET.
                }
                Directive::Drop(k) => {
                    shared.verdicts.insert(k.req.0, Verdict::Dropped);
                    shared.dropped += 1;
                    self.wake.notify_all();
                }
                Directive::TerminateChannel(k) => {
                    shared.terminated.insert(k.req.0, true);
                }
                Directive::Suspend(_) | Directive::Resume(_) | Directive::AbortRequest(_) => {
                    unreachable!("auction front end never emits §5 directives")
                }
            }
        }
    }

    fn with_fe(
        &self,
        shared: &mut Shared,
        f: impl FnOnce(&mut AuctionFrontEnd, SimTime, &mut Vec<Directive>),
    ) {
        let now = self.now();
        let mut out = Vec::new();
        let mut fe = shared.fe.take().expect("front end present");
        f(&mut fe, now, &mut out);
        shared.fe = Some(fe);
        self.execute(shared, out);
    }
}

/// A running proxy; dropping it shuts the threads down.
pub struct ProxyHandle {
    /// The address the proxy listens on.
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl ProxyHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total payment bytes sunk so far.
    pub fn payment_bytes(&self) -> u64 {
        self.inner.state.lock().expect("state").payment_bytes
    }

    /// (served, dropped) counts so far.
    pub fn outcomes(&self) -> (u64, u64) {
        let s = self.inner.state.lock().expect("state");
        (s.served, s.dropped)
    }

    /// Stop the proxy and join its threads.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn key_of(id: u64) -> RequestKey {
    // The wire id is the identity; the auction never trusts client
    // identity anyway (threat model, §2.2).
    RequestKey::new(ClientId(0), RequestId(id))
}

/// Start a proxy on `127.0.0.1` (ephemeral port).
pub fn spawn(config: ProxyConfig) -> std::io::Result<ProxyHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let (server_tx, server_rx) = mpsc::channel::<(RequestKey, Duration)>();
    let inner = Arc::new(Inner {
        state: Mutex::new(Shared {
            fe: Some(AuctionFrontEnd::new(config.auction)),
            ..Shared::default()
        }),
        wake: Condvar::new(),
        // Real wall clock: the proxy serves live sockets (see clippy.toml).
        #[allow(clippy::disallowed_methods)]
        start: Instant::now(),
        server_tx: Mutex::new(server_tx),
        shutdown: AtomicBool::new(false),
    });

    let mut threads = Vec::new();

    // Back-end server thread: one request at a time, real sleeps.
    {
        let inner = Arc::clone(&inner);
        let capacity = config.capacity;
        let mut rng = Pcg32::new(config.seed, 0x5e1);
        threads.push(std::thread::spawn(move || {
            while !inner.shutdown.load(Ordering::SeqCst) {
                match server_rx.recv_timeout(Duration::from_millis(50)) {
                    Ok((k, _)) => {
                        let work = rng.uniform(0.9, 1.1) / capacity;
                        std::thread::sleep(Duration::from_secs_f64(work));
                        let mut shared = inner.state.lock().expect("state");
                        shared.verdicts.insert(k.req.0, Verdict::Served);
                        shared.served += 1;
                        inner.with_fe(&mut shared, |fe, now, out| fe.on_server_done(now, k, out));
                        inner.wake.notify_all();
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }));
    }

    // Housekeeping ticker: channel timeouts.
    {
        let inner = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || {
            while !inner.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(100));
                let mut shared = inner.state.lock().expect("state");
                inner.with_fe(&mut shared, |fe, now, out| {
                    fe.on_tick(now, out);
                });
            }
        }));
    }

    // Accept loop.
    {
        let inner = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || {
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let inner = Arc::clone(&inner);
                        // Connection threads are detached; they exit when
                        // the peer closes or shutdown flips.
                        std::thread::spawn(move || {
                            let _ = handle_connection(&inner, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        }));
    }

    Ok(ProxyHandle {
        addr,
        inner,
        threads,
    })
}

/// Wait (bounded) until `id` has a verdict; returns it.
fn await_verdict(inner: &Inner, id: u64) -> Verdict {
    let mut shared = inner.state.lock().expect("state");
    loop {
        if let Some(v) = shared.verdicts.get(&id) {
            return *v;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return Verdict::Dropped;
        }
        let (guard, _) = inner
            .wake
            .wait_timeout(shared, Duration::from_millis(100))
            .expect("wait");
        shared = guard;
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true).ok();
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 16 * 1024];
    // The id of the payment channel this connection carries, if any.
    let mut paying_for: Option<u64> = None;

    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // If this is a payment connection whose channel was terminated,
        // close it — that is how the thinner ends the §3.3 channel.
        if let Some(id) = paying_for {
            let shared = inner.state.lock().expect("state");
            if shared.terminated.get(&id).copied().unwrap_or(false) {
                return Ok(());
            }
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        parser.push(&buf[..n]);
        while let Some(event) = parser
            .next_event()
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad request"))?
        {
            match event {
                ParseEvent::Head(head) => match classify_request(&head) {
                    Ok(ClientMessage::Service(id)) => {
                        serve_get(inner, &mut stream, id)?;
                    }
                    Ok(ClientMessage::Payment(id, _len)) => {
                        paying_for = Some(id);
                    }
                    Err(_) => {
                        let _ = stream.write_all(&encode_dropped());
                        return Ok(());
                    }
                },
                ParseEvent::BodyChunk(nbytes) => {
                    if let Some(id) = paying_for {
                        let mut shared = inner.state.lock().expect("state");
                        shared.payment_bytes += nbytes;
                        inner.with_fe(&mut shared, |fe, now, out| {
                            fe.on_payment(now, key_of(id), nbytes, out)
                        });
                    }
                }
                ParseEvent::Complete => {
                    if let Some(id) = paying_for {
                        // Full POST and no win yet: ask for another.
                        let terminated = {
                            let shared = inner.state.lock().expect("state");
                            shared.terminated.get(&id).copied().unwrap_or(false)
                        };
                        if terminated {
                            return Ok(());
                        }
                        stream.write_all(&encode_continue())?;
                    }
                }
            }
        }
    }
}

fn serve_get(inner: &Inner, stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    let key = key_of(id);
    enum Next {
        Respond(bytes::Bytes),
        Await,
    }
    let next = {
        let mut shared = inner.state.lock().expect("state");
        if let Some(v) = shared.verdicts.get(&id) {
            let wire = match v {
                Verdict::Served => encode_served(b"<html>ok</html>"),
                Verdict::Dropped => encode_dropped(),
            };
            Next::Respond(wire)
        } else if let std::collections::hash_map::Entry::Vacant(e) = shared.known.entry(id) {
            e.insert(());
            let mut admitted = false;
            inner.with_fe(&mut shared, |fe, now, out| {
                fe.on_request(now, key, out);
                admitted = out.iter().any(|d| matches!(d, Directive::Admit(_)));
            });
            if admitted {
                Next::Await
            } else {
                let rate = shared
                    .fe
                    .as_ref()
                    .and_then(|fe| fe.going_rate())
                    .unwrap_or(0);
                Next::Respond(encode_encourage(rate))
            }
        } else {
            // Re-poll of a contending/executing request: hold until done.
            Next::Await
        }
    };
    match next {
        Next::Respond(wire) => stream.write_all(&wire),
        Next::Await => {
            let verdict = await_verdict(inner, id);
            let wire = match verdict {
                Verdict::Served => encode_served(b"<html>ok</html>"),
                Verdict::Dropped => encode_dropped(),
            };
            stream.write_all(&wire)
        }
    }
}
