//! A speak-up client over real sockets: the §6 browser loop in Rust.
//!
//! `fetch` performs the full exchange against a [`crate::spawn`]ed proxy:
//! GET the service URL; on encouragement, stream dummy-byte POSTs until
//! the thinner terminates the channel (auction won) or the configured
//! POST budget runs out; then re-GET to collect the verdict.

use crate::Verdict;
use speakup_proto::http::parse_response_head;
use speakup_proto::message::{
    classify_response, encode_payment_head, encode_service_request, ThinnerMessage,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What one [`fetch`] did.
#[derive(Clone, Copy, Debug)]
pub struct FetchOutcome {
    /// Final verdict.
    pub verdict: Verdict,
    /// Payment POSTs started.
    pub posts: u32,
    /// Dummy bytes written to the payment channel.
    pub payment_bytes: u64,
    /// The going rate the thinner advertised at encouragement, if any.
    pub advertised_rate: Option<u64>,
}

/// Client knobs.
#[derive(Clone, Copy, Debug)]
pub struct FetchConfig {
    /// Bytes per POST (the prototype uses 1 MB; tests use less).
    pub post_bytes: u64,
    /// Give up after this many POSTs without winning.
    pub max_posts: u32,
    /// Socket timeout for reads while awaiting verdicts.
    pub read_timeout: Duration,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig {
            post_bytes: 64 * 1024,
            max_posts: 64,
            read_timeout: Duration::from_secs(30),
        }
    }
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<ThinnerMessage> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((head, consumed)) = parse_response_head(&buf)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))?
        {
            // Drain the body.
            let have = (buf.len() - consumed) as u64;
            let mut remaining = head.content_length.saturating_sub(have);
            while remaining > 0 {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                remaining = remaining.saturating_sub(n as u64);
            }
            return classify_response(&head)
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "not speakup"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed before response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn get_service(addr: SocketAddr, id: u64, timeout: Duration) -> std::io::Result<ThinnerMessage> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(timeout))?;
    s.set_nodelay(true).ok();
    s.write_all(&encode_service_request(id))?;
    read_response(&mut s)
}

/// Run one speak-up request to completion. See module docs.
pub fn fetch(addr: SocketAddr, id: u64, cfg: FetchConfig) -> std::io::Result<FetchOutcome> {
    let mut outcome = FetchOutcome {
        verdict: Verdict::Dropped,
        posts: 0,
        payment_bytes: 0,
        advertised_rate: None,
    };
    match get_service(addr, id, cfg.read_timeout)? {
        ThinnerMessage::Served => {
            outcome.verdict = Verdict::Served;
            return Ok(outcome);
        }
        ThinnerMessage::Dropped => return Ok(outcome),
        ThinnerMessage::Encourage { going_rate } => {
            outcome.advertised_rate = Some(going_rate);
        }
        ThinnerMessage::Continue => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "continue without payment",
            ))
        }
    }

    // Payment loop: POST until the thinner closes the channel (we won)
    // or the budget runs out.
    let mut pay = TcpStream::connect(addr)?;
    pay.set_read_timeout(Some(cfg.read_timeout))?;
    pay.set_nodelay(true).ok();
    let filler = vec![0x5au8; 16 * 1024];
    'posts: while outcome.posts < cfg.max_posts {
        outcome.posts += 1;
        if pay
            .write_all(&encode_payment_head(id, cfg.post_bytes))
            .is_err()
        {
            break 'posts; // channel terminated mid-exchange
        }
        let mut remaining = cfg.post_bytes;
        while remaining > 0 {
            let n = remaining.min(filler.len() as u64) as usize;
            match pay.write_all(&filler[..n]) {
                Ok(()) => {
                    outcome.payment_bytes += n as u64;
                    remaining -= n as u64;
                }
                Err(_) => break 'posts, // terminated: we (probably) won
            }
        }
        // Full POST delivered; the thinner says continue or closes.
        match read_response(&mut pay) {
            Ok(ThinnerMessage::Continue) => continue,
            Ok(_) | Err(_) => break 'posts,
        }
    }
    drop(pay);

    // Collect the verdict.
    match get_service(addr, id, cfg.read_timeout)? {
        ThinnerMessage::Served => outcome.verdict = Verdict::Served,
        ThinnerMessage::Dropped => outcome.verdict = Verdict::Dropped,
        // Still contending (e.g. budget exhausted): report as dropped.
        ThinnerMessage::Encourage { .. } | ThinnerMessage::Continue => {}
    }
    Ok(outcome)
}
