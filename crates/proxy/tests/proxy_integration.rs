//! End-to-end tests of the real-socket thinner on loopback.

use speakup_core::thinner::AuctionConfig;
use speakup_net::time::SimDuration;
use speakup_proxy::client::{fetch, FetchConfig};
use speakup_proxy::{spawn, ProxyConfig, Verdict};
use std::time::Duration;

fn cfg(capacity: f64) -> ProxyConfig {
    ProxyConfig {
        capacity,
        seed: 42,
        auction: AuctionConfig {
            channel_timeout: SimDuration::from_secs(5),
        },
    }
}

#[test]
fn unloaded_server_serves_without_payment() {
    let proxy = spawn(cfg(100.0)).expect("spawn");
    let out = fetch(proxy.addr(), 1, FetchConfig::default()).expect("fetch");
    assert_eq!(out.verdict, Verdict::Served);
    assert_eq!(out.posts, 0, "no payment needed when unloaded");
    assert_eq!(out.payment_bytes, 0);
    let (served, dropped) = proxy.outcomes();
    assert_eq!((served, dropped), (1, 0));
    proxy.shutdown();
}

#[test]
fn sequential_requests_all_served() {
    let proxy = spawn(cfg(50.0)).expect("spawn");
    for id in 1..=5 {
        let out = fetch(proxy.addr(), id, FetchConfig::default()).expect("fetch");
        assert_eq!(out.verdict, Verdict::Served, "request {id}");
    }
    let (served, _) = proxy.outcomes();
    assert_eq!(served, 5);
    proxy.shutdown();
}

#[test]
fn overloaded_server_requires_payment_then_serves() {
    // Slow server: ~1 s per request. The second request must contend.
    let proxy = spawn(cfg(1.0)).expect("spawn");
    let addr = proxy.addr();
    let t1 = std::thread::spawn(move || fetch(addr, 10, FetchConfig::default()).expect("fetch"));
    // Let the first request occupy the server.
    std::thread::sleep(Duration::from_millis(150));
    let t2 = std::thread::spawn(move || fetch(addr, 20, FetchConfig::default()).expect("fetch"));
    let o1 = t1.join().expect("join");
    let o2 = t2.join().expect("join");
    assert_eq!(o1.verdict, Verdict::Served);
    assert_eq!(o2.verdict, Verdict::Served);
    assert!(o2.posts >= 1, "second request had to pay");
    assert!(o2.payment_bytes > 0);
    assert!(proxy.payment_bytes() > 0);
    proxy.shutdown();
}

#[test]
fn higher_payer_wins_the_auction() {
    // Three concurrent contenders with very different payment rates can't
    // be produced deterministically over loopback (both can stream fast),
    // so instead verify the auction outcome indirectly: with two
    // contenders, both get served eventually and the thinner collected
    // payment from both.
    let proxy = spawn(cfg(2.0)).expect("spawn");
    let addr = proxy.addr();
    let workers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || fetch(addr, 100 + i, FetchConfig::default()).expect("fetch"))
        })
        .collect();
    let outs: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("join"))
        .collect();
    assert!(outs.iter().all(|o| o.verdict == Verdict::Served));
    let (served, dropped) = proxy.outcomes();
    assert_eq!(served, 3);
    assert_eq!(dropped, 0);
    proxy.shutdown();
}

#[test]
fn advertised_going_rate_reaches_clients() {
    let proxy = spawn(cfg(1.0)).expect("spawn");
    let addr = proxy.addr();
    let t1 = std::thread::spawn(move || fetch(addr, 1, FetchConfig::default()));
    std::thread::sleep(Duration::from_millis(150));
    let t2 = std::thread::spawn(move || fetch(addr, 2, FetchConfig::default()));
    let _ = t1.join().expect("join");
    let o2 = t2.join().expect("join").expect("fetch");
    assert!(
        o2.advertised_rate.is_some(),
        "encouraged client sees the going rate header"
    );
    proxy.shutdown();
}

#[test]
fn abandoned_contender_is_dropped_by_idle_timeout() {
    let proxy = spawn(ProxyConfig {
        capacity: 1.0,
        seed: 3,
        auction: AuctionConfig {
            channel_timeout: SimDuration::from_millis(300),
        },
    })
    .expect("spawn");
    let addr = proxy.addr();
    // Occupy the server.
    let t1 = std::thread::spawn(move || fetch(addr, 1, FetchConfig::default()));
    std::thread::sleep(Duration::from_millis(100));
    // Register a contender but never pay: a zero-POST budget.
    let t2 = std::thread::spawn(move || {
        fetch(
            addr,
            2,
            FetchConfig {
                max_posts: 0,
                ..FetchConfig::default()
            },
        )
    });
    let o1 = t1.join().expect("join").expect("fetch");
    let o2 = t2.join().expect("join").expect("fetch");
    assert_eq!(o1.verdict, Verdict::Served);
    assert_eq!(o2.verdict, Verdict::Dropped, "silent contender times out");
    proxy.shutdown();
}

#[test]
fn many_clients_drain() {
    let proxy = spawn(cfg(20.0)).expect("spawn");
    let addr = proxy.addr();
    let workers: Vec<_> = (0..10)
        .map(|i| {
            std::thread::spawn(move || {
                fetch(addr, 1000 + i, FetchConfig::default())
                    .expect("fetch")
                    .verdict
            })
        })
        .collect();
    let served = workers
        .into_iter()
        .map(|w| w.join())
        .filter(|v| matches!(v, Ok(Verdict::Served)))
        .count();
    assert_eq!(served, 10);
    proxy.shutdown();
}
