//! Cohort correctness pins (ISSUE 7 tentpole):
//!
//! 1. A cohort of N = 1 is *observably identical* to one fully simulated
//!    client: same report metrics, same event counts, across random
//!    seeds, profiles, and thinner modes. The cohort agent reuses the
//!    lone client's RNG stream, node/link layout, and request-id bit
//!    pattern precisely so this holds bit for bit.
//! 2. At small N, a cohort-aggregated population matches the fully
//!    simulated population within the existing `speakup compare`
//!    tolerances (the statistical claim: superposing N Poisson arrival
//!    processes and aggregating the access link preserves the figure).
//! 3. `fig2_xl`'s cohort topology keeps the engine's core invariant:
//!    reports are byte-identical at every `--shards` count.

use speakup_core::client::ClientProfile;
use speakup_exp::driver::report_json;
use speakup_exp::json::Json;
use speakup_exp::runner::{run, run_sharded, RunReport};
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_exp::{compare, scenarios};
use speakup_net::time::SimDuration;

/// A contended one-client scenario: capacity below demand so the run
/// exercises serves, drops, backlog, and (for `give_up`) abandonment.
fn solo_scenario(profile: ClientProfile, mode: Mode, seed: u64, cohort: bool) -> Scenario {
    let mut s = Scenario::new("solo-eq", 1.0, mode)
        .duration(SimDuration::from_secs(30))
        .seed(seed);
    let spec = ClientSpec::lan(profile);
    if cohort {
        s.add_cohorts(1, 1, spec);
    } else {
        s.add_clients(1, spec);
    }
    s
}

/// Events processed and application callbacks dispatched, summed across
/// shards/variants. The *variant* labels legitimately differ (one run
/// dispatches to `client`, the other to `cohort`): what must agree is
/// how much work the simulation did.
fn totals(r: &RunReport) -> (u64, u64) {
    let events: u64 = r.shard_events.iter().sum();
    let dispatch: u64 = r.dispatch_counts.iter().map(|&(_, n)| n).sum();
    (events, dispatch)
}

fn assert_identical(profile: ClientProfile, mode: Mode, seed: u64) {
    let solo = run(&solo_scenario(profile, mode, seed, false));
    let crowd = run(&solo_scenario(profile, mode, seed, true));
    assert_eq!(
        report_json(&solo).pretty(),
        report_json(&crowd).pretty(),
        "N=1 cohort report diverged (profile {profile:?}, mode {mode:?}, seed {seed:#x})"
    );
    assert_eq!(
        totals(&solo),
        totals(&crowd),
        "N=1 cohort event/dispatch counts diverged (seed {seed:#x})"
    );
}

mod n1_identity {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Each case runs four 30-second simulations; keep the count
        // modest (the default 256 would take minutes in debug builds).
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Across random seeds, a cohort of one good client and a
        /// cohort of one bad client are indistinguishable from the
        /// fully simulated equivalents under the auction thinner.
        #[test]
        fn cohort_of_one_is_one_client(seed in any::<u64>()) {
            assert_identical(ClientProfile::good(), Mode::Auction, seed);
            assert_identical(ClientProfile::bad(), Mode::Auction, seed);
        }
    }

    /// The remaining thinner modes (and the give-up path, which swaps
    /// serve-driven refills for timer-driven abandonment) hold too.
    #[test]
    fn identity_covers_modes_and_give_up() {
        let give_up = ClientProfile::good().give_up_after(SimDuration::from_secs(2));
        for seed in [0x5ea4, 0xb0a7_5eed] {
            assert_identical(ClientProfile::good(), Mode::Off, seed);
            assert_identical(ClientProfile::bad(), Mode::Retry, seed);
            assert_identical(give_up, Mode::Auction, seed);
        }
    }
}

/// The metrics cohort aggregation promises to preserve: everything
/// Fig 2 plots (who the server works for, how much good demand is met)
/// plus the class-level request ledger and loaded latency statistics.
///
/// Deliberately absent: per-request payment times, payment bytes, and
/// auction prices. A cohort's access link carries the *aggregate*
/// member bandwidth — the currency speak-up meters, so allocation is
/// preserved — but a lone member can burst at up to N x its real rate,
/// so per-request pacing statistics are not distribution-exact (nor is
/// `latency_s.min`, which embeds the unloaded serialization delay).
/// Those metrics are what the fully simulated *foreground* population
/// is for; see the module docs of `agents::cohort`. `denied` is also
/// out: it is the small residual of `generated - served`, so the same
/// drift that is a few percent of `served` is tens of percent of it.
fn fig2_metrics(r: &RunReport) -> Json {
    let class = |c: &speakup_core::metrics::ClassReport| {
        let mut latency = c.latency.clone();
        Json::obj()
            .field("clients", c.clients as u64)
            .field("generated", c.generated)
            .field("issued", c.issued)
            .field("served", c.served)
            .field("served_fraction", c.served_fraction())
            .field("latency_count", c.latency.len() as u64)
            .field("latency_mean", latency.mean())
            .field("latency_p90", latency.percentile(0.90))
    };
    Json::obj()
        .field("good", class(&r.good))
        .field("bad", class(&r.bad))
        .field(
            "allocation",
            Json::obj()
                .field("good", r.allocation.good)
                .field("bad", r.allocation.bad)
                .field("good_fraction", r.good_fraction()),
        )
        .field("server_utilization", r.server_utilization)
        .field("payment_bytes_total", r.payment_bytes_total)
}

/// Fig 2's shape at 20 clients, either fully simulated or with the
/// background aggregated into cohorts of five.
fn small_n_scenario(cohort: bool) -> Scenario {
    let mut s = Scenario::new("small-n-eq", 2.0 * 20.0, Mode::Auction)
        .duration(SimDuration::from_secs(120))
        .seed(0x5ea4);
    let good = ClientSpec::lan(ClientProfile::good());
    let bad = ClientSpec::lan(ClientProfile::bad());
    if cohort {
        s.add_cohorts(2, 5, good).add_cohorts(2, 5, bad);
    } else {
        s.add_clients(10, good).add_clients(10, bad);
    }
    s
}

/// Aggregating the population into cohorts changes the RNG sample path
/// but not the statistics: the Fig 2 metrics stay within the `speakup
/// compare` tolerance machinery (scaled 3x — two *independent*
/// 120-second sample paths, where golden comparisons diff the *same*
/// path against itself).
#[test]
fn small_n_cohorts_match_full_simulation_statistically() {
    let full = run(&small_n_scenario(false));
    let crowd = run(&small_n_scenario(true));
    assert_eq!(full.per_client.len(), 20);
    assert_eq!(crowd.per_client.len(), 4, "one row per cohort");
    let breaches = compare::diff(&fig2_metrics(&full), &fig2_metrics(&crowd), 3.0);
    assert!(
        breaches.is_empty(),
        "cohort aggregation drifted outside compare tolerances:\n{}",
        breaches
            .iter()
            .map(|b| format!(
                "  {}: full {} vs cohorts {} (allowed {})",
                b.path, b.golden, b.fresh, b.allowed
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// `fig2_xl`'s mixed topology (foreground clients + cohort nodes) must
/// keep the engine's core determinism guarantee: the report is
/// byte-identical no matter how the population splits across shards.
#[test]
fn fig2_xl_reports_are_shard_count_invariant() {
    let scenario = scenarios::fig2_xl_sized(4, 4, 25).duration(SimDuration::from_secs(2));
    assert_eq!(scenario.population(), 208);
    let baseline = report_json(&run_sharded(&scenario, 1)).pretty();
    for shards in [2, 4] {
        let sharded = report_json(&run_sharded(&scenario, shards)).pretty();
        assert_eq!(
            baseline, sharded,
            "fig2_xl report changed at --shards {shards}"
        );
    }
}
