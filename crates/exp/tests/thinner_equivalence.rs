//! Differential battery for replicated thinners.
//!
//! Two determinism obligations and one fidelity obligation:
//!
//! 1. `--thinners 1` is the classic engine, byte for byte: for each of
//!    the four golden workloads, an explicit single-replica run must
//!    serialize identically to the unmodified scenario at every shard
//!    width the CI sweep uses.
//! 2. `--thinners R` for R > 1 is still a deterministic simulation: its
//!    report must be invariant to `--shards` (the digest exchange rides
//!    ordinary control packets at path delay, so the conservative
//!    lookahead engine must not reorder it).
//! 3. Fairness regression: the replicated auction's good-client
//!    allocation must stay within the committed band of the R = 1
//!    baseline on the fig2_replicated grid.

use speakup_exp::driver::report_json;
use speakup_exp::registry::{find, FAIRNESS_BAND};
use speakup_exp::runner::{run_sharded, RunReport};
use speakup_exp::scenario::{Mode, Scenario};
use speakup_exp::scenarios;
use speakup_net::time::SimDuration;

/// The deterministic payload of one run, as the bytes `speakup run
/// --json` would emit for it.
fn payload(r: &RunReport) -> String {
    report_json(r).pretty()
}

/// One representative scenario per committed golden workload, shortened
/// so the 4 workloads × 4 shard widths battery stays test-suite sized.
fn golden_workloads() -> Vec<Scenario> {
    vec![
        scenarios::fig2(0.5, Mode::Auction).duration(SimDuration::from_secs(3)),
        scenarios::fig6().duration(SimDuration::from_secs(3)),
        scenarios::fig7(false).duration(SimDuration::from_secs(3)),
        scenarios::flash_crowd(Mode::Auction).duration(SimDuration::from_secs(3)),
    ]
}

#[test]
fn single_replica_is_byte_identical_to_the_classic_engine() {
    for sc in golden_workloads() {
        let classic = payload(&run_sharded(&sc, 1));
        for shards in [1u32, 2, 4, 8] {
            let explicit = payload(&run_sharded(&sc.clone().thinners(1), shards));
            assert_eq!(
                classic, explicit,
                "{}: --thinners 1 --shards {shards} diverged from the classic engine",
                sc.name
            );
        }
    }
}

#[test]
fn replicated_runs_are_shard_invariant() {
    for r in [2u32, 4] {
        let sc = scenarios::fig2(0.5, Mode::Auction)
            .duration(SimDuration::from_secs(3))
            .thinners(r)
            .sync_period(SimDuration::from_millis(10));
        let base = payload(&run_sharded(&sc, 1));
        for shards in [2u32, 4, 8] {
            let sharded = payload(&run_sharded(&sc, shards));
            assert_eq!(
                base, sharded,
                "R={r}: report changed between --shards 1 and --shards {shards}"
            );
        }
    }
}

#[test]
fn replica_payloads_change_behavior_only_above_one() {
    // Control for test 1's sensitivity: the battery would be vacuous if
    // the serialization ignored what the replicas do. R=2 must actually
    // move at least one checked field vs R=1 on the same scenario.
    let sc = scenarios::fig2(0.5, Mode::Auction).duration(SimDuration::from_secs(3));
    let one = payload(&run_sharded(&sc, 1));
    let two = payload(&run_sharded(
        &sc.clone()
            .thinners(2)
            .sync_period(SimDuration::from_millis(10)),
        1,
    ));
    assert_ne!(one, two, "R=2 serialized identically to R=1");
}

#[test]
fn fairness_stays_within_the_committed_band() {
    // The fig2_replicated grid at a CI-sized duration: every replicated
    // point's good-client allocation within FAIRNESS_BAND of R=1. The
    // committed golden records the same band (fairness.band), which
    // `speakup compare` then checks structurally.
    let entry = find("fig2_replicated").expect("registered entry");
    let grid = entry.build_grid();
    let reports: Vec<RunReport> = grid
        .iter()
        .map(|sc| run_sharded(&sc.clone().duration(SimDuration::from_secs(10)), 1))
        .collect();
    let baseline = reports
        .iter()
        .find(|r| r.thinners == 1)
        .expect("R=1 baseline in the grid")
        .good_fraction();
    for r in &reports {
        let delta = (r.good_fraction() - baseline).abs();
        assert!(
            delta <= FAIRNESS_BAND,
            "{}: good allocation {:.3} drifted {delta:.3} from the R=1 \
             baseline {baseline:.3} (band {FAIRNESS_BAND})",
            r.name,
            r.good_fraction()
        );
    }
}
