//! Fault-injection battery (ISSUE 10): determinism and failover fidelity.
//!
//! 1. A faulted run is still a deterministic simulation. Fault events
//!    enter the engine in canonical `(time, lane, seq)` order, so for
//!    *random* schedules — crash victim × crash instant × outage length
//!    × link-flap seed — the serialized report must be byte-identical
//!    across `--shards {1,2,4}` at every replica count `{1,2,4}` the
//!    schedule applies to.
//! 2. Failover fidelity: at R=2 with one replica crashed for the rest
//!    of the run, the survivor detects the silent digest, absorbs the
//!    dead replica's capacity share, and the run's allocation lands
//!    within the committed fault band of the classic R=1 engine.
//!
//! Uses the vendored proptest stub: deterministic generation, no
//! shrinking — a failure reports the case number for replay.

use speakup_exp::driver::report_json;
use speakup_exp::registry::FAULT_GOODPUT_BAND;
use speakup_exp::runner::{run_sharded, RunReport};
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios;
use speakup_net::time::{SimDuration, SimTime};

/// The deterministic payload of one run, as the bytes `speakup run
/// --json` would emit for it.
fn payload(r: &RunReport) -> String {
    report_json(r).pretty()
}

mod shard_invariance {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Each case runs 3 replica counts x 3 shard widths of a
        // 3-second simulation; keep the count test-suite sized.
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Random fault schedules are invariant to how the population
        /// splits across shards, for every replica count.
        #[test]
        fn faulted_runs_are_shard_invariant(
            crash_at_ms in 200u64..2500,
            down_ms in 100u64..2000,
            victim in 0u32..4,
            flap_seed in any::<u64>(),
        ) {
            for thinners in [1u32, 2, 4] {
                let sc = scenarios::fig2(0.5, Mode::Auction)
                    .duration(SimDuration::from_secs(3))
                    .thinners(thinners)
                    .sync_period(SimDuration::from_millis(10))
                    .link_flaps(
                        flap_seed,
                        SimDuration::from_millis(800),
                        SimDuration::from_millis(50),
                    )
                    .crash_replica(
                        victim % thinners,
                        SimTime::from_nanos(crash_at_ms * 1_000_000),
                        SimDuration::from_millis(down_ms),
                    );
                let base = payload(&run_sharded(&sc, 1));
                for shards in [2u32, 4] {
                    let sharded = payload(&run_sharded(&sc, shards));
                    prop_assert_eq!(
                        &base,
                        &sharded,
                        "R={} crash@{}ms+{}ms flap seed {:#x}: report changed \
                         between --shards 1 and --shards {}",
                        thinners,
                        crash_at_ms,
                        down_ms,
                        flap_seed,
                        shards
                    );
                }
            }
        }
    }
}

/// Control for the battery's sensitivity: injecting a crash must
/// actually change the serialized report — otherwise the invariance
/// property above would hold vacuously on a fault path that never runs.
#[test]
fn injected_faults_change_behavior() {
    let clean = scenarios::fig2(0.5, Mode::Auction)
        .duration(SimDuration::from_secs(3))
        .thinners(2)
        .sync_period(SimDuration::from_millis(10));
    let faulted = clean
        .clone()
        .crash_replica(1, SimTime::from_secs(1), SimDuration::from_secs(1));
    assert_ne!(
        payload(&run_sharded(&clean, 1)),
        payload(&run_sharded(&faulted, 1)),
        "a mid-run replica crash serialized identically to a clean run"
    );
}

/// One of two replicas crashes early and never comes back: the survivor
/// must notice (failover timestamp set), take over the full contender
/// load, and end the run within the committed band of the classic R=1
/// engine — a dead replica degrades service to R=1, it does not wedge
/// the auction.
#[test]
fn crashed_replica_at_r2_degrades_to_the_classic_engine() {
    let classic = run_sharded(
        &scenarios::fig2(0.5, Mode::Auction).duration(SimDuration::from_secs(10)),
        1,
    );
    let faulted = run_sharded(
        &scenarios::fig2(0.5, Mode::Auction)
            .duration(SimDuration::from_secs(10))
            .thinners(2)
            .sync_period(SimDuration::from_millis(10))
            // Down for 9 s from t=2: the restart lands past the end of
            // the run, so the survivor carries the load alone.
            .crash_replica(1, SimTime::from_secs(2), SimDuration::from_secs(9)),
        1,
    );
    let f = faulted
        .failover
        .as_ref()
        .expect("a crash spec must produce a failover report");
    assert!(
        f.time_to_failover_s().is_some(),
        "survivor never marked the dead replica stale"
    );
    assert!(
        f.rejoin_at_s.is_none(),
        "replica restarted outside the run but re-joined inside it"
    );
    let delta = (faulted.good_fraction() - classic.good_fraction()).abs();
    assert!(
        delta <= FAULT_GOODPUT_BAND,
        "post-failover allocation {:.3} drifted {delta:.3} from the classic \
         engine's {:.3} (band {FAULT_GOODPUT_BAND})",
        faulted.good_fraction(),
        classic.good_fraction()
    );
}
