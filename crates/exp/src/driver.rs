//! The unified experiment driver behind the `speakup` binary.
//!
//! Replaces the twelve former one-figure binaries with subcommands over
//! the [`crate::registry`]:
//!
//! ```text
//! speakup list [--json]
//! speakup run <name>... | all [--secs N] [--seed N] [--seeds K]
//!             [--jobs N] [--shards K] [--json]
//! speakup compare <golden.json>... [--tol X]
//! ```
//!
//! `run` instantiates the entry's scenario grid and drives every grid
//! point × seed replicate through the worker pool
//! ([`crate::runner::run_all_pooled`]), each run optionally split over
//! `--shards K` synchronized event loops. It prints the figure's human
//! table (mean ± 95% CI across replicates when `--seeds > 1`), a
//! per-replicate summary, and a machine-readable JSON report; `--json`
//! suppresses the tables. `compare` re-runs a committed golden report
//! and diffs it with per-metric tolerances ([`crate::compare`]). The
//! argument parsing is dependency-free, absorbing what `cli.rs` used to
//! provide for each binary.

use crate::json::Json;
use crate::registry::{registry, Entry, Kind, RunOptions};
use crate::report::{frac, table, Reps};
use crate::runner::{default_jobs, run_all_pooled, RunReport};
use crate::scenario::{FaultSpec, Scenario};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `speakup list`: describe every registry entry.
    List {
        /// Emit JSON instead of the table.
        json: bool,
    },
    /// `speakup run <names>`: execute entries.
    Run {
        /// Entry names, already validated against the registry.
        names: Vec<String>,
        /// Shared run options.
        opts: RunOptions,
        /// Emit only JSON (no human tables).
        json_only: bool,
    },
    /// `speakup compare <golden.json>...`: re-run and diff against
    /// committed golden reports.
    Compare {
        /// Golden report paths.
        paths: Vec<String>,
        /// Tolerance scale factor.
        tol_scale: f64,
        /// Worker pool size override.
        jobs: Option<usize>,
        /// Shard count for the re-runs.
        shards: u32,
    },
    /// `speakup lint`: run the determinism-audit static analysis over
    /// the workspace sources.
    Lint {
        /// Workspace root override (default: ascend from cwd).
        root: Option<String>,
        /// Emit diagnostics as JSON.
        json: bool,
    },
    /// `speakup help`.
    Help,
}

/// CLI usage text.
pub const USAGE: &str = "\
speakup — drive the paper's experiments from one binary

USAGE:
    speakup list [--json]
    speakup run <name>... | all [--secs N] [--seed N] [--seeds K]
                [--jobs N] [--shards K] [--thinners R] [--sync-period MS]
                [--faults SPEC] [--fault-seed N] [--json]
    speakup compare <golden.json>... [--tol X] [--jobs N] [--shards K]
    speakup lint [--root <dir>] [--json]
    speakup help

OPTIONS (run):
    --secs N    simulated seconds per run (default: the entry's paper value)
    --seed N    base RNG seed (default 0x5ea4); replicate k uses seed+k
    --seeds K   seed replicates per grid point (default 1); with K > 1 the
                figure tables report mean ± 95% CI across replicates
    --jobs N    worker pool size for grid points × replicates
                (default: available cores / shards)
    --shards K  shard event loops per run: the client population splits
                across K synchronized loops (default 1). Reports are
                byte-identical for every K; only wall-clock time changes.
    --thinners R
                override the thinner replica count of every auction-mode
                grid point: the virtual auction runs on R replicas
                exchanging epoch bid digests (default: the scenario's
                own count, usually 1). Non-auction grid points keep
                their single thinner.
    --sync-period MS
                override the replica digest-sync cadence, milliseconds
                (only meaningful with more than one thinner)
    --faults SPEC
                inject deterministic faults into every run. SPEC is a
                comma-separated list of `replica=<idx>@<at_s>+<down_s>`
                entries: crash thinner replica <idx> at <at_s> simulated
                seconds for <down_s> seconds. A crash entry applies only
                to grid points with more than <idx> replicas; repeated
                --faults flags accumulate.
    --fault-seed N
                additionally flap every client uplink on a seed-N
                randomized schedule (Poisson onsets, mean 10 s between
                flaps, mean 200 ms down). The schedule derives from N
                alone, so a run is reproducible from its command line.
    --json      print only the machine-readable JSON report

OPTIONS (compare):
    --tol X     scale every per-metric tolerance by X (default 1)

OPTIONS (lint):
    --root DIR  workspace root to scan (default: ascend from cwd to the
                first Cargo.toml declaring [workspace])
    --json      emit the diagnostics as a JSON array

Repeated flags follow a last-wins policy: `--jobs 2 --jobs 4` runs with
4 workers. `--secs 0` is rejected (a zero-length run has no rates).

Run `speakup list` for the experiment names and their paper sections.";

/// A flag's numeric argument (any value).
fn flag_num(flag: &str, v: Option<&&String>) -> Result<u64, String> {
    v.and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("{flag} needs a number"))
}

/// A flag's numeric argument, required to be at least 1.
fn flag_positive(flag: &str, v: Option<&&String>) -> Result<u64, String> {
    flag_num(flag, v).and_then(|n| {
        if n == 0 {
            Err(format!("{flag} must be at least 1"))
        } else {
            Ok(n)
        }
    })
}

/// `--secs N`: a zero-length run has no time base, so every rate and
/// utilization would be NaN (serialized as JSON `null`, which `compare`
/// would then misread as structure drift). Rejected up front, as is any
/// value too large for the nanosecond clock (no silent wrap).
fn parse_secs(v: Option<&&String>) -> Result<SimDuration, String> {
    let n = flag_num("--secs", v)?;
    if n == 0 {
        return Err(
            "--secs must be at least 1: a zero-second run has no time base, so rates \
             and utilization would be NaN"
                .into(),
        );
    }
    let nanos = n
        .checked_mul(speakup_net::time::NANOS_PER_SEC)
        .ok_or_else(|| format!("--secs {n} does not fit the nanosecond simulation clock"))?;
    Ok(SimDuration::from_nanos(nanos))
}

/// `--jobs N`: shared by the run and compare subcommands. The checked
/// conversion matters on 16/32-bit targets, where a huge u64 would
/// otherwise truncate silently.
fn parse_jobs(v: Option<&&String>) -> Result<usize, String> {
    let n = flag_positive("--jobs", v)?;
    usize::try_from(n).map_err(|_| format!("--jobs {n} does not fit this platform's usize"))
}

/// `--shards K`: shared by the run and compare subcommands. Checked
/// like `--jobs` — out-of-range values error instead of truncating.
fn parse_shards(v: Option<&&String>) -> Result<u32, String> {
    let n = flag_positive("--shards", v)?;
    u32::try_from(n).map_err(|_| format!("--shards {n} does not fit in 32 bits"))
}

/// `--faults SPEC`: comma-separated fault entries, each
/// `replica=<idx>@<at_s>+<down_s>` (integer simulated seconds). The
/// flags accumulate instead of last-wins: a sweep may crash two
/// different replicas in one run.
fn parse_faults(v: Option<&&String>) -> Result<Vec<FaultSpec>, String> {
    const SHAPE: &str = "replica=<idx>@<at_s>+<down_s>";
    let spec = v.ok_or_else(|| format!("--faults needs a spec ({SHAPE})"))?;
    let secs_ns = |what: &str, s: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .ok()
            .and_then(|n| n.checked_mul(speakup_net::time::NANOS_PER_SEC))
            .ok_or_else(|| format!("--faults: {what} {s:?} must fit the nanosecond clock"))
    };
    let mut out = Vec::new();
    for part in spec.split(',') {
        let rest = part
            .strip_prefix("replica=")
            .ok_or_else(|| format!("--faults: unsupported entry {part:?} (expected {SHAPE})"))?;
        let (idx, timing) = rest
            .split_once('@')
            .ok_or_else(|| format!("--faults: entry {part:?} has no @<at_s> (expected {SHAPE})"))?;
        let (at, down) = timing.split_once('+').ok_or_else(|| {
            format!("--faults: entry {part:?} has no +<down_s> (expected {SHAPE})")
        })?;
        let replica = idx
            .parse::<u32>()
            .map_err(|_| format!("--faults: replica index {idx:?} must be a u32"))?;
        let down_ns = secs_ns("outage", down)?;
        if down_ns == 0 {
            return Err(format!(
                "--faults: entry {part:?} has a zero-length outage (a crash must keep \
                 the replica down for at least a second)"
            ));
        }
        out.push(FaultSpec::ReplicaCrash {
            replica,
            at: SimTime::from_nanos(secs_ns("crash time", at)?),
            down_for: SimDuration::from_nanos(down_ns),
        });
    }
    Ok(out)
}

/// Parse a command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            let mut json = false;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    other => return Err(format!("unknown argument for list: {other}")),
                }
            }
            Ok(Command::List { json })
        }
        "run" => {
            let mut names: Vec<String> = Vec::new();
            let mut opts = RunOptions::default();
            let mut json_only = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--secs" => {
                        opts.duration = Some(parse_secs(rest.get(i + 1))?);
                        i += 2;
                    }
                    "--seed" => {
                        opts.seed = flag_num("--seed", rest.get(i + 1))?;
                        i += 2;
                    }
                    "--seeds" => {
                        let k = flag_positive("--seeds", rest.get(i + 1))?;
                        opts.seeds = u32::try_from(k)
                            .map_err(|_| format!("--seeds {k} does not fit in 32 bits"))?;
                        i += 2;
                    }
                    "--jobs" => {
                        opts.jobs = Some(parse_jobs(rest.get(i + 1))?);
                        i += 2;
                    }
                    "--shards" => {
                        opts.shards = parse_shards(rest.get(i + 1))?;
                        i += 2;
                    }
                    "--thinners" => {
                        let n = flag_positive("--thinners", rest.get(i + 1))?;
                        opts.thinners = Some(
                            u32::try_from(n)
                                .map_err(|_| format!("--thinners {n} does not fit in 32 bits"))?,
                        );
                        i += 2;
                    }
                    "--sync-period" => {
                        let ms = flag_positive("--sync-period", rest.get(i + 1))?;
                        let nanos = ms.checked_mul(1_000_000).ok_or_else(|| {
                            format!("--sync-period {ms} does not fit the nanosecond clock")
                        })?;
                        opts.sync_period = Some(SimDuration::from_nanos(nanos));
                        i += 2;
                    }
                    "--faults" => {
                        opts.faults.extend(parse_faults(rest.get(i + 1))?);
                        i += 2;
                    }
                    "--fault-seed" => {
                        let seed = flag_num("--fault-seed", rest.get(i + 1))?;
                        opts.faults.push(FaultSpec::LinkFlaps {
                            seed,
                            mean_every: SimDuration::from_secs(10),
                            mean_down: SimDuration::from_millis(200),
                        });
                        i += 2;
                    }
                    "--json" => {
                        json_only = true;
                        i += 1;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown argument for run: {flag}"));
                    }
                    name => {
                        names.push(name.to_string());
                        i += 1;
                    }
                }
            }
            if names.is_empty() {
                return Err("run needs at least one experiment name (or `all`)".into());
            }
            if names.iter().any(|n| n == "all") {
                names = registry().iter().map(|e| e.name.to_string()).collect();
            } else {
                for n in &names {
                    if crate::registry::find(n).is_none() {
                        let known: Vec<&str> = registry().iter().map(|e| e.name).collect();
                        return Err(format!(
                            "unknown experiment {n}; known: {}",
                            known.join(", ")
                        ));
                    }
                }
            }
            Ok(Command::Run {
                names,
                opts,
                json_only,
            })
        }
        "compare" => {
            let mut paths = Vec::new();
            let mut tol_scale = 1.0f64;
            let mut jobs = None;
            let mut shards = 1u32;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--tol" => {
                        tol_scale = rest
                            .get(i + 1)
                            .and_then(|s| s.parse::<f64>().ok())
                            .filter(|v| *v > 0.0)
                            .ok_or("--tol needs a positive number")?;
                        i += 2;
                    }
                    "--jobs" => {
                        jobs = Some(parse_jobs(rest.get(i + 1))?);
                        i += 2;
                    }
                    "--shards" => {
                        shards = parse_shards(rest.get(i + 1))?;
                        i += 2;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown argument for compare: {flag}"));
                    }
                    p => {
                        paths.push(p.to_string());
                        i += 1;
                    }
                }
            }
            if paths.is_empty() {
                return Err("compare needs at least one golden report path".into());
            }
            Ok(Command::Compare {
                paths,
                tol_scale,
                jobs,
                shards,
            })
        }
        "lint" => {
            let mut root = None;
            let mut json = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--root" => {
                        root = Some(
                            rest.get(i + 1)
                                .ok_or("--root needs a directory")?
                                .to_string(),
                        );
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    other => return Err(format!("unknown argument for lint: {other}")),
                }
            }
            Ok(Command::Lint { root, json })
        }
        other => Err(format!("unknown subcommand {other}\n\n{USAGE}")),
    }
}

/// Everything produced by executing one entry.
pub struct EntryRun {
    /// The registry entry.
    pub entry: &'static Entry,
    /// The instantiated grid (paper defaults overridden by options).
    pub scenarios: Vec<Scenario>,
    /// All reports, grid-major then seed-minor (empty for analytic).
    pub reports: Vec<RunReport>,
    /// Seed replicates per grid point.
    pub seeds: u32,
    /// The rendered human output.
    pub table: String,
    /// Analytic entries' extra JSON payload.
    analytic_json: Option<Json>,
}

/// Execute one entry: instantiate its grid with the options, run every
/// grid point × replicate through the worker pool (each run split over
/// `opts.shards` event loops), and render its tables.
pub fn execute(entry: &'static Entry, opts: &RunOptions) -> EntryRun {
    match entry.kind {
        Kind::Sim { render, .. } => {
            let duration = opts.duration_for(entry);
            let grid = entry.build_grid();
            let mut all: Vec<Scenario> = Vec::with_capacity(grid.len() * opts.seeds as usize);
            for sc in &grid {
                for k in 0..opts.seeds {
                    let mut replicate = sc.clone();
                    replicate.duration = duration;
                    replicate.seed = opts.seed + k as u64;
                    // Replication coordinates through auction bid
                    // digests, so the override only touches auction-mode
                    // grid points; OFF/retry/profile points in the same
                    // grid keep their single thinner.
                    if let Some(r) = opts.thinners {
                        if matches!(replicate.mode, crate::scenario::Mode::Auction) {
                            replicate.thinners = r;
                        }
                    }
                    if let Some(p) = opts.sync_period {
                        replicate.sync_period = p;
                    }
                    // Fault overrides: a replica crash only makes sense
                    // on grid points that actually run that replica
                    // (non-auction or low-R points are left fault-free
                    // rather than rejected, so `run all --faults ...`
                    // works); link flaps apply to every point.
                    for f in &opts.faults {
                        match *f {
                            FaultSpec::ReplicaCrash { replica, .. } => {
                                if replica < replicate.thinners {
                                    replicate.faults.push(*f);
                                }
                            }
                            FaultSpec::LinkFlaps { .. } => replicate.faults.push(*f),
                        }
                    }
                    all.push(replicate);
                }
            }
            let jobs = opts.jobs.unwrap_or_else(|| default_jobs(opts.shards));
            let reports = run_all_pooled(&all, jobs, opts.shards);
            let groups: Vec<Reps> = reports.chunks(opts.seeds as usize).map(Reps).collect();
            let mut text = render(&grid, &groups);
            if opts.seeds > 1 {
                text.push_str(&replicate_table(&reports));
            }
            EntryRun {
                entry,
                scenarios: all,
                reports,
                seeds: opts.seeds,
                table: text,
                analytic_json: None,
            }
        }
        Kind::Analytic { run } => {
            let (text, json) = run(opts);
            EntryRun {
                entry,
                scenarios: Vec::new(),
                reports: Vec::new(),
                // Analytic entries measure once; reporting the requested
                // replicate count would claim measurements never taken.
                seeds: 1,
                table: text,
                analytic_json: Some(json),
            }
        }
    }
}

/// A per-replicate summary across all runs (printed when `--seeds > 1`).
fn replicate_table(reports: &[RunReport]) -> String {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:#x}", r.seed),
                r.mode.clone(),
                frac(r.good_fraction()),
                frac(r.good_served_fraction()),
                frac(r.server_utilization),
            ]
        })
        .collect();
    format!(
        "\nSeed replicates ({} runs):\n{}",
        reports.len(),
        table(
            &[
                "scenario",
                "seed",
                "mode",
                "alloc good",
                "good served",
                "util"
            ],
            &rows
        )
    )
}

fn samples_json(s: &Samples) -> Json {
    let mut s = s.clone();
    if s.is_empty() {
        return Json::obj().field("n", 0u64);
    }
    Json::obj()
        .field("n", s.len())
        .field("mean", s.mean())
        .field("stddev", s.stddev())
        .field("p50", s.percentile(50.0))
        .field("p90", s.percentile(90.0))
        .field("min", s.min())
        .field("max", s.max())
}

fn class_json(c: &speakup_core::metrics::ClassReport) -> Json {
    Json::obj()
        .field("clients", c.clients)
        .field("generated", c.generated)
        .field("issued", c.issued)
        .field("served", c.served)
        .field("denied", c.denied)
        .field("served_fraction", c.served_fraction())
        .field("latency_s", samples_json(&c.latency))
        .field("payment_bytes", samples_json(&c.payment_bytes))
        .field("payment_time_s", samples_json(&c.payment_time))
}

/// Serialize one run report.
pub fn report_json(r: &RunReport) -> Json {
    let per_client: Vec<Json> = r
        .per_client
        .iter()
        .map(|pc| {
            Json::obj()
                .field("generated", pc.generated)
                .field("served", pc.served)
                .field("denied", pc.denied)
                .field("is_bad", pc.is_bad)
                .field("behind_bottleneck", pc.behind_bottleneck)
        })
        .collect();
    let mut doc = Json::obj()
        .field("name", r.name.as_str())
        .field("mode", r.mode.as_str())
        .field("seed", r.seed);
    // Replication fields appear only for replicated runs, so
    // single-thinner reports (and every committed pre-replica golden)
    // stay byte-identical.
    if r.thinners > 1 {
        doc = doc
            .field("thinners", r.thinners)
            .field("sync_period_ms", r.sync_period.as_nanos() / 1_000_000);
    }
    doc.field("duration_s", r.duration_s)
        .field("good", class_json(&r.good))
        .field("bad", class_json(&r.bad))
        .field(
            "allocation",
            Json::obj()
                .field("good", r.allocation.good)
                .field("bad", r.allocation.bad)
                .field("good_fraction", r.good_fraction()),
        )
        .field(
            "quanta",
            Json::obj()
                .field("good", r.quanta.good)
                .field("bad", r.quanta.bad),
        )
        .field("price_good_bytes", samples_json(&r.price_good))
        .field("price_bad_bytes", samples_json(&r.price_bad))
        .field("server_utilization", r.server_utilization)
        .field("payment_bytes_total", r.payment_bytes_total)
        .field("thinner_drops", r.thinner_drops)
        .field(
            "wget_latencies_s",
            match &r.wget_latencies {
                Some(s) => samples_json(s),
                None => Json::Null,
            },
        )
        .field("per_client", per_client)
}

/// Wall-clock throughput of one executed entry's runs, as the CLI-only
/// `perf` section. Host- and load-dependent, so it is attached by
/// [`dispatch`] after [`entry_json`] builds the deterministic payload —
/// the goldens and the shard-invariance tests compare the latter and
/// must stay byte-identical across machines and `--shards`.
pub fn perf_json(run: &EntryRun) -> Json {
    let runs: Vec<Json> = run
        .reports
        .iter()
        .map(|r| {
            let events: u64 = r.shard_events.iter().sum();
            let dispatch = r
                .dispatch_counts
                .iter()
                .fold(Json::obj(), |o, &(name, count)| o.field(name, count));
            Json::obj()
                .field("name", r.name.as_str())
                .field("seed", r.seed)
                .field("events", events)
                .field("wall_secs", r.wall_secs)
                .field("events_per_sec", per_sec(events, r.wall_secs))
                .field("dispatch", dispatch)
        })
        .collect();
    Json::obj().field("runs", runs)
}

fn per_sec(events: u64, wall_secs: f64) -> f64 {
    if wall_secs > 0.0 {
        events as f64 / wall_secs
    } else {
        0.0
    }
}

/// The machine-readable document for one executed entry.
pub fn entry_json(run: &EntryRun, opts: &RunOptions) -> Json {
    let mut doc = Json::obj()
        .field("experiment", run.entry.name)
        .field("section", run.entry.section)
        .field("title", run.entry.title)
        .field("grid", run.entry.grid)
        .field("analytic", !run.entry.is_simulated())
        .field("duration_s", opts.duration_for(run.entry).as_secs_f64())
        .field("base_seed", opts.seed)
        .field("seeds", run.seeds);
    // Echo CLI replica overrides so `speakup compare` re-runs a golden
    // produced with them under the same options. Absent (not 1/100ms)
    // when unset, keeping pre-replica goldens byte-identical.
    if let Some(t) = opts.thinners {
        doc = doc.field("thinners_override", t);
    }
    if let Some(p) = opts.sync_period {
        doc = doc.field("sync_period_override_ms", p.as_nanos() / 1_000_000);
    }
    if !opts.faults.is_empty() {
        doc = doc.field(
            "faults_override",
            opts.faults.iter().map(fault_json).collect::<Vec<_>>(),
        );
    }
    if let Some(extra) = &run.analytic_json {
        doc = doc.field("analysis", extra.clone());
    }
    // Replicated entries carry a fairness-divergence section: each grid
    // point's good-client allocation against the R=1 baseline, plus the
    // committed band the regression test enforces. An all-replicated
    // grid (e.g. fig2_faults, every point R=4) has no such baseline —
    // a delta against a made-up 0.0 would be noise, so the section is
    // omitted entirely.
    let baseline_r1 = run.reports.iter().find(|r| r.thinners == 1);
    if run.reports.iter().any(|r| r.thinners > 1) && baseline_r1.is_some() {
        let base_frac = baseline_r1.map(|r| r.good_fraction()).unwrap_or(0.0);
        let divergence: Vec<Json> = run
            .reports
            .iter()
            .map(|r| {
                Json::obj()
                    .field("name", r.name.as_str())
                    .field("thinners", r.thinners)
                    .field("sync_period_ms", r.sync_period.as_nanos() / 1_000_000)
                    .field("good_fraction", r.good_fraction())
                    .field("delta_vs_r1", r.good_fraction() - base_frac)
            })
            .collect();
        doc = doc.field(
            "fairness",
            Json::obj()
                .field("band", crate::registry::FAIRNESS_BAND)
                .field("baseline_good_fraction", base_frac)
                .field("divergence", Json::Arr(divergence)),
        );
    }
    // Runs with an injected replica crash carry a failover section: the
    // crash/restart instants, how long the survivors took to notice and
    // how long the restarted replica took to re-join (null when the
    // event never happened inside the run), and the good-client share
    // of the work completed during the outage window — the metric the
    // committed band constrains.
    let failover_runs: Vec<Json> = run
        .reports
        .iter()
        .filter_map(|r| {
            let f = r.failover.as_ref()?;
            let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
            Some(
                Json::obj()
                    .field("name", r.name.as_str())
                    .field("seed", r.seed)
                    .field("crash_at_s", f.crash_at_s)
                    .field("restart_at_s", f.restart_at_s)
                    .field("time_to_failover_s", opt(f.time_to_failover_s()))
                    .field("time_to_recovery_s", opt(f.time_to_recovery_s()))
                    .field("outage_good", f.outage_allocation.good)
                    .field("outage_bad", f.outage_allocation.bad)
                    .field("outage_good_fraction", f.outage_good_fraction()),
            )
        })
        .collect();
    if !failover_runs.is_empty() {
        doc = doc.field(
            "failover",
            Json::obj()
                .field("band", crate::registry::FAULT_GOODPUT_BAND)
                .field("runs", Json::Arr(failover_runs)),
        );
    }
    doc.field(
        "runs",
        run.reports.iter().map(report_json).collect::<Vec<_>>(),
    )
}

/// One fault override as echoed in the report header
/// (`faults_override`). Nanosecond u64 fields so `speakup compare` can
/// reconstruct the exact schedule (seconds through f64 would round).
pub fn fault_json(f: &FaultSpec) -> Json {
    match *f {
        FaultSpec::ReplicaCrash {
            replica,
            at,
            down_for,
        } => Json::obj()
            .field("kind", "replica_crash")
            .field("replica", replica)
            .field("at_ns", at.as_nanos())
            .field("down_for_ns", down_for.as_nanos()),
        FaultSpec::LinkFlaps {
            seed,
            mean_every,
            mean_down,
        } => Json::obj()
            .field("kind", "link_flaps")
            .field("seed", seed)
            .field("mean_every_ns", mean_every.as_nanos())
            .field("mean_down_ns", mean_down.as_nanos()),
    }
}

/// The `speakup list` table.
pub fn list_table() -> String {
    let rows: Vec<Vec<String>> = registry()
        .iter()
        .map(|e| {
            let runs = if e.is_simulated() {
                format!("{}", e.build_grid().len())
            } else {
                "analytic".to_string()
            };
            vec![
                e.name.to_string(),
                e.section.to_string(),
                runs,
                format!("{}", e.default_secs),
                e.grid.to_string(),
            ]
        })
        .collect();
    table(&["name", "paper", "runs", "secs", "grid"], &rows)
}

/// The `speakup list --json` document.
pub fn list_json() -> Json {
    Json::Arr(
        registry()
            .iter()
            .map(|e| {
                Json::obj()
                    .field("name", e.name)
                    .field("section", e.section)
                    .field("title", e.title)
                    .field("grid", e.grid)
                    .field("default_secs", e.default_secs)
                    .field("analytic", !e.is_simulated())
                    .field("runs", e.build_grid().len())
            })
            .collect(),
    )
}

/// Execute a parsed command, writing human output to `out` and progress
/// to `progress` (the binary passes stdout and stderr).
pub fn dispatch(
    cmd: &Command,
    out: &mut dyn std::io::Write,
    progress: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    match cmd {
        Command::Help => writeln!(out, "{USAGE}"),
        Command::List { json } => {
            if *json {
                write!(out, "{}", list_json().pretty())
            } else {
                write!(out, "{}", list_table())
            }
        }
        Command::Run {
            names,
            opts,
            json_only,
        } => {
            let mut docs = Vec::new();
            for name in names {
                let entry = crate::registry::find(name).expect("validated by parse");
                if entry.is_simulated() {
                    let n_runs = entry.build_grid().len() * opts.seeds as usize;
                    writeln!(
                        progress,
                        "{name}: {n_runs} runs x {}s simulated ...",
                        opts.duration_for(entry).as_secs_f64()
                    )?;
                } else {
                    writeln!(progress, "{name}: analytic measurement ...")?;
                }
                let run = execute(entry, opts);
                if !*json_only {
                    write!(out, "{}", run.table)?;
                    // Wall-clock footer: one line per run (host-dependent
                    // diagnostics; the table above stays deterministic).
                    for r in &run.reports {
                        let events: u64 = r.shard_events.iter().sum();
                        writeln!(
                            out,
                            "perf: {} seed {}: {} events in {:.3}s wall = {:.0} events/sec",
                            r.name,
                            r.seed,
                            events,
                            r.wall_secs,
                            per_sec(events, r.wall_secs),
                        )?;
                    }
                }
                docs.push(entry_json(&run, opts).field("perf", perf_json(&run)));
            }
            let doc = if docs.len() == 1 {
                docs.pop().expect("one doc")
            } else {
                Json::Arr(docs)
            };
            if !*json_only {
                writeln!(out, "\nJSON report:")?;
            }
            write!(out, "{}", doc.pretty())
        }
        Command::Lint { root, json } => {
            let root = match root {
                Some(r) => std::path::PathBuf::from(r),
                None => {
                    let cwd = std::env::current_dir()?;
                    speakup_lint::find_workspace_root(&cwd).ok_or_else(|| {
                        std::io::Error::other(format!(
                            "no workspace root found above {}",
                            cwd.display()
                        ))
                    })?
                }
            };
            let diags = speakup_lint::lint_workspace(&root)?;
            if *json {
                write!(out, "{}", speakup_lint::render_json(&diags))?;
            } else {
                write!(out, "{}", speakup_lint::render_report(&diags))?;
            }
            if speakup_lint::has_errors(&diags) {
                let errors = diags.len();
                return Err(std::io::Error::other(format!(
                    "lint found {errors} violation(s)"
                )));
            }
            Ok(())
        }
        Command::Compare {
            paths,
            tol_scale,
            jobs,
            shards,
        } => {
            let mut failures = 0usize;
            for path in paths {
                let ok =
                    crate::compare::compare_file(path, *tol_scale, *jobs, *shards, out, progress)?;
                if !ok {
                    failures += 1;
                }
            }
            if failures > 0 {
                return Err(std::io::Error::other(format!(
                    "{failures} golden comparison(s) failed"
                )));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_list_and_help() {
        assert_eq!(parse(&s(&["list"])).unwrap(), Command::List { json: false });
        assert_eq!(
            parse(&s(&["list", "--json"])).unwrap(),
            Command::List { json: true }
        );
        assert_eq!(parse(&s(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_run_flags() {
        let cmd = parse(&s(&[
            "run", "fig3", "--secs", "60", "--seed", "7", "--seeds", "4",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                names,
                opts,
                json_only,
            } => {
                assert_eq!(names, vec!["fig3"]);
                assert_eq!(opts.duration, Some(SimDuration::from_secs(60)));
                assert_eq!(opts.seed, 7);
                assert_eq!(opts.seeds, 4);
                assert!(!json_only);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_all_expands_to_registry() {
        match parse(&s(&["run", "all", "--json"])).unwrap() {
            Command::Run {
                names, json_only, ..
            } => {
                assert_eq!(names.len(), registry().len());
                assert!(json_only);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_jobs_shards_and_compare() {
        match parse(&s(&["run", "fig3", "--jobs", "2", "--shards", "4"])).unwrap() {
            Command::Run { opts, .. } => {
                assert_eq!(opts.jobs, Some(2));
                assert_eq!(opts.shards, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&s(&[
            "compare",
            "golden/fig2.json",
            "--tol",
            "2.5",
            "--shards",
            "2",
        ]))
        .unwrap()
        {
            Command::Compare {
                paths,
                tol_scale,
                shards,
                ..
            } => {
                assert_eq!(paths, vec!["golden/fig2.json"]);
                assert!((tol_scale - 2.5).abs() < 1e-12);
                assert_eq!(shards, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&s(&["run", "fig3", "--shards", "0"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--jobs", "0"])).is_err());
        assert!(parse(&s(&["compare"])).is_err());
        assert!(parse(&s(&["compare", "x.json", "--frobnicate"])).is_err());
    }

    #[test]
    fn parses_lint() {
        assert_eq!(
            parse(&s(&["lint"])).unwrap(),
            Command::Lint {
                root: None,
                json: false
            }
        );
        assert_eq!(
            parse(&s(&["lint", "--root", "/tmp/ws", "--json"])).unwrap(),
            Command::Lint {
                root: Some("/tmp/ws".into()),
                json: true
            }
        );
        assert!(parse(&s(&["lint", "--root"])).is_err());
        assert!(parse(&s(&["lint", "--frobnicate"])).is_err());
        assert!(parse(&s(&["compare", "x.json", "--tol", "-1"])).is_err());
    }

    #[test]
    fn zero_second_runs_are_rejected_with_a_reason() {
        let err = parse(&s(&["run", "fig3", "--secs", "0"])).unwrap_err();
        assert!(err.contains("--secs must be at least 1"), "got: {err}");
        assert!(err.contains("NaN"), "error should say why: {err}");
        // Missing and non-numeric arguments still fail too.
        assert!(parse(&s(&["run", "fig3", "--secs"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--secs", "ten"])).is_err());
    }

    #[test]
    fn jobs_conversion_is_checked_not_truncating() {
        // Larger than any usize on 16/32-bit targets: must be an error
        // there and exact everywhere else — never a silent truncation.
        let huge = format!("{}", u64::MAX);
        match parse(&s(&["run", "fig3", "--jobs", &huge])) {
            Ok(Command::Run { opts, .. }) => {
                assert_eq!(opts.jobs, Some(u64::MAX as usize));
                assert_eq!(opts.jobs.unwrap() as u64, u64::MAX, "truncated");
            }
            Ok(other) => panic!("unexpected {other:?}"),
            Err(e) => assert!(e.contains("does not fit"), "got: {e}"),
        }
        // --shards and --seeds are u32 everywhere: oversized values are
        // an error, never a silent wrap.
        let err = parse(&s(&["run", "fig3", "--shards", &huge])).unwrap_err();
        assert!(err.contains("does not fit"), "got: {err}");
        let err = parse(&s(&["run", "fig3", "--seeds", &huge])).unwrap_err();
        assert!(err.contains("does not fit"), "got: {err}");
    }

    #[test]
    fn repeated_flags_take_the_last_value() {
        match parse(&s(&[
            "run", "fig3", "--jobs", "2", "--jobs", "4", "--secs", "5", "--secs", "9", "--shards",
            "2", "--shards", "8",
        ]))
        .unwrap()
        {
            Command::Run { opts, .. } => {
                assert_eq!(opts.jobs, Some(4));
                assert_eq!(opts.duration, Some(SimDuration::from_secs(9)));
                assert_eq!(opts.shards, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The policy is documented where users will look for it.
        assert!(USAGE.contains("last-wins"));
    }

    #[test]
    fn parses_replica_flags() {
        match parse(&s(&[
            "run",
            "fig2_replicated",
            "--thinners",
            "4",
            "--sync-period",
            "25",
        ]))
        .unwrap()
        {
            Command::Run { opts, .. } => {
                assert_eq!(opts.thinners, Some(4));
                assert_eq!(opts.sync_period, Some(SimDuration::from_nanos(25_000_000)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: both absent means "use the scenario's own settings".
        match parse(&s(&["run", "fig3"])).unwrap() {
            Command::Run { opts, .. } => {
                assert_eq!(opts.thinners, None);
                assert_eq!(opts.sync_period, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Last-wins, like every other repeated flag.
        match parse(&s(&[
            "run",
            "fig3",
            "--thinners",
            "2",
            "--thinners",
            "8",
            "--sync-period",
            "5",
            "--sync-period",
            "50",
        ]))
        .unwrap()
        {
            Command::Run { opts, .. } => {
                assert_eq!(opts.thinners, Some(8));
                assert_eq!(opts.sync_period, Some(SimDuration::from_nanos(50_000_000)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fault_flags() {
        // One crash entry, one flap schedule; --faults accumulates.
        match parse(&s(&[
            "run",
            "fig2_faults",
            "--faults",
            "replica=1@15+10",
            "--faults",
            "replica=2@30+5",
            "--fault-seed",
            "7",
        ]))
        .unwrap()
        {
            Command::Run { opts, .. } => {
                assert_eq!(
                    opts.faults,
                    vec![
                        FaultSpec::ReplicaCrash {
                            replica: 1,
                            at: SimTime::from_secs(15),
                            down_for: SimDuration::from_secs(10),
                        },
                        FaultSpec::ReplicaCrash {
                            replica: 2,
                            at: SimTime::from_secs(30),
                            down_for: SimDuration::from_secs(5),
                        },
                        FaultSpec::LinkFlaps {
                            seed: 7,
                            mean_every: SimDuration::from_secs(10),
                            mean_down: SimDuration::from_millis(200),
                        },
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Comma-separated entries in one flag parse the same way.
        match parse(&s(&[
            "run",
            "fig3",
            "--faults",
            "replica=0@5+2,replica=3@8+1",
        ]))
        .unwrap()
        {
            Command::Run { opts, .. } => assert_eq!(opts.faults.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // Default: no faults.
        match parse(&s(&["run", "fig3"])).unwrap() {
            Command::Run { opts, .. } => assert!(opts.faults.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_flags_reject_malformed_specs() {
        for bad in [
            "replica=1",          // no timing
            "replica=1@15",       // no outage
            "replica=1@15+0",     // zero-length outage
            "replica=x@15+10",    // non-numeric index
            "replica=1@soon+10",  // non-numeric time
            "link=3@1+1",         // unknown kind
            "",                   // empty entry
            "replica=1@15+10,,x", // empty entry in a list
        ] {
            assert!(
                parse(&s(&["run", "fig3", "--faults", bad])).is_err(),
                "spec {bad:?} should be rejected"
            );
        }
        // Missing value and overflow fail like any other flag.
        assert!(parse(&s(&["run", "fig3", "--faults"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--fault-seed"])).is_err());
        let huge = format!("replica=1@{}+10", u64::MAX);
        let err = parse(&s(&["run", "fig3", "--faults", &huge])).unwrap_err();
        assert!(err.contains("must fit"), "got: {err}");
    }

    #[test]
    fn replica_flags_reject_zero_and_overflow() {
        // Zero replicas / a zero-length epoch are meaningless.
        assert!(parse(&s(&["run", "fig3", "--thinners", "0"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--sync-period", "0"])).is_err());
        // Missing and non-numeric values fail like any other flag.
        assert!(parse(&s(&["run", "fig3", "--thinners"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--sync-period", "soon"])).is_err());
        // --thinners is u32; --sync-period milliseconds must survive the
        // *1e6 conversion to nanoseconds. Both error instead of wrapping.
        let huge = format!("{}", u64::MAX);
        let err = parse(&s(&["run", "fig3", "--thinners", &huge])).unwrap_err();
        assert!(err.contains("does not fit"), "got: {err}");
        let err = parse(&s(&["run", "fig3", "--sync-period", &huge])).unwrap_err();
        assert!(err.contains("does not fit"), "got: {err}");
        // The largest representable sync period still parses.
        let max_ms = u64::MAX / 1_000_000;
        assert!(parse(&s(&["run", "fig3", "--sync-period", &format!("{max_ms}")])).is_ok());
    }

    #[test]
    fn secs_beyond_the_nanosecond_clock_are_rejected() {
        // u64::MAX seconds * 1e9 would wrap the nanosecond clock to an
        // arbitrary short duration in release builds.
        let huge = format!("{}", u64::MAX);
        let err = parse(&s(&["run", "fig3", "--secs", &huge])).unwrap_err();
        assert!(err.contains("does not fit"), "got: {err}");
        // The largest representable value still parses.
        let max_ok = u64::MAX / 1_000_000_000;
        let cmd = parse(&s(&["run", "fig3", "--secs", &format!("{max_ok}")]));
        assert!(cmd.is_ok());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&s(&["run"])).is_err());
        assert!(parse(&s(&["run", "nonesuch"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--secs"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--seeds", "0"])).is_err());
        assert!(parse(&s(&["run", "fig3", "--frobnicate"])).is_err());
        assert!(parse(&s(&["frobnicate"])).is_err());
        assert!(parse(&s(&["list", "--frobnicate"])).is_err());
    }

    #[test]
    fn list_table_names_every_entry() {
        let t = list_table();
        for e in registry() {
            assert!(t.contains(e.name), "list missing {}", e.name);
        }
        let j = list_json().pretty();
        for e in registry() {
            assert!(j.contains(e.name), "list --json missing {}", e.name);
        }
    }
}
