//! Ready-made scenario builders, one per paper experiment.
//!
//! Every builder uses the paper's parameters by default (600 s runs, 2
//! Mbit/s access links, λ/w client profiles). The registry runs them at
//! full length; benches shorten them with
//! [`crate::scenario::Scenario::duration`].

use crate::scenario::{BottleneckSpec, ClientSpec, Mode, Scenario, WebSpec};
use speakup_core::client::ClientProfile;
use speakup_net::time::SimDuration;

/// §7.2, Figure 2: 50 clients × 2 Mbit/s over a LAN, `c` = 100 req/s,
/// a fraction `f` of the clients good. Run with [`Mode::Auction`] ("ON")
/// and [`Mode::Off`] ("OFF") to regenerate both curves.
pub fn fig2(f_good: f64, mode: Mode) -> Scenario {
    assert!((0.0..=1.0).contains(&f_good));
    let n_good = (50.0 * f_good).round() as usize;
    let n_bad = 50 - n_good;
    let mut s = Scenario::new(format!("fig2 f={f_good:.1} {mode:?}"), 100.0, mode);
    s.add_clients(n_good, ClientSpec::lan(good_for(mode)));
    s.add_clients(n_bad, ClientSpec::lan(bad_for(mode)));
    s
}

/// Crowd scaling: Figure 2's `f = 0.5` point at a large population.
/// Per class (good, bad): `foreground` fully simulated clients plus
/// `cohorts` flyweight cohorts of `members` aggregated clients each.
/// Server capacity keeps fig2's per-client provisioning (`c = 2`
/// req/s-per-client × population), so the allocation shares stay in the
/// regime Figure 2 measures.
pub fn fig2_xl_sized(foreground: usize, cohorts: usize, members: u32) -> Scenario {
    let population = 2 * (foreground as u64 + cohorts as u64 * members as u64);
    let mut s = Scenario::new(
        format!("fig2_xl f=0.5 n={population}"),
        2.0 * population as f64,
        Mode::Auction,
    );
    s.add_clients(foreground, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(foreground, ClientSpec::lan(ClientProfile::bad()));
    s.add_cohorts(cohorts, members, ClientSpec::lan(ClientProfile::good()));
    s.add_cohorts(cohorts, members, ClientSpec::lan(ClientProfile::bad()));
    s
}

/// The registry's crowd-scaling baseline: 10^5 clients as 100 foreground
/// clients + 100 cohorts × 999 members.
///
/// Sizing notes: 999 members keeps each cohort node's flow churn well
/// inside the per-node flow-id space (2^20 flows/node,
/// [`speakup_net::packet::FLOW_NTH_BITS`]) for runs up to a few minutes
/// of simulated time — which is why the registry entry defaults to a
/// short run rather than the paper's 600 s. The path to 10^6 clients is
/// *more cohort nodes* (the node-id space holds 4096), not bigger
/// cohorts.
pub fn fig2_xl() -> Scenario {
    fig2_xl_sized(50, 50, 999)
}

/// §7.2, Figure 3 (and the latency/price measurements of Figures 4–5):
/// 25 good + 25 bad clients (G = B = 50 Mbit/s), server capacity `c` ∈
/// {50, 100, 200}. `c_id` = 100.
pub fn fig3(capacity: f64, mode: Mode) -> Scenario {
    let mut s = Scenario::new(format!("fig3 c={capacity} {mode:?}"), capacity, mode);
    s.add_clients(25, ClientSpec::lan(good_for(mode)));
    s.add_clients(25, ClientSpec::lan(bad_for(mode)));
    s
}

/// §7.4: same population as Figure 3; sweep `c` to find the smallest
/// capacity at which the good demand is (nearly) fully served. The paper
/// finds 115 — 15% above the bandwidth-proportional ideal `c_id` = 100.
pub fn min_capacity_sweep(mode: Mode, capacities: &[f64]) -> Vec<Scenario> {
    capacities.iter().map(|&c| fig3(c, mode)).collect()
}

/// §7.5, Figure 6: 50 good clients in five bandwidth categories
/// (category `i` ∈ 1..=5 has 10 clients at `0.5·i` Mbit/s), `c` = 10.
pub fn fig6() -> Scenario {
    let mut s = Scenario::new("fig6 heterogeneous bandwidth", 10.0, Mode::Auction);
    for i in 1..=5u64 {
        s.add_clients(
            10,
            ClientSpec::lan(ClientProfile::good()).bandwidth(500_000 * i),
        );
    }
    s
}

/// §7.5, Figure 7: 50 clients in five RTT categories (category `i` has
/// RTT `100·i` ms), all good or all bad, 2 Mbit/s each, `c` = 10.
pub fn fig7(all_bad: bool) -> Scenario {
    let name = if all_bad {
        "fig7 all-bad"
    } else {
        "fig7 all-good"
    };
    let mut s = Scenario::new(name, 10.0, Mode::Auction);
    for i in 1..=5u64 {
        let profile = if all_bad {
            ClientProfile::bad()
        } else {
            ClientProfile::good()
        };
        // One-way access delay = RTT/2.
        s.add_clients(
            10,
            ClientSpec::lan(profile).delay(SimDuration::from_millis(50 * i)),
        );
    }
    s
}

/// §7.6, Figure 8: `n_good_behind` good and `30 − n_good_behind` bad
/// clients share a 40 Mbit/s bottleneck; 10 good and 10 bad clients
/// connect directly; `c` = 50. The paper uses 5/25, 15/15, 25/5.
pub fn fig8(n_good_behind: usize) -> Scenario {
    assert!(n_good_behind <= 30);
    let mut s = Scenario::new(
        format!("fig8 {n_good_behind} good behind bottleneck"),
        50.0,
        Mode::Auction,
    );
    s.bottleneck = Some(BottleneckSpec {
        rate_bps: 40_000_000,
        delay: SimDuration::from_micros(500),
        queue_packets: 100,
    });
    s.add_clients(
        n_good_behind,
        ClientSpec::lan(ClientProfile::good()).bottlenecked(),
    );
    s.add_clients(
        30 - n_good_behind,
        ClientSpec::lan(ClientProfile::bad()).bottlenecked(),
    );
    s.add_clients(10, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(10, ClientSpec::lan(ClientProfile::bad()));
    s
}

/// §7.7, Figure 9: 10 good speak-up clients and an HTTP downloader share
/// a 1 Mbit/s, 100 ms one-way bottleneck; the thinner fronts a `c` = 2
/// server; a separate web server serves `file_bytes` downloads.
/// `speakup_on` toggles the payment traffic (the paper's with/without).
pub fn fig9(file_bytes: u64, speakup_on: bool) -> Scenario {
    let mode = if speakup_on { Mode::Auction } else { Mode::Off };
    let mut s = Scenario::new(
        format!("fig9 {file_bytes}B speakup={}", speakup_on),
        2.0,
        mode,
    );
    s.bottleneck = Some(BottleneckSpec {
        rate_bps: 1_000_000,
        delay: SimDuration::from_millis(100),
        // A deep (bufferbloat-era) FIFO: at 1 Mbit/s, a full queue adds
        // ~1.8 s of delay, which is what turns payment traffic into the
        // paper's ~5x latency inflation for bystander downloads.
        queue_packets: 150,
    });
    s.add_clients(10, ClientSpec::lan(ClientProfile::good()).bottlenecked());
    s.web = Some(WebSpec {
        file_bytes,
        downloads: 100,
    });
    s
}

/// §5 extension: heterogeneous requests. Good clients send difficulty-1
/// requests; bad clients send difficulty-`hard` requests. Compare
/// [`Mode::Auction`] (which charges every request the same emergent
/// price, so attackers get `hard×` the work per byte) against
/// [`Mode::Quantum`] (per-quantum auctions restore byte-proportionality).
pub fn heterogeneous_requests(mode: Mode, hard: f64) -> Scenario {
    let mut s = Scenario::new(format!("hetero hard={hard} {mode:?}"), 20.0, mode);
    s.add_clients(10, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(10, ClientSpec::lan(ClientProfile::bad().difficulty(hard)));
    s
}

/// §8.1 comparison: profiling (per-identity rate limiting) vs speak-up,
/// with and without spoofing attackers. Profiling crushes naive bots but
/// collapses against per-request fresh identities; the bandwidth tax is
/// indifferent to identity ("taxing clients is easier than identifying
/// them", §3.2).
pub fn profiling_comparison(mode: Mode, spoof: bool) -> Scenario {
    let mut s = Scenario::new(format!("profiling {mode:?} spoof={spoof}"), 20.0, mode);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
    let bad = if spoof {
        ClientProfile::bad().spoofing()
    } else {
        ClientProfile::bad()
    };
    s.add_clients(5, ClientSpec::lan(bad));
    s
}

/// §9 "flash crowds": all clients good, demand far above capacity.
pub fn flash_crowd(mode: Mode) -> Scenario {
    let mut s = Scenario::new(format!("flash crowd {mode:?}"), 20.0, mode);
    s.add_clients(50, ClientSpec::lan(ClientProfile::good()));
    s
}

fn good_for(mode: Mode) -> ClientProfile {
    let p = ClientProfile::good();
    match mode {
        // Baseline drops are reported to the client (a 503, in HTTP
        // terms); under encouragement the client pays until it wins or
        // the thinner drops it, so no local give-up is needed.
        Mode::Off => p,
        _ => p,
    }
}

fn bad_for(mode: Mode) -> ClientProfile {
    let p = ClientProfile::bad();
    match mode {
        Mode::Off => p,
        _ => p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_population_split() {
        let s = fig2(0.3, Mode::Auction);
        let good = s.clients.iter().filter(|c| !c.profile.is_bad).count();
        let bad = s.clients.iter().filter(|c| c.profile.is_bad).count();
        assert_eq!((good, bad), (15, 35));
        assert!((s.ideal_good_share() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fig2_xl_population_and_provisioning() {
        let s = fig2_xl();
        assert_eq!(s.population(), 100_000);
        assert_eq!(s.clients.len(), 100);
        assert_eq!(s.cohorts.len(), 100);
        assert!((s.ideal_good_share() - 0.5).abs() < 1e-12);
        // fig2's 2 req/s-per-client provisioning, scaled.
        assert!((s.capacity - 200_000.0).abs() < 1e-9);
        assert!((s.good_demand() - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_is_half_and_half() {
        let s = fig3(100.0, Mode::Off);
        assert_eq!(s.clients.len(), 50);
        assert!((s.ideal_good_share() - 0.5).abs() < 1e-12);
        assert_eq!(s.good_demand(), 50.0);
    }

    #[test]
    fn fig6_bandwidth_ladder() {
        let s = fig6();
        assert_eq!(s.clients.len(), 50);
        assert_eq!(s.clients[0].access_bps, 500_000);
        assert_eq!(s.clients[49].access_bps, 2_500_000);
        assert_eq!(s.bad_bandwidth_bps(), 0);
    }

    #[test]
    fn fig7_rtt_ladder() {
        let s = fig7(false);
        assert_eq!(s.clients[0].access_delay, SimDuration::from_millis(50));
        assert_eq!(s.clients[49].access_delay, SimDuration::from_millis(250));
        let b = fig7(true);
        assert!(b.clients.iter().all(|c| c.profile.is_bad));
    }

    #[test]
    fn fig8_placement() {
        let s = fig8(5);
        let behind = s.clients.iter().filter(|c| c.behind_bottleneck).count();
        assert_eq!(behind, 30);
        assert!(s.bottleneck.is_some());
        let good_behind = s
            .clients
            .iter()
            .filter(|c| c.behind_bottleneck && !c.profile.is_bad)
            .count();
        assert_eq!(good_behind, 5);
    }

    #[test]
    fn fig9_has_web_traffic() {
        let s = fig9(65536, true);
        assert!(s.web.is_some());
        assert_eq!(s.capacity, 2.0);
        assert!(matches!(s.mode, Mode::Auction));
        let off = fig9(1024, false);
        assert!(matches!(off.mode, Mode::Off));
    }

    #[test]
    fn hetero_difficulty_applied() {
        let s = heterogeneous_requests(
            Mode::Quantum {
                quantum: SimDuration::from_millis(100),
            },
            5.0,
        );
        let hard = s
            .clients
            .iter()
            .filter(|c| c.profile.is_bad)
            .all(|c| c.profile.difficulty == 5.0);
        assert!(hard);
    }
}
