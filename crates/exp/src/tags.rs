//! Message tags: typed speak-up messages packed into the simulator's
//! per-message `u64` tag.
//!
//! The simulator delivers `(flow, tag)` pairs; we pack the message kind in
//! the top byte and the request id in the low 56 bits. The sender's
//! identity comes from the flow's source node, exactly as a real thinner
//! derives it from the connection — and consistent with the paper's
//! threat model, nothing here is trusted for fairness, only used for
//! correlation and measurement.

use speakup_core::types::RequestId;

/// The kind of a message, client ↔ thinner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Client → thinner: the actual request (§6's request (1)).
    Request,
    /// Client → thinner: first message on a payment flow, correlating the
    /// channel with a request id (the `id` field of §6).
    PaymentHeader,
    /// Client → thinner: one dummy-byte POST chunk (§6's request (2)).
    PaymentChunk,
    /// Client → thinner: one §3.2 retry.
    Retry,
    /// Thinner → client: open a payment channel and start paying.
    Encourage,
    /// Thinner → client: your POST finished but you have not won; POST
    /// again (the re-issued JavaScript of §6).
    Continue,
    /// Thinner → client: your request was served; body is the response.
    Response,
    /// Thinner → client: your request was dropped (channel timeout, §5
    /// abort, or an explicit baseline drop).
    Dropped,
    /// Client → web server (Fig 9): fetch a file.
    FileRequest,
    /// Web server → client (Fig 9): the file.
    FileResponse,
}

impl Kind {
    fn code(self) -> u8 {
        match self {
            Kind::Request => 1,
            Kind::PaymentHeader => 2,
            Kind::PaymentChunk => 3,
            Kind::Retry => 4,
            Kind::Encourage => 5,
            Kind::Continue => 6,
            Kind::Response => 7,
            Kind::Dropped => 8,
            Kind::FileRequest => 9,
            Kind::FileResponse => 10,
        }
    }

    fn from_code(code: u8) -> Option<Kind> {
        Some(match code {
            1 => Kind::Request,
            2 => Kind::PaymentHeader,
            3 => Kind::PaymentChunk,
            4 => Kind::Retry,
            5 => Kind::Encourage,
            6 => Kind::Continue,
            7 => Kind::Response,
            8 => Kind::Dropped,
            9 => Kind::FileRequest,
            10 => Kind::FileResponse,
            _ => return None,
        })
    }
}

const ID_MASK: u64 = (1 << 56) - 1;

/// Pack a message kind and request id into a tag.
pub fn pack(kind: Kind, id: RequestId) -> u64 {
    debug_assert!(id.0 <= ID_MASK, "request id overflow");
    ((kind.code() as u64) << 56) | (id.0 & ID_MASK)
}

/// Unpack a tag. Panics on garbage — tags only come from [`pack`].
pub fn unpack(tag: u64) -> (Kind, RequestId) {
    let kind = Kind::from_code((tag >> 56) as u8).expect("corrupt message tag");
    (kind, RequestId(tag & ID_MASK))
}

/// Wire sizes of the protocol's small messages, matching the §6 HTTP
/// exchange: a service GET, the POST head, control responses.
pub mod sizes {
    /// The actual request: a small GET.
    pub const REQUEST: u64 = 400;
    /// Payment-channel registration (POST request line + headers).
    pub const PAYMENT_HEADER: u64 = 200;
    /// One §3.2 retry message.
    pub const RETRY: u64 = 400;
    /// Encourage / continue / dropped control responses.
    pub const CONTROL: u64 = 300;
    /// A served response (the emulated server's output HTML).
    pub const RESPONSE: u64 = 1_000;
    /// Fig 9 file request.
    pub const FILE_REQUEST: u64 = 300;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            Kind::Request,
            Kind::PaymentHeader,
            Kind::PaymentChunk,
            Kind::Retry,
            Kind::Encourage,
            Kind::Continue,
            Kind::Response,
            Kind::Dropped,
            Kind::FileRequest,
            Kind::FileResponse,
        ] {
            for id in [0u64, 1, 12345, ID_MASK] {
                let tag = pack(kind, RequestId(id));
                assert_eq!(unpack(tag), (kind, RequestId(id)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "corrupt message tag")]
    fn garbage_tag_panics() {
        unpack(0xFF << 56);
    }
}
