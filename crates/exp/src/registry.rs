//! The scenario registry: every paper experiment as a named entry.
//!
//! Each entry couples a scenario constructor from [`crate::scenarios`]
//! with its paper section, default duration, parameter grid, and the
//! table renderer that used to live in a dedicated `fig*` binary. The
//! unified `speakup` CLI (see [`crate::driver`]) lists and runs entries;
//! nothing else in the repo hard-codes experiment wiring.
//!
//! Two kinds of entry exist:
//!
//! * **simulated** — a grid of [`Scenario`]s run through
//!   [`crate::runner::run_all`], rendered into the figure's table;
//! * **analytic** — direct measurements with no packet simulation (the
//!   Theorem 3.1 auction game, the §7.1 payment-sink throughput).

use crate::json::Json;
use crate::report::{count_est, frac, frac_est, kbytes, kbytes_est, secs_est, table, Est, Reps};
use crate::runner::RunReport;
use crate::scenario::{FaultSpec, Mode, Scenario};
use crate::scenarios;
use speakup_net::time::{SimDuration, SimTime};

/// Options shared by every entry run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOptions {
    /// Simulated duration; `None` means the entry's paper default.
    pub duration: Option<SimDuration>,
    /// Base RNG seed; replicate `k` runs with `seed + k`.
    pub seed: u64,
    /// Seed replicates per grid point (≥ 1). With more than one, figure
    /// tables report mean ± 95% CI across the replicates.
    pub seeds: u32,
    /// Worker pool size; `None` sizes it to the host
    /// (`available_parallelism / shards`).
    pub jobs: Option<usize>,
    /// Shard event loops per run (split client populations).
    pub shards: u32,
    /// Thinner replica override; `None` keeps each scenario's own count
    /// (1 everywhere except the replicated entries).
    pub thinners: Option<u32>,
    /// Replica digest-sync cadence override; `None` keeps each
    /// scenario's own period.
    pub sync_period: Option<SimDuration>,
    /// Fault overrides (`--faults`, `--fault-seed`), appended to every
    /// grid point's own schedule. Replica crashes apply only to grid
    /// points with enough replicas (a crash spec for replica 1 is
    /// meaningless against a single-thinner point); link flaps apply to
    /// every point.
    pub faults: Vec<FaultSpec>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            duration: None,
            seed: 0x5ea4,
            seeds: 1,
            jobs: None,
            shards: 1,
            thinners: None,
            sync_period: None,
            faults: Vec::new(),
        }
    }
}

impl RunOptions {
    /// The effective duration for an entry.
    pub fn duration_for(&self, entry: &Entry) -> SimDuration {
        self.duration
            .unwrap_or(SimDuration::from_secs(entry.default_secs))
    }
}

/// How an entry produces its results.
pub(crate) enum Kind {
    /// A grid of simulator scenarios plus a table renderer. The renderer
    /// receives the grid (paper-default scenarios, in grid order) and,
    /// per grid point, all of its seed replicates (base seed first);
    /// scalar cells render as mean ± 95% CI when replicated.
    Sim {
        build: fn() -> Vec<Scenario>,
        render: fn(&[Scenario], &[Reps]) -> String,
    },
    /// A direct measurement: returns the human table and JSON rows.
    Analytic {
        run: fn(&RunOptions) -> (String, Json),
    },
}

/// One registered experiment.
pub struct Entry {
    /// CLI name (the former binary name).
    pub name: &'static str,
    /// Paper section / figure.
    pub section: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Paper-default simulated seconds.
    pub default_secs: u64,
    /// Human description of the parameter grid.
    pub grid: &'static str,
    pub(crate) kind: Kind,
}

impl Entry {
    /// Whether the entry runs packet simulations (vs a direct measurement).
    pub fn is_simulated(&self) -> bool {
        matches!(self.kind, Kind::Sim { .. })
    }

    /// The entry's scenario grid with paper defaults (empty for analytic
    /// entries).
    pub fn build_grid(&self) -> Vec<Scenario> {
        match self.kind {
            Kind::Sim { build, .. } => build(),
            Kind::Analytic { .. } => Vec::new(),
        }
    }
}

/// Every registered experiment, in paper order.
pub fn registry() -> &'static [Entry] {
    &REGISTRY
}

/// Look up an entry by CLI name.
pub fn find(name: &str) -> Option<&'static Entry> {
    REGISTRY.iter().find(|e| e.name == name)
}

static REGISTRY: [Entry; 16] = [
    Entry {
        name: "fig2",
        section: "§7.2, Figure 2",
        title: "allocation to good clients vs their bandwidth fraction, with/without speak-up",
        default_secs: 600,
        grid: "f ∈ {0.1,0.3,0.5,0.7,0.9} × {auction,off}",
        kind: Kind::Sim {
            build: build_fig2,
            render: render_fig2,
        },
    },
    Entry {
        name: "fig2_xl",
        section: "§7.2 at scale",
        title: "crowd scaling: fig2's f=0.5 point at 10^5 clients via flyweight cohorts",
        // Short by design, twice over: cohort nodes churn flows fast
        // enough that the paper's 600 s would exhaust the per-node
        // flow-id space (see `scenarios::fig2_xl`), and the population
        // moves ~2 x 10^8 events per simulated second, so even one
        // second is minutes of wall clock on one core. One second is
        // plenty to measure allocation; the engine bench measures
        // throughput/RSS over a milliseconds window for the same reason.
        default_secs: 1,
        grid: "single run (100 foreground clients + 100 cohorts × 999 members)",
        kind: Kind::Sim {
            build: build_fig2_xl,
            render: render_fig2_xl,
        },
    },
    Entry {
        name: "fig2_replicated",
        section: "§7.2 replicated",
        title:
            "replicated thinners: fig2's f=0.5 point with R auction replicas syncing bid digests",
        default_secs: 60,
        grid: "R=1 + R ∈ {2,4,8} × sync ∈ {10,100} ms",
        kind: Kind::Sim {
            build: build_fig2_replicated,
            render: render_fig2_replicated,
        },
    },
    Entry {
        name: "fig2_faults",
        section: "§7.2 robustness",
        title: "replica failover: fig2's f=0.5 point with R=4 replicas, one crashing mid-run",
        default_secs: 60,
        grid: "sync ∈ {10,100} ms × (baseline + crash@{15,30} s)",
        kind: Kind::Sim {
            build: build_fig2_faults,
            render: render_fig2_faults,
        },
    },
    Entry {
        name: "fig3",
        section: "§7.2–7.3, Figures 3–5",
        title: "provisioning regimes: allocation, payment time, and price vs capacity",
        default_secs: 600,
        grid: "c ∈ {50,100,200} × {off,auction}",
        kind: Kind::Sim {
            build: build_fig3,
            render: render_fig3,
        },
    },
    Entry {
        name: "min_capacity",
        section: "§7.4",
        title: "smallest capacity at which all good demand is served (adversarial advantage)",
        default_secs: 600,
        grid: "c ∈ {100,110,115,125,140,160,180,200}",
        kind: Kind::Sim {
            build: build_min_capacity,
            render: render_min_capacity,
        },
    },
    Entry {
        name: "fig6",
        section: "§7.5, Figure 6",
        title: "heterogeneous client bandwidths: allocation tracks the bandwidth ideal",
        default_secs: 600,
        grid: "single run (5 bandwidth categories)",
        kind: Kind::Sim {
            build: build_fig6,
            render: render_fig6,
        },
    },
    Entry {
        name: "fig7",
        section: "§7.5, Figure 7",
        title: "heterogeneous RTTs: long RTTs hurt good clients, not bad ones",
        default_secs: 600,
        grid: "{all-good, all-bad} (5 RTT categories each)",
        kind: Kind::Sim {
            build: build_fig7,
            render: render_fig7,
        },
    },
    Entry {
        name: "fig8",
        section: "§7.6, Figure 8",
        title: "good and bad clients sharing a bottleneck link",
        default_secs: 600,
        grid: "good-behind-l ∈ {5,15,25}",
        kind: Kind::Sim {
            build: build_fig8,
            render: render_fig8,
        },
    },
    Entry {
        name: "fig9",
        section: "§7.7, Figure 9",
        title: "impact on bystander HTTP downloads sharing the bottleneck",
        default_secs: 600,
        grid: "size ∈ {1,4,16,64,100} KB × {off,on}",
        kind: Kind::Sim {
            build: build_fig9,
            render: render_fig9,
        },
    },
    Entry {
        name: "hetero",
        section: "§5",
        title: "heterogeneous requests: plain auction vs per-quantum auction",
        default_secs: 600,
        grid: "{auction, quantum(10ms)}, hard=5",
        kind: Kind::Sim {
            build: build_hetero,
            render: render_hetero,
        },
    },
    Entry {
        name: "profiling",
        section: "§8.1",
        title: "detect-and-block (per-identity rate limiting) vs speak-up, ± spoofing",
        default_secs: 300,
        grid: "{profile,auction} × {honest,spoofing}",
        kind: Kind::Sim {
            build: build_profiling,
            render: render_profiling,
        },
    },
    Entry {
        name: "retry_ablation",
        section: "§3.2 vs §3.3",
        title: "ablation: random drops + aggressive retries vs the payment-channel auction",
        default_secs: 600,
        grid: "c ∈ {50,100,200} × {auction,retry}",
        kind: Kind::Sim {
            build: build_retry_ablation,
            render: render_retry_ablation,
        },
    },
    Entry {
        name: "flash_crowd",
        section: "§9",
        title: "flash crowds: all clients good, demand far above capacity",
        default_secs: 600,
        grid: "{auction, off}",
        kind: Kind::Sim {
            build: build_flash_crowd,
            render: render_flash_crowd,
        },
    },
    Entry {
        name: "adversary",
        section: "§3.4, Theorem 3.1",
        title: "auction game vs adversarial spending schedules (analytic, no simulation)",
        default_secs: 600,
        grid: "eps ∈ {0.05,0.1,0.2,0.3,0.5} × 4 strategies",
        kind: Kind::Analytic { run: run_adversary },
    },
    Entry {
        name: "capacity",
        section: "§7.1, Table 1",
        title: "payment-sink throughput: parse + credit at two frame sizes (analytic)",
        default_secs: 600,
        grid: "frame ∈ {1500,120} bytes",
        kind: Kind::Analytic { run: run_capacity },
    },
];

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

const FIG2_FS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn build_fig2() -> Vec<Scenario> {
    let mut scens = Vec::new();
    for &f in &FIG2_FS {
        for mode in [Mode::Auction, Mode::Off] {
            scens.push(scenarios::fig2(f, mode));
        }
    }
    scens
}

fn render_fig2(_scens: &[Scenario], reps: &[Reps]) -> String {
    let mut rows = Vec::new();
    for (i, &f) in FIG2_FS.iter().enumerate() {
        let with = reps[2 * i];
        let without = reps[2 * i + 1];
        rows.push(vec![
            format!("{f:.1}"),
            frac_est(with.est(|r| r.good_fraction())),
            frac_est(without.est(|r| r.good_fraction())),
            frac(f), // ideal = G/(G+B) = f in this homogeneous setting
        ]);
    }
    format!(
        "\nFigure 2: server allocation to good clients vs their bandwidth fraction (c=100)\n{}\
         paper shape: 'with' tracks the ideal line closely (slightly below);\n\
         'without' stays far below it because bad clients out-request good ones.\n",
        table(&["f=G/(G+B)", "with speak-up", "without", "ideal"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Figure 2 at scale (crowd scaling baseline)
// ---------------------------------------------------------------------------

fn build_fig2_xl() -> Vec<Scenario> {
    vec![scenarios::fig2_xl()]
}

fn render_fig2_xl(scens: &[Scenario], reps: &[Reps]) -> String {
    let rp = reps[0];
    let s = &scens[0];
    let rows = vec![vec![
        format!("{}", s.population()),
        format!("{}", s.clients.len()),
        format!("{}", s.cohorts.len()),
        frac_est(rp.est(|r| r.good_fraction())),
        frac(s.ideal_good_share()),
        frac_est(rp.est(|r| r.good_served_fraction())),
    ]];
    format!(
        "\nFigure 2 at scale: f=0.5 with a 10^5-client population (flyweight cohorts)\n{}\
         expected: the same near-ideal allocation fig2 shows at 50 clients —\n\
         the population size changes memory and event volume, not the share.\n",
        table(
            &[
                "population",
                "foreground",
                "cohorts",
                "alloc good",
                "ideal",
                "good served"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Replicated thinners (fig2's f=0.5 point across replica counts)
// ---------------------------------------------------------------------------

/// Committed fairness band for the replicated-thinner entry: the
/// good-client allocation share at any swept `R` must sit within this
/// absolute distance of the `R = 1` baseline. Recorded in the golden
/// (`fairness.band`) and enforced by the regression test in
/// `tests/thinner_equivalence.rs`.
pub const FAIRNESS_BAND: f64 = 0.05;

const REPLICA_COUNTS: [u32; 3] = [2, 4, 8];
const REPLICA_SYNC_MS: [u64; 2] = [10, 100];

fn build_fig2_replicated() -> Vec<Scenario> {
    let base = scenarios::fig2(0.5, Mode::Auction);
    let mut baseline = base.clone();
    baseline.name = "fig2_replicated R=1".to_string();
    let mut scens = vec![baseline];
    for &r in &REPLICA_COUNTS {
        for &ms in &REPLICA_SYNC_MS {
            let mut s = base
                .clone()
                .thinners(r)
                .sync_period(SimDuration::from_millis(ms));
            s.name = format!("fig2_replicated R={r} sync={ms}ms");
            scens.push(s);
        }
    }
    scens
}

fn render_fig2_replicated(scens: &[Scenario], reps: &[Reps]) -> String {
    let base_alloc = reps[0].est(|r| r.good_fraction()).mean;
    let mut rows = Vec::new();
    for (sc, rp) in scens.iter().zip(reps) {
        let alloc = rp.est(|r| r.good_fraction());
        rows.push(vec![
            format!("{}", sc.thinners),
            if sc.thinners > 1 {
                format!("{} ms", sc.sync_period.as_nanos() / 1_000_000)
            } else {
                "-".to_string()
            },
            frac_est(alloc),
            format!("{:+.3}", alloc.mean - base_alloc),
            frac_est(rp.est(|r| r.good_served_fraction())),
            frac(0.5),
        ]);
    }
    format!(
        "\nReplicated thinners: fig2 f=0.5 under R auction replicas (c=100, band ±{FAIRNESS_BAND})\n{}\
         expected: every R tracks the single thinner's allocation within the\n\
         band — replicas see only their own contenders, but the epoch digest\n\
         exchange re-rates each replica's capacity share toward the global\n\
         paid-byte proportions, so the aggregate allocation barely moves.\n\
         Staler syncs (100 ms vs 10 ms) may drift slightly further.\n",
        table(
            &[
                "R",
                "sync",
                "alloc good",
                "vs R=1",
                "good served",
                "ideal"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// §7.2 robustness: replica failover under a mid-run crash
// ---------------------------------------------------------------------------

/// Committed goodput band for the fault entry: the good-client share of
/// the work completed *during a replica outage* must sit within this
/// absolute distance of the same sync cadence's crash-free allocation
/// share. Recorded in the golden (`failover.band`) and enforced by the
/// regression test in `tests/fault_determinism.rs`.
pub const FAULT_GOODPUT_BAND: f64 = 0.10;

/// Replica count for the fault sweep (the acceptance case: 1 of R=4
/// replicas dies mid-run).
const FAULT_REPLICAS: u32 = 4;
/// Which replica crashes. Replica 1, not 0: replica 0 shares its node
/// with the classic thinner placement, and crashing a non-zero replica
/// exercises the appended-node path too.
const FAULT_CRASH_REPLICA: u32 = 1;
/// Swept crash instants, seconds.
const FAULT_CRASH_AT_S: [u64; 2] = [15, 30];
/// Outage length, seconds.
const FAULT_DOWN_FOR_S: u64 = 10;
/// Swept digest-sync cadences, milliseconds (failover latency scales
/// with the sync period: staleness is counted in missed sync epochs).
const FAULT_SYNC_MS: [u64; 2] = [10, 100];

fn build_fig2_faults() -> Vec<Scenario> {
    let base = scenarios::fig2(0.5, Mode::Auction).thinners(FAULT_REPLICAS);
    let mut scens = Vec::new();
    for &ms in &FAULT_SYNC_MS {
        let synced = base.clone().sync_period(SimDuration::from_millis(ms));
        let mut baseline = synced.clone();
        baseline.name = format!("fig2_faults R={FAULT_REPLICAS} sync={ms}ms baseline");
        scens.push(baseline);
        for &at in &FAULT_CRASH_AT_S {
            let mut s = synced.clone().crash_replica(
                FAULT_CRASH_REPLICA,
                SimTime::from_secs(at),
                SimDuration::from_secs(FAULT_DOWN_FOR_S),
            );
            s.name = format!("fig2_faults R={FAULT_REPLICAS} sync={ms}ms crash@{at}s");
            scens.push(s);
        }
    }
    scens
}

fn render_fig2_faults(scens: &[Scenario], reps: &[Reps]) -> String {
    // Each sync cadence's baseline (crash-free) allocation share is the
    // reference the crashed runs are banded against.
    let mut rows = Vec::new();
    let mut base_alloc = 0.0;
    for (sc, rp) in scens.iter().zip(reps) {
        let alloc = rp.est(|r| r.good_fraction());
        let f = rp.base().failover.as_ref();
        if f.is_none() {
            base_alloc = alloc.mean;
        }
        let opt_secs = |v: Option<f64>| match v {
            Some(s) => format!("{s:.2} s"),
            None => "-".to_string(),
        };
        rows.push(vec![
            format!("{} ms", sc.sync_period.as_nanos() / 1_000_000),
            f.map_or("-".to_string(), |f| format!("{:.0} s", f.crash_at_s)),
            frac_est(alloc),
            f.map_or("-".to_string(), |_| {
                format!("{:+.3}", alloc.mean - base_alloc)
            }),
            f.map_or("-".to_string(), |f| frac(f.outage_good_fraction())),
            opt_secs(f.and_then(|f| f.time_to_failover_s())),
            opt_secs(f.and_then(|f| f.time_to_recovery_s())),
        ]);
    }
    format!(
        "\nReplica failover: fig2 f=0.5, 1 of R={FAULT_REPLICAS} replicas crashes for \
         {FAULT_DOWN_FOR_S} s (band ±{FAULT_GOODPUT_BAND})\n{}\
         expected: survivors notice the silent digest within a few sync\n\
         periods, absorb the dead replica's capacity share, and the\n\
         good-client share of work completed during the outage stays\n\
         within the band of the crash-free baseline; the restarted\n\
         replica re-joins via its reset digest epoch.\n",
        table(
            &[
                "sync",
                "crash@",
                "alloc good",
                "vs baseline",
                "outage good",
                "t-failover",
                "t-recover"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Figures 3–5
// ---------------------------------------------------------------------------

const FIG3_CS: [f64; 3] = [50.0, 100.0, 200.0];

fn build_fig3() -> Vec<Scenario> {
    let mut scens = Vec::new();
    for &c in &FIG3_CS {
        for mode in [Mode::Off, Mode::Auction] {
            scens.push(scenarios::fig3(c, mode));
        }
    }
    scens
}

fn render_fig3(scens: &[Scenario], reps: &[Reps]) -> String {
    let mut out = String::new();

    // ---------- Figure 3 ----------
    let mut rows = Vec::new();
    for (i, &c) in FIG3_CS.iter().enumerate() {
        let off = reps[2 * i];
        let on = reps[2 * i + 1];
        for (label, r) in [("OFF", off), ("ON", on)] {
            rows.push(vec![
                format!("{c:.0},{label}"),
                frac_est(r.est(|x| x.good_fraction())),
                frac_est(r.est(|x| 1.0 - x.good_fraction())),
                frac_est(r.est(|x| x.good_served_fraction())),
            ]);
        }
    }
    out.push_str("\nFigure 3: allocation and good service by capacity (G=B=50 Mbit/s, c_id=100)\n");
    out.push_str(&table(
        &["c,mode", "alloc good", "alloc bad", "good served"],
        &rows,
    ));

    // ---------- Figure 4 ----------
    let mut rows = Vec::new();
    for (i, &c) in FIG3_CS.iter().enumerate() {
        let on = reps[2 * i + 1];
        rows.push(vec![
            format!("{c:.0}"),
            secs_est(on.est(|r| r.good.payment_time.mean())),
            secs_est(on.est(|r| r.good.payment_time.clone().percentile(90.0))),
        ]);
    }
    out.push_str("\nFigure 4: time uploading dummy bytes, served good requests (speak-up ON)\n");
    out.push_str(&table(&["c", "mean", "90th pct"], &rows));

    // ---------- Figure 5 ----------
    let mut rows = Vec::new();
    for (i, &c) in FIG3_CS.iter().enumerate() {
        let on = reps[2 * i + 1];
        let ub = scens[2 * i + 1].price_upper_bound();
        rows.push(vec![
            format!("{c:.0}"),
            kbytes(ub),
            kbytes_est(on.est(|r| r.price_good.mean())),
            kbytes_est(on.est(|r| r.price_bad.mean())),
        ]);
    }
    out.push_str("\nFigure 5: average price (payment bytes per served request, speak-up ON)\n");
    out.push_str(&table(&["c", "upper bound (G+B)/c", "good", "bad"], &rows));
    out.push_str(
        "paper shape: overloaded (c=50,100) prices approach but stay below the\n\
         bound (clients cannot use every last bit of bandwidth); at c=200 the\n\
         server is lightly loaded relative to demand and prices collapse.\n",
    );
    out
}

// ---------------------------------------------------------------------------
// §7.4 minimum capacity
// ---------------------------------------------------------------------------

const MIN_CAP_CS: [f64; 8] = [100.0, 110.0, 115.0, 125.0, 140.0, 160.0, 180.0, 200.0];

fn build_min_capacity() -> Vec<Scenario> {
    scenarios::min_capacity_sweep(Mode::Auction, &MIN_CAP_CS)
}

fn render_min_capacity(_scens: &[Scenario], reps: &[Reps]) -> String {
    let mut rows = Vec::new();
    let mut threshold: Option<f64> = None;
    for (rp, &c) in reps.iter().zip(&MIN_CAP_CS) {
        let served = rp.est(|r| r.good_served_fraction());
        // "Satisfied" up to simulation-edge censoring (~λ·w in-flight at
        // the cutoff) and stochastic backlog blips.
        if served.mean >= 0.99 && threshold.is_none() {
            threshold = Some(c);
        }
        rows.push(vec![
            format!("{c:.0}"),
            frac_est(served),
            frac_est(rp.est(|r| r.good_fraction())),
            format!("{:.0}%", (c / 100.0 - 1.0) * 100.0),
        ]);
    }
    let verdict = match threshold {
        Some(c) => format!(
            "good demand (essentially) fully served at c = {c:.0} — {:.0}% above the\n\
             bandwidth-proportional ideal (paper: 15%).\n",
            (c / 100.0 - 1.0) * 100.0
        ),
        None => "good demand not fully served in the swept range.\n".to_string(),
    };
    format!(
        "\nSection 7.4: provisioning needed to satisfy all good demand (c_id = 100)\n{}{verdict}",
        table(&["c", "good served", "alloc good", "over c_id"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

fn build_fig6() -> Vec<Scenario> {
    vec![scenarios::fig6()]
}

/// Served-request share of each 10-client category (Figs 6 and 7 group
/// clients in scenario order).
fn category_shares(r: &RunReport) -> [f64; 5] {
    let mut served = [0u64; 5];
    for (i, pc) in r.per_client.iter().enumerate() {
        served[i / 10] += pc.served;
    }
    let total = served.iter().sum::<u64>().max(1);
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = served[i] as f64 / total as f64;
    }
    out
}

fn render_fig6(_scens: &[Scenario], reps: &[Reps]) -> String {
    let rp = reps[0];
    let mut rows = Vec::new();
    for i in 0..5 {
        let bw_mbps = 0.5 * (i as f64 + 1.0);
        rows.push(vec![
            format!("{bw_mbps:.1}"),
            frac_est(rp.est(|r| category_shares(r)[i])),
            frac((i as f64 + 1.0) / 15.0),
        ]);
    }
    format!(
        "\nFigure 6: allocation by client bandwidth (all good, c=10)\n{}\
         paper shape: observed tracks the bandwidth-proportional ideal.\n",
        table(
            &["bandwidth Mbit/s", "observed share", "ideal share"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

fn build_fig7() -> Vec<Scenario> {
    vec![scenarios::fig7(false), scenarios::fig7(true)]
}

fn render_fig7(_scens: &[Scenario], reps: &[Reps]) -> String {
    let good = reps[0];
    let bad = reps[1];
    let mut rows = Vec::new();
    for i in 0..5 {
        rows.push(vec![
            format!("{}", 100 * (i + 1)),
            frac_est(good.est(|r| category_shares(r)[i])),
            frac_est(bad.est(|r| category_shares(r)[i])),
            frac(0.2),
        ]);
    }
    format!(
        "\nFigure 7: allocation by client RTT (c=10; separate all-good and all-bad runs)\n{}\
         paper shape: good clients' share falls with RTT (no more than ~2x off\n\
         ideal at the extremes); bad clients' share is flat — RTT doesn't matter\n\
         when you keep many concurrent requests outstanding.\n",
        table(
            &["RTT ms", "all-good share", "all-bad share", "ideal"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

const FIG8_SPLITS: [usize; 3] = [5, 15, 25];

fn build_fig8() -> Vec<Scenario> {
    FIG8_SPLITS.iter().map(|&n| scenarios::fig8(n)).collect()
}

/// Fig 8 derived metrics: (bottleneck's server share, good clients'
/// share of it, served fraction of good-behind-bottleneck demand).
fn fig8_derived(r: &RunReport) -> (f64, f64, f64) {
    let (mut bg, mut bb, mut bg_gen) = (0u64, 0u64, 0u64);
    let mut direct = 0u64;
    for pc in &r.per_client {
        if pc.behind_bottleneck {
            if pc.is_bad {
                bb += pc.served;
            } else {
                bg += pc.served;
                bg_gen += pc.generated;
            }
        } else {
            direct += pc.served;
        }
    }
    let behind = bg + bb;
    (
        behind as f64 / (behind + direct).max(1) as f64,
        bg as f64 / behind.max(1) as f64,
        bg as f64 / bg_gen.max(1) as f64,
    )
}

fn render_fig8(_scens: &[Scenario], reps: &[Reps]) -> String {
    let mut rows = Vec::new();
    for (rp, &n_good) in reps.iter().zip(&FIG8_SPLITS) {
        rows.push(vec![
            format!("{n_good} good, {} bad", 30 - n_good),
            frac_est(rp.est(|r| fig8_derived(r).0)),
            frac_est(rp.est(|r| fig8_derived(r).1)),
            frac(n_good as f64 / 30.0),
            frac_est(rp.est(|r| fig8_derived(r).2)),
        ]);
    }
    format!(
        "\nFigure 8: good and bad clients sharing a 40 Mbit/s bottleneck (c=50)\n{}\
         paper shape: clients behind l capture ~half the server, but *within*\n\
         that share the good clients get far less than their headcount ideal —\n\
         bad clients hog l with concurrent connections (and would with or\n\
         without speak-up).\n",
        table(
            &[
                "behind l",
                "l's server share",
                "good share of it",
                "ideal good share",
                "bottl. good served",
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

const FIG9_SIZES: [u64; 5] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 100 << 10];

fn build_fig9() -> Vec<Scenario> {
    let mut scens = Vec::new();
    for &size in &FIG9_SIZES {
        for on in [false, true] {
            scens.push(scenarios::fig9(size, on));
        }
    }
    scens
}

fn render_fig9(_scens: &[Scenario], reps: &[Reps]) -> String {
    let lat_mean = |r: &RunReport| r.wget_latencies.as_ref().expect("wget data").mean();
    // Single replicate: the download-latency spread within the run
    // (n = downloads). Replicated: mean of per-run means ± CI across
    // replicates, labelled with the replicate count — that, not the
    // per-run download count, is the CI's sample size.
    let cell = |rp: Reps, e: Est| {
        let base = rp.base().wget_latencies.as_ref().expect("wget data");
        match e.ci95 {
            None => format!(
                "{:.3} ± {:.3} (n={})",
                base.mean(),
                base.stddev(),
                base.len()
            ),
            Some(ci) => format!("{:.3}±{ci:.3} ({} reps)", e.mean, rp.n()),
        }
    };
    let mut rows = Vec::new();
    for (i, &size) in FIG9_SIZES.iter().enumerate() {
        let off = reps[2 * i];
        let on = reps[2 * i + 1];
        let off_e = off.est(lat_mean);
        let on_e = on.est(lat_mean);
        let inflation = if off_e.mean > 0.0 {
            on_e.mean / off_e.mean
        } else {
            0.0
        };
        rows.push(vec![
            format!("{}", size >> 10),
            cell(off, off_e),
            cell(on, on_e),
            format!("{inflation:.1}x"),
        ]);
    }
    format!(
        "\nFigure 9: HTTP download latency sharing a bottleneck with speak-up traffic\n{}\
         paper shape: multi-x inflation across sizes (theirs: ~6x at 1 KB,\n\
         ~4.5x at 64 KB) — significant collateral damage on a restrictive link,\n\
         with the caveat that the experiment is deliberately pessimistic.\n",
        table(
            &[
                "size KB",
                "without speak-up (s)",
                "with speak-up (s)",
                "inflation"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// §5 heterogeneous requests
// ---------------------------------------------------------------------------

const HETERO_HARD: f64 = 5.0;

fn build_hetero() -> Vec<Scenario> {
    vec![
        scenarios::heterogeneous_requests(Mode::Auction, HETERO_HARD),
        scenarios::heterogeneous_requests(
            Mode::Quantum {
                quantum: SimDuration::from_millis(10),
            },
            HETERO_HARD,
        ),
    ]
}

fn render_hetero(_scens: &[Scenario], reps: &[Reps]) -> String {
    // Work share: requests weighted by difficulty.
    let work_share = |r: &RunReport| {
        let good_work = r.allocation.good as f64;
        let bad_work = r.allocation.bad as f64 * HETERO_HARD;
        good_work / (good_work + bad_work).max(1.0)
    };
    let mut rows = Vec::new();
    for rp in reps {
        rows.push(vec![
            rp.base().mode.clone(),
            count_est(rp.est(|r| r.allocation.good as f64)),
            count_est(rp.est(|r| r.allocation.bad as f64)),
            frac_est(rp.est(work_share)),
            frac(0.5),
        ]);
    }
    format!(
        "\nSection 5: equal-bandwidth good vs bad clients; bad requests are 5x harder\n{}\
         expected: the plain auction under-serves good clients by ~the\n\
         difficulty factor; the quantum auction pulls the work share back\n\
         toward the bandwidth-proportional ideal.\n",
        table(
            &[
                "front end",
                "good served",
                "bad served",
                "good share of WORK",
                "ideal",
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// §8.1 profiling comparison
// ---------------------------------------------------------------------------

const PROFILING_LABELS: [&str; 4] = [
    "profiling, honest bots",
    "profiling, spoofing bots",
    "speak-up, honest bots",
    "speak-up, spoofing bots",
];

fn build_profiling() -> Vec<Scenario> {
    // A generous profile: 3 req/s per identity (good clients need 2).
    let profile = Mode::Profile { allowed_rate: 3.0 };
    vec![
        scenarios::profiling_comparison(profile, false),
        scenarios::profiling_comparison(profile, true),
        scenarios::profiling_comparison(Mode::Auction, false),
        scenarios::profiling_comparison(Mode::Auction, true),
    ]
}

fn render_profiling(_scens: &[Scenario], reps: &[Reps]) -> String {
    let mut rows = Vec::new();
    for (rp, label) in reps.iter().zip(PROFILING_LABELS) {
        rows.push(vec![
            label.to_string(),
            frac_est(rp.est(|r| r.good_fraction())),
            frac_est(rp.est(|r| r.good_served_fraction())),
            count_est(rp.est(|r| r.thinner_drops as f64)),
        ]);
    }
    format!(
        "\nSection 8.1: identity-keyed defense vs bandwidth tax (5 good vs 5 bad, c=20)\n{}\
         expected: profiling wins big against fixed identities and collapses\n\
         against spoofing; speak-up's allocation barely moves — the auction\n\
         charges requests, not identities.\n",
        table(
            &[
                "defense / attack",
                "alloc good",
                "good served",
                "blocked+dropped"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// §3.2 vs §3.3 ablation
// ---------------------------------------------------------------------------

fn build_retry_ablation() -> Vec<Scenario> {
    let mut scens = Vec::new();
    for &c in &FIG3_CS {
        for mode in [Mode::Auction, Mode::Retry] {
            scens.push(scenarios::fig3(c, mode));
        }
    }
    scens
}

fn render_retry_ablation(_scens: &[Scenario], reps: &[Reps]) -> String {
    let mut rows = Vec::new();
    for (i, &c) in FIG3_CS.iter().enumerate() {
        let auction = reps[2 * i];
        let retry = reps[2 * i + 1];
        rows.push(vec![
            format!("{c:.0}"),
            frac_est(auction.est(|r| r.good_fraction())),
            frac_est(retry.est(|r| r.good_fraction())),
            frac_est(auction.est(|r| r.good_served_fraction())),
            frac_est(retry.est(|r| r.good_served_fraction())),
        ]);
    }
    format!(
        "\nAblation: auction (3.3) vs aggressive retries (3.2), G=B, ideal good share 0.5\n{}\
         both mechanisms allocate roughly in proportion to bandwidth; the\n\
         auction needs no admission-probability estimate, which is the\n\
         paper's argument for preferring it (3.3 'Comparison').\n",
        table(
            &[
                "c",
                "alloc good (auction)",
                "alloc good (retry)",
                "served (auction)",
                "served (retry)",
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// §9 flash crowds
// ---------------------------------------------------------------------------

fn build_flash_crowd() -> Vec<Scenario> {
    vec![
        scenarios::flash_crowd(Mode::Auction),
        scenarios::flash_crowd(Mode::Off),
    ]
}

fn render_flash_crowd(_scens: &[Scenario], reps: &[Reps]) -> String {
    let mut rows = Vec::new();
    for rp in reps {
        rows.push(vec![
            rp.base().mode.clone(),
            frac_est(rp.est(|r| r.good_served_fraction())),
            secs_est(rp.est(|r| r.good.latency.mean())),
            secs_est(rp.est(|r| r.good.latency.clone().percentile(90.0))),
            frac_est(rp.est(|r| r.server_utilization)),
            count_est(rp.est(|r| r.thinner_drops as f64)),
        ]);
    }
    format!(
        "\nSection 9: flash crowd — 50 good clients, demand 5x capacity (c=20)\n{}\
         expected: with every client good, speak-up cannot improve the\n\
         allocation (there is nothing to defend against) — it charges latency\n\
         and upload bytes for the same served fraction, the paper's caveat\n\
         about applying the defense to overload that isn't an attack.\n",
        table(
            &[
                "front end",
                "good served",
                "mean latency",
                "90th pct",
                "util",
                "drops"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// §3.4 auction game (analytic)
// ---------------------------------------------------------------------------

fn run_adversary(opts: &RunOptions) -> (String, Json) {
    use speakup_core::analysis::{play_auction_game, theorem_bound, AdversaryStrategy};

    // The paper-default 600 s maps to the former binary's 500 000 rounds;
    // `--secs` scales the game length proportionally.
    let dur_s = opts
        .duration
        .unwrap_or(SimDuration::from_secs(600))
        .as_secs_f64();
    let rounds = ((dur_s / 600.0 * 500_000.0) as u64).max(1_000);
    let strategies: [(&str, AdversaryStrategy); 4] = [
        ("uniform", AdversaryStrategy::Uniform),
        ("just-enough", AdversaryStrategy::JustEnough),
        ("bursty(10)", AdversaryStrategy::Bursty { period: 10 }),
        ("random", AdversaryStrategy::Random { seed: opts.seed }),
    ];
    let epsilons = [0.05, 0.1, 0.2, 0.3, 0.5];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &eps in &epsilons {
        let mut row = vec![format!("{eps:.2}"), frac(theorem_bound(eps))];
        let mut json_row = Json::obj()
            .field("eps", eps)
            .field("floor", theorem_bound(eps));
        for (name, strat) in &strategies {
            let o = play_auction_game(eps, rounds, strat);
            row.push(frac(o.x_fraction));
            json_row = json_row.field(name, o.x_fraction);
        }
        rows.push(row);
        json_rows.push(json_row);
    }
    let text = format!(
        "\nTheorem 3.1: win fraction of a continuous eps-bidder vs adversarial schedules\n\
         ({rounds} auctions per cell; floor = eps/(2-eps) >= eps/2)\n{}\
         expected: every column is at or above the floor; 'just-enough' (the\n\
         proof's pessimal, implausibly informed adversary) pins the bidder\n\
         closest to it, while naive schedules leave the bidder near its full\n\
         proportional share eps.\n",
        table(
            &[
                "eps",
                "floor",
                "uniform",
                "just-enough",
                "bursty(10)",
                "random"
            ],
            &rows
        )
    );
    let json = Json::obj()
        .field("rounds", rounds)
        .field("rows", Json::Arr(json_rows));
    (text, json)
}

// ---------------------------------------------------------------------------
// §7.1 payment-sink throughput (analytic)
// ---------------------------------------------------------------------------

fn run_capacity(opts: &RunOptions) -> (String, Json) {
    use speakup_core::thinner::{AuctionConfig, AuctionFrontEnd, FrontEnd};
    use speakup_core::types::{ClientId, RequestId, RequestKey};
    use speakup_net::time::SimTime;
    use speakup_proto::http::{ParseEvent, RequestParser};
    use speakup_proto::message::encode_payment_head;
    use std::time::Instant;

    fn sink(total: u64, frame: usize) -> f64 {
        let mut fe = AuctionFrontEnd::new(AuctionConfig::default());
        let mut out = Vec::new();
        let t0 = SimTime::ZERO;
        fe.on_request(t0, RequestKey::new(ClientId(0), RequestId(0)), &mut out);
        let key = RequestKey::new(ClientId(1), RequestId(1));
        fe.on_request(t0, key, &mut out);
        out.clear();

        let mut parser = RequestParser::new();
        parser.push(&encode_payment_head(1, total));
        while let Ok(Some(ev)) = parser.next_event() {
            if matches!(ev, ParseEvent::Head(_)) {
                break;
            }
        }
        let chunk = vec![0x5au8; frame];
        // Wall-clock throughput measurement, not simulation logic (see clippy.toml).
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let mut sent = 0u64;
        while sent < total {
            let n = (total - sent).min(frame as u64);
            parser.push(&chunk[..n as usize]);
            sent += n;
            while let Ok(Some(ev)) = parser.next_event() {
                match ev {
                    ParseEvent::BodyChunk(b) => fe.on_payment(t0, key, b, &mut out),
                    _ => break,
                }
            }
        }
        assert_eq!(fe.bid_of(key), Some(total));
        let elapsed = started.elapsed().as_secs_f64();
        total as f64 * 8.0 / elapsed / 1e6 // Mbit/s
    }

    // The paper-default 600 s maps to the former binary's 256 MB per
    // measurement; `--secs` scales the measured volume proportionally.
    let dur_s = opts
        .duration
        .unwrap_or(SimDuration::from_secs(600))
        .as_secs_f64();
    let total = (((dur_s / 600.0) * (256u64 << 20) as f64) as u64).clamp(4 << 20, 1 << 30);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for frame in [1500usize, 120] {
        let mbps = sink(total, frame);
        rows.push(vec![
            format!("{frame}"),
            format!("{mbps:.0} Mbit/s"),
            match frame {
                1500 => "1451 Mbit/s".to_string(),
                _ => "379 Mbit/s".to_string(),
            },
        ]);
        json_rows.push(
            Json::obj()
                .field("frame_bytes", frame)
                .field("measured_mbps", mbps),
        );
    }
    let text = format!(
        "Section 7.1: payment-sink throughput (parse + credit), {total} bytes each\n\n{}\
         shape to check: large frames sink several times faster than small\n\
         ones — per-packet (here per-chunk) costs dominate, as in the paper.\n",
        table(
            &[
                "frame bytes",
                "measured (this host)",
                "paper (2006 Xeon + NIC)"
            ],
            &rows
        )
    );
    let json = Json::obj()
        .field("bytes_per_measurement", total)
        .field("rows", Json::Arr(json_rows));
    (text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_former_binary() {
        let former = [
            "fig2",
            "fig3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "min_capacity",
            "hetero",
            "profiling",
            "retry_ablation",
            "adversary",
            "capacity",
        ];
        for name in former {
            assert!(find(name).is_some(), "missing registry entry {name}");
        }
        assert!(find("flash_crowd").is_some());
        assert!(find("nonesuch").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = registry().iter().map(|e| e.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn sim_grids_are_nonempty_and_titled() {
        for e in registry() {
            assert!(!e.title.is_empty());
            assert!(!e.section.is_empty());
            if e.is_simulated() {
                let grid = e.build_grid();
                assert!(!grid.is_empty(), "{} built an empty grid", e.name);
                for s in &grid {
                    assert!(
                        !s.clients.is_empty() || !s.cohorts.is_empty(),
                        "{}: scenario with no clients or cohorts",
                        e.name
                    );
                }
            } else {
                assert!(e.build_grid().is_empty());
            }
        }
    }

    #[test]
    fn grid_shapes_match_the_paper() {
        assert_eq!(find("fig2").unwrap().build_grid().len(), 10);
        assert_eq!(find("fig2_xl").unwrap().build_grid().len(), 1);
        // R=1 baseline + {2,4,8} x {10,100} ms.
        assert_eq!(find("fig2_replicated").unwrap().build_grid().len(), 7);
        // Per sync cadence {10,100} ms: crash-free baseline + crash@{15,30} s.
        assert_eq!(find("fig2_faults").unwrap().build_grid().len(), 6);
        assert_eq!(find("fig3").unwrap().build_grid().len(), 6);
        assert_eq!(find("fig6").unwrap().build_grid().len(), 1);
        assert_eq!(find("fig7").unwrap().build_grid().len(), 2);
        assert_eq!(find("fig8").unwrap().build_grid().len(), 3);
        assert_eq!(find("fig9").unwrap().build_grid().len(), 10);
        assert_eq!(find("min_capacity").unwrap().build_grid().len(), 8);
    }

    #[test]
    fn fig2_faults_grid_carries_the_crash_specs() {
        let grid = find("fig2_faults").unwrap().build_grid();
        for s in &grid {
            assert_eq!(s.thinners, FAULT_REPLICAS, "{}", s.name);
            if s.name.contains("baseline") {
                assert!(s.faults.is_empty(), "{} should be crash-free", s.name);
            } else {
                assert_eq!(s.faults.len(), 1, "{}", s.name);
                assert!(
                    matches!(
                        s.faults[0],
                        FaultSpec::ReplicaCrash {
                            replica: FAULT_CRASH_REPLICA,
                            ..
                        }
                    ),
                    "{} should crash replica {FAULT_CRASH_REPLICA}",
                    s.name
                );
            }
        }
    }
}
