//! A dependency-free JSON document builder and parser for
//! machine-readable reports.
//!
//! The driver emits every run as JSON next to the human tables. With no
//! registry access for `serde`, this module provides the tiny subset we
//! need: build a [`Json`] tree, render it deterministically (stable key
//! order, shortest-roundtrip float formatting), so that two runs with the
//! same seed serialize byte-identically — and parse documents back (for
//! `speakup compare` against committed golden reports).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number. Non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer, rendered exactly (no f64 precision loss).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object; panics on non-objects.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Parse a JSON document (the subset this module emits: no unicode
    /// escapes beyond `\uXXXX`, numbers as f64/u64).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The exact unsigned integer value, if this is a whole number.
    /// Unlike [`Json::as_f64`], values above 2^53 survive intact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, so equal runs serialize equally.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .field("name", "fig3 c=100")
            .field("ok", true)
            .field("runs", vec![Json::Num(1.0), Json::Num(0.5)])
            .field("empty", Json::obj())
            .field("missing", Json::Null);
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"fig3 c=100\""));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn float_formatting_is_stable() {
        let a = Json::Num(0.1 + 0.2).pretty();
        let b = Json::Num(0.1 + 0.2).pretty();
        assert_eq!(a, b);
        assert_eq!(Json::Num(600.0).pretty(), "600\n");
    }

    #[test]
    fn parse_roundtrips_emitted_documents() {
        let doc = Json::obj()
            .field("name", "fig2 f=0.1 Auction")
            .field("ok", true)
            .field("count", 42u64)
            .field("frac", 0.125)
            .field("neg", Json::Num(-3.5))
            .field("nothing", Json::Null)
            .field("runs", vec![Json::UInt(1), Json::Num(0.5)])
            .field("empty_arr", Json::Arr(vec![]))
            .field("empty_obj", Json::obj())
            .field("escaped", "a\"b\\c\nd");
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("parse");
        assert_eq!(parsed, doc);
        // And the round trip is a fixed point.
        assert_eq!(parsed.pretty(), text);
    }

    #[test]
    fn parse_accessors() {
        let doc = Json::parse("{\"a\": 3, \"b\": [1.5], \"c\": \"x\"}").unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn as_u64_keeps_seeds_above_2_pow_53_exact() {
        let big = (1u64 << 53) + 1;
        let doc = Json::parse(&Json::obj().field("base_seed", big).pretty()).unwrap();
        assert_eq!(doc.get("base_seed").and_then(Json::as_u64), Some(big));
        assert_eq!(Json::Num(2.0).as_u64(), Some(2));
        assert_eq!(Json::Num(2.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn u64_keeps_full_precision() {
        // 2^53 + 1 is not representable as f64; UInt must render exactly.
        let v = (1u64 << 53) + 1;
        assert_eq!(Json::from(v).pretty(), format!("{v}\n"));
        assert_eq!(Json::from(u64::MAX).pretty(), format!("{}\n", u64::MAX));
    }
}
