//! A dependency-free JSON document builder for machine-readable reports.
//!
//! The driver emits every run as JSON next to the human tables. With no
//! registry access for `serde`, this module provides the tiny subset we
//! need: build a [`Json`] tree, render it deterministically (stable key
//! order, shortest-roundtrip float formatting), so that two runs with the
//! same seed serialize byte-identically.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number. Non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer, rendered exactly (no f64 precision loss).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object; panics on non-objects.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, so equal runs serialize equally.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .field("name", "fig3 c=100")
            .field("ok", true)
            .field("runs", vec![Json::Num(1.0), Json::Num(0.5)])
            .field("empty", Json::obj())
            .field("missing", Json::Null);
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"fig3 c=100\""));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn float_formatting_is_stable() {
        let a = Json::Num(0.1 + 0.2).pretty();
        let b = Json::Num(0.1 + 0.2).pretty();
        assert_eq!(a, b);
        assert_eq!(Json::Num(600.0).pretty(), "600\n");
    }

    #[test]
    fn u64_keeps_full_precision() {
        // 2^53 + 1 is not representable as f64; UInt must render exactly.
        let v = (1u64 << 53) + 1;
        assert_eq!(Json::from(v).pretty(), format!("{v}\n"));
        assert_eq!(Json::from(u64::MAX).pretty(), format!("{}\n", u64::MAX));
    }
}
