//! Scenario descriptions: clients, links, thinner mode, duration.
//!
//! A [`Scenario`] is a declarative description of one experimental run,
//! mirroring the way the paper describes its Emulab setups ("50 clients,
//! each with 2 Mbits/s, over a LAN; c = 100 requests/s; ...").

use speakup_core::client::ClientProfile;
use speakup_net::link::LinkConfig;
use speakup_net::time::{SimDuration, SimTime};

/// Which thinner front end the run uses.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Mode {
    /// No speak-up: random drops when busy (the paper's "OFF").
    Off,
    /// §3.3 payment channel + virtual auction (the paper's "ON").
    Auction,
    /// §3.2 random drops + aggressive retries (ablation).
    Retry,
    /// §5 per-quantum auctions for heterogeneous requests.
    Quantum {
        /// Quantum length τ.
        quantum: SimDuration,
    },
    /// §8.1 comparator: detect-and-block via per-identity rate limiting.
    Profile {
        /// Allowed sustained request rate per client identity, req/s.
        allowed_rate: f64,
    },
}

/// One client's placement and behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ClientSpec {
    /// Behaviour profile (λ, w, payment sizes, class).
    pub profile: ClientProfile,
    /// Access link rate, bits/s (paper default: 2 Mbit/s).
    pub access_bps: u64,
    /// Access link one-way delay (so client RTT ≈ 2 × this).
    pub access_delay: SimDuration,
    /// Whether the client sits behind the shared bottleneck (Fig 8).
    pub behind_bottleneck: bool,
    /// Random packet-loss probability injected on the client's uplink
    /// (smoltcp-style fault injection). Exercises the transport's
    /// retransmission machinery under speak-up load.
    pub access_loss: f64,
}

impl ClientSpec {
    /// The paper's standard client: 2 Mbit/s access, ~1 ms RTT LAN.
    pub fn lan(profile: ClientProfile) -> Self {
        ClientSpec {
            profile,
            access_bps: 2_000_000,
            access_delay: SimDuration::from_micros(500),
            behind_bottleneck: false,
            access_loss: 0.0,
        }
    }

    /// Override the access bandwidth.
    pub fn bandwidth(mut self, bps: u64) -> Self {
        self.access_bps = bps;
        self
    }

    /// Override the one-way access delay.
    pub fn delay(mut self, d: SimDuration) -> Self {
        self.access_delay = d;
        self
    }

    /// Place behind the shared bottleneck.
    pub fn bottlenecked(mut self) -> Self {
        self.behind_bottleneck = true;
        self
    }

    /// Inject random loss on the uplink.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`: an out-of-range probability used to
    /// slip through silently (always-drop or never-drop) and only
    /// surface as inexplicable results.
    pub fn lossy(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "client access_loss must be in [0, 1), got {p}"
        );
        self.access_loss = p;
        self
    }
}

/// A flyweight crowd: `members` identical background clients aggregated
/// behind one node (see [`crate::agents::cohort::CohortAgent`]).
///
/// The cohort's access link is provisioned at `members ×` the member
/// spec's rate, so aggregate bandwidth — the currency speak-up meters —
/// is exact; arrivals come from the superposed Poisson process. Cohorts
/// cannot sit behind the Fig 8 bottleneck (their aggregated link would
/// misrepresent per-client crowd-out there) and are rejected by the
/// runner in `Mode::Profile` (identity-keyed defenses need per-client
/// identities to be meaningful).
#[derive(Clone, Copy, Debug)]
pub struct CohortSpec {
    /// The member profile and placement (shared by all members).
    pub spec: ClientSpec,
    /// Number of aggregated members (≥ 1).
    pub members: u32,
}

/// The shared bottleneck link `l` of §7.6 / `m` of §7.7.
#[derive(Clone, Copy, Debug)]
pub struct BottleneckSpec {
    /// Rate in bits/s.
    pub rate_bps: u64,
    /// One-way delay.
    pub delay: SimDuration,
    /// Queue size in 1500-byte packets.
    pub queue_packets: u64,
}

/// One deterministic fault to inject into a run.
///
/// Specs are declarative: the runner resolves them to concrete node and
/// link ids after it builds the topology and hands the resulting
/// [`speakup_net::fault::FaultSchedule`] to the simulator, so the same
/// scenario injects the identical fault trace at every `--shards` count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// Crash thinner replica `replica` (0-based) at `at`; the node
    /// restarts `down_for` later with freshly initialized app state.
    /// Surviving replicas detect the digest silence after
    /// [`Scenario::stale_after`] missed sync periods and absorb the
    /// crashed replica's capacity share until it re-joins.
    ReplicaCrash {
        /// Replica index in `0..thinners`.
        replica: u32,
        /// Crash instant.
        at: SimTime,
        /// Outage length; the restart fires at `at + down_for`.
        down_for: SimDuration,
    },
    /// Seed-derived random flaps on every client access uplink: each
    /// link gets its own Poisson onset process (mean gap `mean_every`)
    /// with exponential outages (mean `mean_down`), all streams keyed by
    /// `seed` and the link id — independent of the scenario seed and of
    /// the [`ClientSpec::lossy`] drop sampler, so loss-free goldens stay
    /// byte-identical when no flaps are scheduled.
    LinkFlaps {
        /// Fault-stream seed (the CLI's `--fault-seed`).
        seed: u64,
        /// Mean gap between flap onsets per link.
        mean_every: SimDuration,
        /// Mean outage length per flap.
        mean_down: SimDuration,
    },
}

/// Fig 9 cross-traffic: a wget-style downloader sharing the bottleneck.
#[derive(Clone, Copy, Debug)]
pub struct WebSpec {
    /// Size of the downloaded file, bytes.
    pub file_bytes: u64,
    /// Number of sequential downloads.
    pub downloads: u64,
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Label used in reports.
    pub name: String,
    /// RNG seed; same seed ⇒ same packet trace.
    pub seed: u64,
    /// Simulated run length (paper: 600 s).
    pub duration: SimDuration,
    /// Server capacity `c`, requests/s.
    pub capacity: f64,
    /// Thinner mode.
    pub mode: Mode,
    /// The fully simulated (foreground) clients.
    pub clients: Vec<ClientSpec>,
    /// Flyweight client crowds (background population), if any. Each
    /// cohort is one node aggregating `members` identical clients.
    pub cohorts: Vec<CohortSpec>,
    /// Optional shared bottleneck for `bottlenecked()` clients.
    pub bottleneck: Option<BottleneckSpec>,
    /// Optional Fig 9 web cross-traffic (placed behind the bottleneck).
    pub web: Option<WebSpec>,
    /// Aggregation-to-thinner link (default: 1 Gbit/s, 100 µs). The paper
    /// runs clients on a "100 Mbit/s LAN" that its own traffic exactly
    /// saturates; we provision the aggregation link out of the way so the
    /// *access links* are the binding constraint, which is the regime the
    /// paper analyzes.
    pub hub_link: LinkConfig,
    /// Upper bound on aggregation subgroups per access-delay class — the
    /// parallelism ceiling for a delay-homogeneous population (default
    /// [`crate::runner::HUB_SUBGROUPS_PER_CLASS`]). Part of the scenario,
    /// not the CLI, so the topology never depends on `--shards`; raise it
    /// when a host with more cores than the default cap shows up.
    pub hub_subgroups_per_class: usize,
    /// Number of thinner replicas (default 1: the classic single
    /// thinner). With R > 1, aggregation groups and cohorts are
    /// partitioned round-robin across R replicas, each running the
    /// virtual auction locally over its own contenders with a 1/R slice
    /// of `capacity` that is continually re-rated from merged peer bid
    /// digests (see `crates/core/src/thinner/digest.rs`).
    pub thinners: u32,
    /// Epoch cadence at which replicas exchange bid-delta digests
    /// (default 100 ms). Only meaningful when `thinners > 1`.
    pub sync_period: SimDuration,
    /// Faults to inject (default none: the loss-free deterministic runs
    /// every committed golden was produced from).
    pub faults: Vec<FaultSpec>,
    /// Failover sensitivity: a replica declares a peer stale — and
    /// absorbs its capacity share — once the peer's digest epoch lags
    /// its own by more than this many sync periods (default 3).
    pub stale_after: u64,
}

impl Scenario {
    /// A scenario with the paper's defaults: 600 s, LAN topology.
    pub fn new(name: impl Into<String>, capacity: f64, mode: Mode) -> Self {
        Scenario {
            name: name.into(),
            seed: 0x5ea4,
            duration: SimDuration::from_secs(600),
            capacity,
            mode,
            clients: Vec::new(),
            cohorts: Vec::new(),
            bottleneck: None,
            web: None,
            hub_link: LinkConfig::new(1_000_000_000, SimDuration::from_micros(100)),
            hub_subgroups_per_class: crate::runner::HUB_SUBGROUPS_PER_CLASS,
            thinners: 1,
            sync_period: SimDuration::from_millis(100),
            faults: Vec::new(),
            stale_after: 3,
        }
    }

    /// Add `n` identical clients.
    pub fn add_clients(&mut self, n: usize, spec: ClientSpec) -> &mut Self {
        self.clients.extend(std::iter::repeat_n(spec, n));
        self
    }

    /// Add `n` cohorts of `members` aggregated clients each.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero, or if the member spec is placed
    /// behind the bottleneck (cohorts aggregate their access link, which
    /// would misrepresent Fig 8's per-client crowd-out).
    pub fn add_cohorts(&mut self, n: usize, members: u32, spec: ClientSpec) -> &mut Self {
        assert!(members > 0, "a cohort needs at least one member");
        assert!(
            !spec.behind_bottleneck,
            "cohorts cannot sit behind the shared bottleneck"
        );
        self.cohorts
            .extend(std::iter::repeat_n(CohortSpec { spec, members }, n));
        self
    }

    /// Total client population: foreground clients plus cohort members.
    pub fn population(&self) -> u64 {
        self.clients.len() as u64 + self.cohorts.iter().map(|c| c.members as u64).sum::<u64>()
    }

    /// Set the run length.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of thinner replicas.
    ///
    /// # Panics
    ///
    /// Panics on zero: a run needs at least one thinner.
    pub fn thinners(mut self, r: u32) -> Self {
        assert!(r >= 1, "at least one thinner replica");
        self.thinners = r;
        self
    }

    /// Set the replica digest-sync epoch cadence.
    ///
    /// # Panics
    ///
    /// Panics on a zero period: the sync timer would re-arm at the
    /// current instant and spin the simulation forever.
    pub fn sync_period(mut self, p: SimDuration) -> Self {
        assert!(p.as_nanos() > 0, "sync period must be positive");
        self.sync_period = p;
        self
    }

    /// Schedule a replica crash + restart (see [`FaultSpec::ReplicaCrash`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero outage (the crash and restart would race at the
    /// same instant) or a replica index outside `0..thinners` — a typo'd
    /// index would otherwise silently fault nothing.
    pub fn crash_replica(mut self, replica: u32, at: SimTime, down_for: SimDuration) -> Self {
        assert!(
            replica < self.thinners,
            "replica {replica} out of range: the scenario has {} thinner(s)",
            self.thinners
        );
        assert!(down_for.as_nanos() > 0, "outage must be positive");
        self.faults.push(FaultSpec::ReplicaCrash {
            replica,
            at,
            down_for,
        });
        self
    }

    /// Schedule seed-derived flaps on every client access uplink (see
    /// [`FaultSpec::LinkFlaps`]).
    ///
    /// # Panics
    ///
    /// Panics on non-positive means: a zero onset gap would flap every
    /// nanosecond and a zero outage would be a no-op pretending not to be.
    pub fn link_flaps(
        mut self,
        seed: u64,
        mean_every: SimDuration,
        mean_down: SimDuration,
    ) -> Self {
        assert!(mean_every.as_nanos() > 0, "mean flap gap must be positive");
        assert!(mean_down.as_nanos() > 0, "mean outage must be positive");
        self.faults.push(FaultSpec::LinkFlaps {
            seed,
            mean_every,
            mean_down,
        });
        self
    }

    /// Set the failover sensitivity (missed sync periods before a silent
    /// peer is declared stale).
    ///
    /// # Panics
    ///
    /// Panics on zero: replicas publish *at* the sync cadence, so a
    /// zero threshold would declare every peer stale between any two
    /// digests and the cluster would flap in steady state.
    pub fn stale_after(mut self, k: u64) -> Self {
        assert!(k >= 1, "stale_after must be at least one sync period");
        self.stale_after = k;
        self
    }

    /// Raise (or lower) the aggregation-subgroup cap per delay class.
    pub fn hub_subgroups_per_class(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "at least one subgroup per delay class");
        self.hub_subgroups_per_class = cap;
        self
    }

    /// Access-link bandwidth of one class, bits/s, counting every cohort
    /// member at the member rate.
    fn class_bandwidth_bps(&self, is_bad: bool) -> u64 {
        let singles: u64 = self
            .clients
            .iter()
            .filter(|c| c.profile.is_bad == is_bad)
            .map(|c| c.access_bps)
            .sum();
        let crowds: u64 = self
            .cohorts
            .iter()
            .filter(|c| c.spec.profile.is_bad == is_bad)
            .map(|c| c.spec.access_bps * c.members as u64)
            .sum();
        singles + crowds
    }

    /// Aggregate good-client bandwidth `G`, bits/s (access-link sum).
    pub fn good_bandwidth_bps(&self) -> u64 {
        self.class_bandwidth_bps(false)
    }

    /// Aggregate bad-client bandwidth `B`, bits/s.
    pub fn bad_bandwidth_bps(&self) -> u64 {
        self.class_bandwidth_bps(true)
    }

    /// `G/(G+B)`: the bandwidth-proportional ideal share for good clients.
    pub fn ideal_good_share(&self) -> f64 {
        let g = self.good_bandwidth_bps() as f64;
        let b = self.bad_bandwidth_bps() as f64;
        if g + b == 0.0 {
            return 0.0;
        }
        g / (g + b)
    }

    /// Aggregate good demand `g` in requests/s (sum of λ over clients
    /// and cohort members).
    pub fn good_demand(&self) -> f64 {
        let singles: f64 = self
            .clients
            .iter()
            .filter(|c| !c.profile.is_bad)
            .map(|c| c.profile.lambda)
            .sum();
        let crowds: f64 = self
            .cohorts
            .iter()
            .filter(|c| !c.spec.profile.is_bad)
            .map(|c| c.spec.profile.lambda * c.members as f64)
            .sum();
        singles + crowds
    }

    /// The §3.3 average-price upper bound `(G+B)/c` in bytes/request.
    pub fn price_upper_bound(&self) -> f64 {
        let total_bps = (self.good_bandwidth_bps() + self.bad_bandwidth_bps()) as f64;
        total_bps / 8.0 / self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_accounting() {
        let mut s = Scenario::new("t", 100.0, Mode::Auction);
        s.add_clients(25, ClientSpec::lan(ClientProfile::good()));
        s.add_clients(25, ClientSpec::lan(ClientProfile::bad()));
        assert_eq!(s.good_bandwidth_bps(), 50_000_000);
        assert_eq!(s.bad_bandwidth_bps(), 50_000_000);
        assert!((s.ideal_good_share() - 0.5).abs() < 1e-12);
        assert_eq!(s.good_demand(), 50.0);
        // (G+B)/c = 100 Mbit/s / 8 / 100 = 125 000 bytes/request.
        assert!((s.price_upper_bound() - 125_000.0).abs() < 1e-9);
    }

    #[test]
    fn cohort_members_count_in_accounting() {
        let mut s = Scenario::new("t", 100.0, Mode::Auction);
        s.add_clients(10, ClientSpec::lan(ClientProfile::good()));
        s.add_cohorts(2, 20, ClientSpec::lan(ClientProfile::good()));
        s.add_cohorts(1, 50, ClientSpec::lan(ClientProfile::bad()));
        assert_eq!(s.population(), 100);
        // 10 + 40 good members at 2 Mbit/s each.
        assert_eq!(s.good_bandwidth_bps(), 100_000_000);
        assert_eq!(s.bad_bandwidth_bps(), 100_000_000);
        assert!((s.ideal_good_share() - 0.5).abs() < 1e-12);
        assert!((s.good_demand() - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "behind the shared bottleneck")]
    fn bottlenecked_cohorts_are_rejected() {
        let mut s = Scenario::new("t", 100.0, Mode::Auction);
        s.add_cohorts(1, 10, ClientSpec::lan(ClientProfile::good()).bottlenecked());
    }

    #[test]
    fn spec_builders() {
        let spec = ClientSpec::lan(ClientProfile::good())
            .bandwidth(500_000)
            .delay(SimDuration::from_millis(50))
            .bottlenecked();
        assert_eq!(spec.access_bps, 500_000);
        assert_eq!(spec.access_delay, SimDuration::from_millis(50));
        assert!(spec.behind_bottleneck);
    }

    #[test]
    fn lossy_accepts_valid_probabilities() {
        let spec = ClientSpec::lan(ClientProfile::good()).lossy(0.05);
        assert!((spec.access_loss - 0.05).abs() < 1e-12);
        assert_eq!(
            ClientSpec::lan(ClientProfile::good())
                .lossy(0.0)
                .access_loss,
            0.0
        );
    }

    #[test]
    fn fault_builders_record_specs() {
        let s = Scenario::new("t", 100.0, Mode::Auction)
            .thinners(4)
            .crash_replica(
                1,
                SimTime::from_nanos(15_000_000_000),
                SimDuration::from_secs(10),
            )
            .link_flaps(7, SimDuration::from_secs(5), SimDuration::from_millis(200))
            .stale_after(2);
        assert_eq!(s.faults.len(), 2);
        assert_eq!(
            s.faults[0],
            FaultSpec::ReplicaCrash {
                replica: 1,
                at: SimTime::from_nanos(15_000_000_000),
                down_for: SimDuration::from_secs(10),
            }
        );
        assert_eq!(s.stale_after, 2);
        // Defaults: no faults, three missed syncs before failover.
        let d = Scenario::new("d", 100.0, Mode::Auction);
        assert!(d.faults.is_empty());
        assert_eq!(d.stale_after, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crash_replica_rejects_bad_index() {
        let _ = Scenario::new("t", 100.0, Mode::Auction)
            .thinners(2)
            .crash_replica(2, SimTime::from_nanos(1), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "at least one sync period")]
    fn stale_after_rejects_zero() {
        let _ = Scenario::new("t", 100.0, Mode::Auction).stale_after(0);
    }

    #[test]
    #[should_panic(expected = "access_loss must be in [0, 1)")]
    fn lossy_rejects_certain_loss() {
        let _ = ClientSpec::lan(ClientProfile::good()).lossy(1.0);
    }

    #[test]
    #[should_panic(expected = "access_loss must be in [0, 1)")]
    fn lossy_rejects_negative_loss() {
        let _ = ClientSpec::lan(ClientProfile::good()).lossy(-0.25);
    }
}
