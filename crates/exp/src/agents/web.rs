//! Fig 9's bystanders: a plain Web server and a `wget`-style client that
//! repeatedly downloads a file while speak-up payment traffic crowds the
//! shared bottleneck link.

use crate::tags::{pack, sizes, unpack, Kind};
use speakup_core::types::RequestId;
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::sim::{App, Ctx};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;
use std::collections::BTreeMap;

const TOKEN_NEXT: u64 = u64::MAX;

/// A web server that answers [`Kind::FileRequest`] with a file of the
/// configured size on a fresh flow back to the requester.
pub struct WebServerAgent {
    file_bytes: u64,
}

impl WebServerAgent {
    /// Serve files of `file_bytes` each.
    pub fn new(file_bytes: u64) -> Self {
        WebServerAgent { file_bytes }
    }
}

impl App for WebServerAgent {
    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
        let (kind, id) = unpack(tag);
        if kind != Kind::FileRequest {
            return;
        }
        let requester = ctx.flow(flow).src;
        let f = ctx.open_default_flow(requester);
        ctx.send(f, self.file_bytes, pack(Kind::FileResponse, id));
    }
}

/// A sequential downloader: request file, wait for the full response,
/// record the end-to-end latency, immediately request again — matching
/// the paper's `wget` loop of 100 downloads per configuration.
pub struct WgetAgent {
    server: NodeId,
    max_downloads: u64,
    up_flow: Option<FlowId>,
    next_id: u64,
    started_at: BTreeMap<RequestId, SimTime>,
    /// Download latencies, seconds.
    pub latencies: Samples,
    /// Gap between downloads (0 = immediately).
    pub think_time: SimDuration,
}

impl WgetAgent {
    /// Download from `server` up to `max_downloads` times.
    pub fn new(server: NodeId, max_downloads: u64) -> Self {
        WgetAgent {
            server,
            max_downloads,
            up_flow: None,
            next_id: 0,
            started_at: BTreeMap::new(),
            latencies: Samples::new(),
            think_time: SimDuration::ZERO,
        }
    }

    fn fetch(&mut self, ctx: &mut Ctx) {
        if self.next_id >= self.max_downloads {
            return;
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let up = self.up_flow.expect("fetch before start");
        self.started_at.insert(id, ctx.now());
        ctx.send(up, sizes::FILE_REQUEST, pack(Kind::FileRequest, id));
    }
}

impl App for WgetAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        self.up_flow = Some(ctx.open_default_flow(self.server));
        self.fetch(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx, _flow: FlowId, tag: u64) {
        let (kind, id) = unpack(tag);
        if kind != Kind::FileResponse {
            return;
        }
        if let Some(t0) = self.started_at.remove(&id) {
            self.latencies
                .push(ctx.now().saturating_since(t0).as_secs_f64());
        }
        if self.think_time == SimDuration::ZERO {
            self.fetch(ctx);
        } else {
            ctx.set_timer(self.think_time, TOKEN_NEXT);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == TOKEN_NEXT {
            self.fetch(ctx);
        }
    }
}
