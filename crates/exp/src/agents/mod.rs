//! Simulator applications: the thinner, clients, and Fig 9's bystanders.

pub mod client;
pub mod thinner;
pub mod web;
