//! Simulator applications: the thinner, clients, and Fig 9's bystanders.
//!
//! [`AppSlot`] is the crate's [`AppSet`]: the enum the sharded engine
//! dispatches over so the five production agents get monomorphic (and
//! inlinable) callbacks instead of a vtable hop per event.

pub mod client;
pub mod cohort;
pub mod thinner;
pub mod web;

use speakup_net::sim::{App, AppSet, Ctx};
use speakup_net::FlowId;
use std::any::{Any, TypeId};

use client::ClientAgent;
use cohort::CohortAgent;
use thinner::ThinnerAgent;
use web::{WebServerAgent, WgetAgent};

/// One node's application, as a closed enum over the production agents.
///
/// The engine matches on the discriminant and calls the concrete
/// agent's method directly — zero vtable hops for the five variants the
/// experiments install. `Boxed` is the open-world escape hatch so
/// downstream [`App`] implementations (tests, future agents) keep
/// working at dynamic-dispatch cost.
// The variants are stored inline — one slot lives per node, so dispatch
// locality beats the footprint of the largest agent.
#[allow(clippy::large_enum_variant)]
pub enum AppSlot {
    /// A speak-up client ([`ClientAgent`]).
    Client(ClientAgent),
    /// The thinner front-end ([`ThinnerAgent`]).
    Thinner(ThinnerAgent),
    /// Fig 9's bystander web server ([`WebServerAgent`]).
    Web(WebServerAgent),
    /// Fig 9's bystander wget client ([`WgetAgent`]).
    Wget(WgetAgent),
    /// A flyweight crowd of N clients ([`CohortAgent`]).
    Cohort(CohortAgent),
    /// Open-world fallback: dynamic dispatch for foreign [`App`]s.
    Boxed(Box<dyn App>),
}

/// Dispatch a callback to the concrete agent behind the discriminant.
macro_rules! each_variant {
    ($slot:expr, $a:ident => $body:expr) => {
        match $slot {
            AppSlot::Client($a) => $body,
            AppSlot::Thinner($a) => $body,
            AppSlot::Web($a) => $body,
            AppSlot::Wget($a) => $body,
            AppSlot::Cohort($a) => $body,
            AppSlot::Boxed($a) => {
                let $a = &mut **$a;
                $body
            }
        }
    };
}

impl AppSet for AppSlot {
    fn start(&mut self, ctx: &mut Ctx) {
        each_variant!(self, a => a.start(ctx))
    }
    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
        each_variant!(self, a => a.on_message(ctx, flow, tag))
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        each_variant!(self, a => a.on_timer(ctx, token))
    }
    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId) {
        each_variant!(self, a => a.on_flow_drained(ctx, flow))
    }
    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        each_variant!(self, a => a.on_flow_aborted(ctx, flow))
    }
    fn on_control(&mut self, ctx: &mut Ctx, src: speakup_net::NodeId, payload: &[u64]) {
        each_variant!(self, a => a.on_control(ctx, src, payload))
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        each_variant!(self, a => a.on_restart(ctx))
    }

    fn as_any(&self) -> &dyn Any {
        match self {
            AppSlot::Client(a) => a,
            AppSlot::Thinner(a) => a,
            AppSlot::Web(a) => a,
            AppSlot::Wget(a) => a,
            AppSlot::Cohort(a) => a,
            AppSlot::Boxed(a) => &**a as &dyn Any,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        match self {
            AppSlot::Client(a) => a,
            AppSlot::Thinner(a) => a,
            AppSlot::Web(a) => a,
            AppSlot::Wget(a) => a,
            AppSlot::Cohort(a) => a,
            AppSlot::Boxed(a) => &mut **a as &mut dyn Any,
        }
    }

    /// Recover the concrete agent from a boxed install (the
    /// `Simulator::add_app` compatibility path), so even boxed installs
    /// of the production agents dispatch devirtualized.
    fn from_boxed(app: Box<dyn App>) -> Self {
        fn unbox<T: App>(app: Box<dyn App>) -> T {
            *(app as Box<dyn Any>).downcast::<T>().expect("type checked")
        }
        let id = (&*app as &dyn Any).type_id();
        if id == TypeId::of::<ClientAgent>() {
            AppSlot::Client(unbox(app))
        } else if id == TypeId::of::<ThinnerAgent>() {
            AppSlot::Thinner(unbox(app))
        } else if id == TypeId::of::<WebServerAgent>() {
            AppSlot::Web(unbox(app))
        } else if id == TypeId::of::<WgetAgent>() {
            AppSlot::Wget(unbox(app))
        } else if id == TypeId::of::<CohortAgent>() {
            AppSlot::Cohort(unbox(app))
        } else {
            AppSlot::Boxed(app)
        }
    }

    fn variant_index(&self) -> usize {
        match self {
            AppSlot::Client(_) => 0,
            AppSlot::Thinner(_) => 1,
            AppSlot::Web(_) => 2,
            AppSlot::Wget(_) => 3,
            AppSlot::Cohort(_) => 4,
            AppSlot::Boxed(_) => 5,
        }
    }

    fn variant_names() -> &'static [&'static str] {
        &["client", "thinner", "web", "wget", "cohort", "boxed"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakup_net::link::LinkConfig;
    use speakup_net::sim::Simulator;
    use speakup_net::time::{SimDuration, SimTime};
    use speakup_net::topology::TopologyBuilder;

    /// An app the enum does not know: must land in `Boxed` and still
    /// dispatch and downcast.
    struct Foreign {
        fired: u32,
    }
    impl App for Foreign {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {
            self.fired += 1;
        }
    }

    #[test]
    fn foreign_apps_fall_back_to_boxed_dispatch() {
        let mut b = TopologyBuilder::new();
        let a = b.node();
        let z = b.node();
        b.duplex(
            a,
            z,
            LinkConfig::new(1_000_000, SimDuration::from_millis(1)),
        );
        let mut sim = Simulator::<AppSlot>::new_sharded_slots(b.build(), 1, vec![0, 0]);
        sim.add_app(a, Box::new(Foreign { fired: 0 }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app::<Foreign>(a).unwrap().fired, 1);
        let counts = sim.dispatch_counts();
        assert_eq!(counts.len(), 6);
        let boxed = counts.iter().find(|(n, _)| *n == "boxed").unwrap().1;
        assert_eq!(boxed, 2, "start + one timer through the fallback");
    }

    #[test]
    fn boxed_production_agents_are_recovered_to_their_variant() {
        let slot = AppSlot::from_boxed(Box::new(WebServerAgent::new(1000)));
        assert!(matches!(slot, AppSlot::Web(_)), "downcast recovery");
        assert_eq!(slot.variant_index(), 2);
        assert!(slot.as_any().downcast_ref::<WebServerAgent>().is_some());
    }
}
