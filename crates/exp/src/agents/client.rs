//! The client as a simulator application — §7.1's custom Web client.
//!
//! Requests arrive by a Poisson process (rate λ), at most `w` outstanding,
//! overflow backlogged with a 10-second denial timeout. Under
//! encouragement the client runs the §6 POST loop: open a payment flow,
//! send a header plus a 1 MB dummy chunk, and when the chunk is fully
//! acknowledged *and* the thinner says `Continue`, start the next POST on
//! a fresh flow (fresh slow start and a quiescent gap, both of which the
//! paper analyzes in §3.4/§7.5). Bad clients run the same loop — just for
//! many requests concurrently, which is how the paper models §3.4's
//! concurrent-connection cheat.
//!
//! In retry mode (§3.2) the client streams small retry messages in a
//! congestion-controlled flow instead.

use crate::tags::{pack, sizes, unpack, Kind};
use speakup_core::client::{ClientProfile, ClientStats, RequestTracker};
use speakup_core::types::{ClientId, RequestId};
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::rng::Pcg32;
use speakup_net::sim::{App, Ctx};
use speakup_net::time::SimTime;
use speakup_net::trace::Samples;
use std::collections::BTreeMap;

const TOKEN_FIRE: u64 = u64::MAX;
/// Give-up timer tokens carry the request id directly (< 2^56).
const RETRY_BATCH: u64 = 8;

/// How the client pays when encouraged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PaymentMode {
    /// No payment: baseline clients just wait (and give up).
    None,
    /// §3.3 / §5: POST dummy-byte chunks.
    Posts,
    /// §3.2: stream small retries.
    Retries,
}

#[derive(Clone, Copy, Debug)]
struct Channel {
    flow: FlowId,
    post_start: SimTime,
    drained: bool,
    got_continue: bool,
    closed: bool,
}

/// Client-side measurements beyond [`ClientStats`].
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Time spent actively uploading dummy bytes per served request (Fig 4).
    pub payment_time: Samples,
    /// Payment bytes *sent* (acked) per served request, client-side view.
    pub payment_sent: Samples,
}

/// The client application. See module docs.
pub struct ClientAgent {
    id: ClientId,
    thinner: NodeId,
    mode: PaymentMode,
    tracker: RequestTracker,
    rng: Pcg32,
    up_flow: Option<FlowId>,
    channels: BTreeMap<RequestId, Channel>,
    flow_to_req: BTreeMap<FlowId, RequestId>,
    /// Accumulated active-paying seconds and acked payment bytes, per
    /// in-flight request.
    paying: BTreeMap<RequestId, (f64, u64)>,
    /// Client-side metrics.
    pub metrics: ClientMetrics,
}

impl ClientAgent {
    /// Create a client of the given profile talking to `thinner`.
    pub fn new(
        id: ClientId,
        thinner: NodeId,
        profile: ClientProfile,
        mode: PaymentMode,
        seed: u64,
    ) -> Self {
        ClientAgent {
            id,
            thinner,
            mode,
            tracker: RequestTracker::new(profile),
            rng: Pcg32::new(seed, 0xc11e47 ^ id.0 as u64),
            up_flow: None,
            channels: BTreeMap::new(),
            flow_to_req: BTreeMap::new(),
            paying: BTreeMap::new(),
            metrics: ClientMetrics::default(),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Request bookkeeping results.
    pub fn stats(&self) -> &ClientStats {
        &self.tracker.stats
    }

    fn schedule_fire(&mut self, ctx: &mut Ctx) {
        let gap = self.tracker.profile().next_gap(&mut self.rng);
        ctx.set_timer(gap, TOKEN_FIRE);
    }

    fn issue(&mut self, ctx: &mut Ctx, id: RequestId) {
        let up = self.up_flow.expect("issue before start");
        ctx.send(up, sizes::REQUEST, pack(Kind::Request, id));
        if let Some(give_up) = self.tracker.profile().give_up {
            ctx.set_timer(give_up, id.0);
        }
    }

    fn start_post(&mut self, ctx: &mut Ctx, id: RequestId) {
        let flow = ctx.open_default_flow(self.thinner);
        let post_bytes = self.tracker.profile().post_bytes;
        ctx.send(flow, sizes::PAYMENT_HEADER, pack(Kind::PaymentHeader, id));
        ctx.send(flow, post_bytes, pack(Kind::PaymentChunk, id));
        self.channels.insert(
            id,
            Channel {
                flow,
                post_start: ctx.now(),
                drained: false,
                got_continue: false,
                closed: false,
            },
        );
        self.flow_to_req.insert(flow, id);
        self.paying.entry(id).or_insert((0.0, 0));
    }

    fn start_retries(&mut self, ctx: &mut Ctx, id: RequestId) {
        let flow = ctx.open_default_flow(self.thinner);
        for _ in 0..RETRY_BATCH {
            ctx.send(
                flow,
                self.tracker.profile().retry_bytes,
                pack(Kind::Retry, id),
            );
        }
        self.channels.insert(
            id,
            Channel {
                flow,
                post_start: ctx.now(),
                drained: false,
                got_continue: false,
                closed: false,
            },
        );
        self.flow_to_req.insert(flow, id);
        self.paying.entry(id).or_insert((0.0, 0));
    }

    fn try_repost(&mut self, ctx: &mut Ctx, id: RequestId) {
        let Some(ch) = self.channels.get(&id) else {
            return;
        };
        if ch.drained && ch.got_continue && !ch.closed {
            self.close_channel(ctx, id, false);
            if self.tracker.outstanding(id).is_some() {
                self.start_post(ctx, id);
            }
        }
    }

    /// Stop paying for `id`. Accounts the active period; aborts the flow
    /// if we are the ones walking away (`abort` true).
    fn close_channel(&mut self, ctx: &mut Ctx, id: RequestId, abort: bool) {
        let Some(ch) = self.channels.remove(&id) else {
            return;
        };
        self.flow_to_req.remove(&ch.flow);
        let acked = ctx.flow(ch.flow).acked_bytes();
        let entry = self.paying.entry(id).or_insert((0.0, 0));
        entry.1 += acked;
        if !ch.drained {
            entry.0 += ctx.now().saturating_since(ch.post_start).as_secs_f64();
        }
        if abort && !ctx.flow(ch.flow).is_aborted() {
            ctx.abort_flow(ch.flow);
        }
    }

    fn finish_request(&mut self, ctx: &mut Ctx, id: RequestId, served: bool) {
        self.close_channel(ctx, id, true);
        let (pay_time, pay_bytes) = self.paying.remove(&id).unwrap_or((0.0, 0));
        let now = ctx.now();
        let next = if served {
            self.metrics.payment_time.push(pay_time);
            self.metrics.payment_sent.push(pay_bytes as f64);
            self.tracker.on_served(now, id)
        } else {
            self.tracker.on_dropped(now, id)
        };
        if let Some(n) = next {
            self.issue(ctx, n);
        }
    }
}

impl App for ClientAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        self.up_flow = Some(ctx.open_default_flow(self.thinner));
        self.schedule_fire(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == TOKEN_FIRE {
            let now = ctx.now();
            if let Some(id) = self.tracker.on_fire(now) {
                self.issue(ctx, id);
            }
            self.schedule_fire(ctx);
            return;
        }
        // Give-up timer for request `token`.
        let id = RequestId(token);
        let now = ctx.now();
        let overdue = self
            .tracker
            .outstanding(id)
            .map(|o| {
                self.tracker
                    .profile()
                    .give_up
                    .map(|g| now.saturating_since(o.issued) >= g)
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        if overdue {
            self.close_channel(ctx, id, true);
            self.paying.remove(&id);
            if let Some(n) = self.tracker.on_gave_up(now, id) {
                self.issue(ctx, n);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, _flow: FlowId, tag: u64) {
        let (kind, id) = unpack(tag);
        match kind {
            Kind::Encourage
                if self.tracker.outstanding(id).is_some() && !self.channels.contains_key(&id) =>
            {
                match self.mode {
                    PaymentMode::None => {}
                    PaymentMode::Posts => self.start_post(ctx, id),
                    PaymentMode::Retries => self.start_retries(ctx, id),
                }
            }
            Kind::Continue => {
                if let Some(ch) = self.channels.get_mut(&id) {
                    ch.got_continue = true;
                }
                self.try_repost(ctx, id);
            }
            Kind::Response => self.finish_request(ctx, id, true),
            Kind::Dropped => self.finish_request(ctx, id, false),
            _ => {}
        }
    }

    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId) {
        let Some(&id) = self.flow_to_req.get(&flow) else {
            return;
        };
        match self.mode {
            PaymentMode::Retries => {
                // Keep the retry stream full while the request lives.
                if self.tracker.outstanding(id).is_some() {
                    let bytes = self.tracker.profile().retry_bytes;
                    for _ in 0..RETRY_BATCH {
                        ctx.send(flow, bytes, pack(Kind::Retry, id));
                    }
                }
            }
            _ => {
                if let Some(ch) = self.channels.get_mut(&id) {
                    if !ch.drained {
                        ch.drained = true;
                        let dt = ctx.now().saturating_since(ch.post_start).as_secs_f64();
                        self.paying.entry(id).or_insert((0.0, 0)).0 += dt;
                    }
                }
                self.try_repost(ctx, id);
            }
        }
    }

    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        // The thinner terminated this payment channel (auction won, drop,
        // or §5 completion). Stop paying; the verdict arrives separately.
        let Some(&id) = self.flow_to_req.get(&flow) else {
            return;
        };
        if let Some(ch) = self.channels.get_mut(&id) {
            ch.closed = true;
            if !ch.drained {
                ch.drained = true;
                let dt = ctx.now().saturating_since(ch.post_start).as_secs_f64();
                self.paying.entry(id).or_insert((0.0, 0)).0 += dt;
            }
            let acked = ctx.flow(flow).acked_bytes();
            self.paying.entry(id).or_insert((0.0, 0)).1 += acked;
        }
        self.flow_to_req.remove(&flow);
        self.channels.remove(&id);
    }
}
