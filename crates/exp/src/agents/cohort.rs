//! A flyweight crowd of clients as one simulator application.
//!
//! [`CohortAgent`] plays N identical copies of [`ClientAgent`] from a
//! single node: request arrivals are drawn from the *superposed* Poisson
//! process (rate Nλ, firing member uniform — statistically exact), and
//! per-member request bookkeeping lives in the struct-of-arrays
//! [`CohortTracker`]. Each member runs the full §6 payment loop — its
//! own payment channels, POSTs, retries, give-ups — distinguished on the
//! wire by cohort-global request ids, so the thinner sees N independent
//! well-behaved (or attacking) clients at one address.
//!
//! What *is* shared, and therefore approximate at N > 1:
//!
//! * **The access link.** The runner provisions the cohort's node with N
//!   times one member's access rate, so aggregate bandwidth — the
//!   quantity speak-up's auction actually meters — is exact; individual
//!   members do not contend with each other the way N separate access
//!   links would (they contend downstream, at the shared hub/bottleneck,
//!   like everyone else). The flip side: a member paying alone can burst
//!   at up to N x its real rate, so *per-request* pacing statistics —
//!   payment times, realized auction prices, the unloaded serialization
//!   floor under `latency.min` — are not distribution-exact at N > 1.
//!   Aggregate allocation and served fractions are; per-request
//!   distributions should be read off the fully simulated foreground
//!   population (which is why `fig2_xl` keeps one).
//! * **The request flow.** All members' 400-byte requests ride one
//!   congestion-controlled flow to the thinner instead of N idle ones.
//!
//! With one member and no sharing in play, the agent is *observably
//! identical* to a [`ClientAgent`]: same RNG stream, same wire tags,
//! same event count (the equivalence tests pin this down).
//!
//! [`ClientAgent`]: crate::agents::client::ClientAgent

use crate::agents::client::{ClientMetrics, PaymentMode};
use crate::tags::{pack, sizes, unpack, Kind};
use speakup_core::client::{ClientProfile, ClientStats};
use speakup_core::cohort::CohortTracker;
use speakup_core::types::{ClientId, RequestId};
use speakup_net::ids::MemberId;
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::rng::Pcg32;
use speakup_net::sim::{App, Ctx};
use speakup_net::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

const TOKEN_FIRE: u64 = u64::MAX;
/// Give-up timer tokens carry the global request id directly (< 2^56).
const RETRY_BATCH: u64 = 8;

#[derive(Clone, Copy, Debug)]
struct Channel {
    flow: FlowId,
    post_start: SimTime,
    drained: bool,
    got_continue: bool,
    closed: bool,
}

/// N identical clients behind one node. See module docs.
pub struct CohortAgent {
    id: ClientId,
    thinner: NodeId,
    mode: PaymentMode,
    tracker: CohortTracker,
    rng: Pcg32,
    up_flow: Option<FlowId>,
    channels: BTreeMap<u64, Channel>,
    flow_to_req: BTreeMap<FlowId, u64>,
    /// Accumulated active-paying seconds and acked payment bytes, per
    /// in-flight request (keyed by global request id).
    paying: BTreeMap<u64, (f64, u64)>,
    /// Cohort-aggregated client-side metrics.
    pub metrics: ClientMetrics,
}

impl CohortAgent {
    /// Create a cohort of `members` clients of the given profile talking
    /// to `thinner`. `id` is the cohort's thinner-visible identity and
    /// seeds the RNG exactly as a lone [`ClientAgent`] with that id
    /// would be seeded — the N = 1 identity hinges on it.
    ///
    /// [`ClientAgent`]: crate::agents::client::ClientAgent
    pub fn new(
        id: ClientId,
        thinner: NodeId,
        profile: ClientProfile,
        members: u32,
        mode: PaymentMode,
        seed: u64,
    ) -> Self {
        CohortAgent {
            id,
            thinner,
            mode,
            tracker: CohortTracker::new(profile, members),
            rng: Pcg32::new(seed, 0xc11e47 ^ id.0 as u64),
            up_flow: None,
            channels: BTreeMap::new(),
            flow_to_req: BTreeMap::new(),
            paying: BTreeMap::new(),
            metrics: ClientMetrics::default(),
        }
    }

    /// This cohort's thinner-visible id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of aggregated members.
    pub fn members(&self) -> u32 {
        self.tracker.members()
    }

    /// Aggregated request bookkeeping results.
    pub fn stats(&self) -> &ClientStats {
        &self.tracker.stats
    }

    /// Draw the next superposed inter-arrival gap: N Poisson processes
    /// of rate λ superpose to one of rate Nλ. At N = 1 this consumes
    /// the RNG exactly like `ClientProfile::next_gap`.
    fn schedule_fire(&mut self, ctx: &mut Ctx) {
        let lambda_total = self.tracker.profile().lambda * self.tracker.members() as f64;
        let gap = SimDuration::from_secs_f64(self.rng.exp(1.0 / lambda_total));
        ctx.set_timer(gap, TOKEN_FIRE);
    }

    /// The member the current arrival belongs to — uniform by symmetry.
    /// Draws from the RNG only when there is a choice to make, keeping
    /// the N = 1 stream byte-identical to a lone client's.
    fn fire_member(&mut self) -> MemberId {
        let n = self.tracker.members();
        if n == 1 {
            MemberId(0)
        } else {
            MemberId(self.rng.below(n))
        }
    }

    fn issue(&mut self, ctx: &mut Ctx, id: u64) {
        let up = self.up_flow.expect("issue before start");
        ctx.send(up, sizes::REQUEST, pack(Kind::Request, RequestId(id)));
        if let Some(give_up) = self.tracker.profile().give_up {
            ctx.set_timer(give_up, id);
        }
    }

    fn start_post(&mut self, ctx: &mut Ctx, id: u64) {
        let flow = ctx.open_default_flow(self.thinner);
        let post_bytes = self.tracker.profile().post_bytes;
        ctx.send(
            flow,
            sizes::PAYMENT_HEADER,
            pack(Kind::PaymentHeader, RequestId(id)),
        );
        ctx.send(flow, post_bytes, pack(Kind::PaymentChunk, RequestId(id)));
        self.channels.insert(
            id,
            Channel {
                flow,
                post_start: ctx.now(),
                drained: false,
                got_continue: false,
                closed: false,
            },
        );
        self.flow_to_req.insert(flow, id);
        self.paying.entry(id).or_insert((0.0, 0));
    }

    fn start_retries(&mut self, ctx: &mut Ctx, id: u64) {
        let flow = ctx.open_default_flow(self.thinner);
        for _ in 0..RETRY_BATCH {
            ctx.send(
                flow,
                self.tracker.profile().retry_bytes,
                pack(Kind::Retry, RequestId(id)),
            );
        }
        self.channels.insert(
            id,
            Channel {
                flow,
                post_start: ctx.now(),
                drained: false,
                got_continue: false,
                closed: false,
            },
        );
        self.flow_to_req.insert(flow, id);
        self.paying.entry(id).or_insert((0.0, 0));
    }

    fn try_repost(&mut self, ctx: &mut Ctx, id: u64) {
        let Some(ch) = self.channels.get(&id) else {
            return;
        };
        if ch.drained && ch.got_continue && !ch.closed {
            self.close_channel(ctx, id, false);
            if self.tracker.outstanding(id).is_some() {
                self.start_post(ctx, id);
            }
        }
    }

    /// Stop paying for `id`. Accounts the active period; aborts the flow
    /// if we are the ones walking away (`abort` true).
    fn close_channel(&mut self, ctx: &mut Ctx, id: u64, abort: bool) {
        let Some(ch) = self.channels.remove(&id) else {
            return;
        };
        self.flow_to_req.remove(&ch.flow);
        let acked = ctx.flow(ch.flow).acked_bytes();
        let entry = self.paying.entry(id).or_insert((0.0, 0));
        entry.1 += acked;
        if !ch.drained {
            entry.0 += ctx.now().saturating_since(ch.post_start).as_secs_f64();
        }
        if abort && !ctx.flow(ch.flow).is_aborted() {
            ctx.abort_flow(ch.flow);
        }
    }

    fn finish_request(&mut self, ctx: &mut Ctx, id: u64, served: bool) {
        self.close_channel(ctx, id, true);
        let (pay_time, pay_bytes) = self.paying.remove(&id).unwrap_or((0.0, 0));
        let now = ctx.now();
        let next = if served {
            self.metrics.payment_time.push(pay_time);
            self.metrics.payment_sent.push(pay_bytes as f64);
            self.tracker.on_served(now, id)
        } else {
            self.tracker.on_dropped(now, id)
        };
        if let Some(n) = next {
            self.issue(ctx, n);
        }
    }
}

impl App for CohortAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        self.up_flow = Some(ctx.open_default_flow(self.thinner));
        self.schedule_fire(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == TOKEN_FIRE {
            let member = self.fire_member();
            let now = ctx.now();
            if let Some(id) = self.tracker.on_fire(member, now) {
                self.issue(ctx, id);
            }
            self.schedule_fire(ctx);
            return;
        }
        // Give-up timer for global request id `token`.
        let now = ctx.now();
        let overdue = self
            .tracker
            .outstanding(token)
            .map(|o| {
                self.tracker
                    .profile()
                    .give_up
                    .map(|g| now.saturating_since(o.issued) >= g)
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        if overdue {
            self.close_channel(ctx, token, true);
            self.paying.remove(&token);
            if let Some(n) = self.tracker.on_gave_up(now, token) {
                self.issue(ctx, n);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, _flow: FlowId, tag: u64) {
        let (kind, rid) = unpack(tag);
        let id = rid.0;
        match kind {
            Kind::Encourage
                if self.tracker.outstanding(id).is_some() && !self.channels.contains_key(&id) =>
            {
                match self.mode {
                    PaymentMode::None => {}
                    PaymentMode::Posts => self.start_post(ctx, id),
                    PaymentMode::Retries => self.start_retries(ctx, id),
                }
            }
            Kind::Continue => {
                if let Some(ch) = self.channels.get_mut(&id) {
                    ch.got_continue = true;
                }
                self.try_repost(ctx, id);
            }
            Kind::Response => self.finish_request(ctx, id, true),
            Kind::Dropped => self.finish_request(ctx, id, false),
            _ => {}
        }
    }

    fn on_flow_drained(&mut self, ctx: &mut Ctx, flow: FlowId) {
        let Some(&id) = self.flow_to_req.get(&flow) else {
            return;
        };
        match self.mode {
            PaymentMode::Retries => {
                // Keep the retry stream full while the request lives.
                if self.tracker.outstanding(id).is_some() {
                    let bytes = self.tracker.profile().retry_bytes;
                    for _ in 0..RETRY_BATCH {
                        ctx.send(flow, bytes, pack(Kind::Retry, RequestId(id)));
                    }
                }
            }
            _ => {
                if let Some(ch) = self.channels.get_mut(&id) {
                    if !ch.drained {
                        ch.drained = true;
                        let dt = ctx.now().saturating_since(ch.post_start).as_secs_f64();
                        self.paying.entry(id).or_insert((0.0, 0)).0 += dt;
                    }
                }
                self.try_repost(ctx, id);
            }
        }
    }

    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        // The thinner terminated this payment channel (auction won, drop,
        // or §5 completion). Stop paying; the verdict arrives separately.
        let Some(&id) = self.flow_to_req.get(&flow) else {
            return;
        };
        if let Some(ch) = self.channels.get_mut(&id) {
            ch.closed = true;
            if !ch.drained {
                ch.drained = true;
                let dt = ctx.now().saturating_since(ch.post_start).as_secs_f64();
                self.paying.entry(id).or_insert((0.0, 0)).0 += dt;
            }
            let acked = ctx.flow(flow).acked_bytes();
            self.paying.entry(id).or_insert((0.0, 0)).1 += acked;
        }
        self.flow_to_req.remove(&flow);
        self.channels.remove(&id);
    }
}
