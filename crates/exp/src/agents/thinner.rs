//! The thinner as a simulator application.
//!
//! Wires a [`FrontEnd`] (any of the four variants) plus the
//! [`EmulatedServer`] into the packet world: terminates client flows,
//! tallies payment bytes as they are delivered, executes directives
//! (admit/encourage/drop/suspend/...), and answers clients over per-client
//! downstream flows.

use crate::tags::{pack, sizes, unpack, Kind};
use speakup_core::metrics::Allocation;
use speakup_core::server::EmulatedServer;
use speakup_core::thinner::{BidDigest, DigestBoard, FrontEnd};
use speakup_core::types::{ClientId, Directive, RequestKey};
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::sim::{App, Ctx, TimerHandle};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::trace::Samples;
use std::collections::BTreeMap;

const TOKEN_SERVER_DONE: u64 = u64::MAX;
const TOKEN_TICK: u64 = u64::MAX - 1;
const TOKEN_SYNC: u64 = u64::MAX - 2;

/// Where a request stands, thinner-side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReqState {
    /// Known, not yet on the server (paying, §3.3/§5 waiting).
    Contending,
    /// Executing (or suspended, §5).
    OnServer,
}

/// Static facts about one client, provided by the scenario.
#[derive(Clone, Copy, Debug)]
pub struct ClientInfo {
    /// The client's id.
    pub id: ClientId,
    /// Whether it counts as an attacker in reports.
    pub is_bad: bool,
    /// Difficulty multiplier of this client's requests (§5).
    pub difficulty: f64,
    /// Whether the client presents a fresh identity per request (§2.2
    /// spoofing). The front end then sees an *alias* key; the agent maps
    /// directives back to the real client for routing and metrics.
    pub spoofs: bool,
}

/// One registered payment channel.
#[derive(Clone, Copy, Debug)]
struct Channel {
    flow: FlowId,
    /// Delivered-byte watermark already credited to the front end.
    seen: u64,
}

/// How one thinner replica participates in a replicated deployment
/// (`--thinners R`). Absent on single-thinner runs — which therefore
/// execute the exact pre-replication code path, byte for byte.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// This replica's id, `0..count`.
    pub id: u32,
    /// The other replicas' nodes (digest sync targets).
    pub peers: Vec<NodeId>,
    /// Epoch cadence: how often this replica publishes its digest.
    pub sync_period: SimDuration,
    /// The deployment's aggregate server capacity, req/s. Each epoch
    /// the replica re-rates its own slice to its share of this.
    pub total_capacity: f64,
    /// Total replica count.
    pub count: u32,
    /// Failover threshold: declare a peer stale (crashed or partitioned)
    /// once its latest digest lags this replica's epoch by more than
    /// this many sync periods. Stale peers drop out of the capacity
    /// shares — the survivors absorb the dead replica's slice — and
    /// re-join on their next digest (see [`DigestBoard::mark_stale`]).
    pub stale_after: u64,
}

/// Smoothing mass (bytes) added to every replica's paid total when
/// converting merged digests into capacity shares: before any payment
/// flows, shares start at `1/R` and drift toward paid-proportional as
/// real bytes dominate the constant.
const SHARE_SMOOTHING_BYTES: f64 = 65_536.0;

/// Measurements the thinner takes (the paper's Figs 2–5 feed from here).
#[derive(Debug, Default)]
pub struct ThinnerMetrics {
    /// Completed requests by class.
    pub allocation: Allocation,
    /// §5: completed quanta (busy time / τ) by class.
    pub quanta: Allocation,
    /// Winning bids (bytes/request) for good clients' served requests.
    pub price_good: Samples,
    /// Winning bids for bad clients' served requests.
    pub price_bad: Samples,
    /// Payment-channel bytes accepted in total (the §7.1 "sunk" traffic).
    pub payment_bytes_total: u64,
    /// Requests dropped (channel timeout, §5 abort, or baseline drop).
    pub drops: u64,
}

/// The thinner application. See module docs.
pub struct ThinnerAgent {
    fe: Box<dyn FrontEnd>,
    server: EmulatedServer,
    /// Which node hosts which client.
    clients_by_node: BTreeMap<NodeId, ClientInfo>,
    nodes_by_client: BTreeMap<ClientId, NodeId>,
    down_flows: BTreeMap<ClientId, FlowId>,
    channels: BTreeMap<RequestKey, Channel>,
    /// Reverse index of `channels` (payment flow → request), for O(1)
    /// abort handling and progress-drain lookups.
    by_flow: BTreeMap<FlowId, RequestKey>,
    states: BTreeMap<RequestKey, ReqState>,
    /// Bytes paid per request so far (for price metrics at admission).
    paid: BTreeMap<RequestKey, u64>,
    server_timer: Option<TimerHandle>,
    tick_timer: Option<TimerHandle>,
    /// Spoofing support: real key -> alias presented to the front end,
    /// and the reverse for directive translation.
    alias_of: BTreeMap<RequestKey, RequestKey>,
    real_of: BTreeMap<RequestKey, RequestKey>,
    next_alias: u32,
    /// §5 quantum for quanta accounting, if in quantum mode.
    quantum: Option<SimDuration>,
    scratch: Vec<Directive>,
    /// Reusable flow buffer for
    /// [`ThinnerAgent::sync_delivered_channels`], which runs on every
    /// server completion and tick.
    flow_scratch: Vec<FlowId>,
    /// Replication role, when part of a `--thinners R` deployment.
    replica: Option<ReplicaConfig>,
    /// This replica's own cumulative digest under construction.
    digest: BidDigest,
    /// Latest digest per replica (self included after each publish).
    board: DigestBoard,
    /// Next channel-expiry deadline last reported by the front end
    /// (digest `expiry_horizon`; refreshed on every tick).
    expiry_hint: Option<SimTime>,
    /// When this replica first declared a peer stale (time-to-failover
    /// measurements; survives restarts like the other metrics).
    failover_at: Option<SimTime>,
    /// When a stale peer's digest was first accepted back
    /// (time-to-recovery measurements).
    rejoin_at: Option<SimTime>,
    /// Half-open observation window `[from, until)` during which
    /// completions are additionally tallied into `window_allocation`
    /// (the runner points this at a fault's outage interval).
    observe: Option<(SimTime, SimTime)>,
    /// Completed requests by class inside the observation window.
    window_allocation: Allocation,
    /// Collected measurements.
    pub metrics: ThinnerMetrics,
}

impl ThinnerAgent {
    /// Build a thinner over the given front end and server, for the given
    /// client placement.
    pub fn new(
        fe: Box<dyn FrontEnd>,
        server: EmulatedServer,
        clients: impl IntoIterator<Item = (NodeId, ClientInfo)>,
        quantum: Option<SimDuration>,
    ) -> Self {
        let clients_by_node: BTreeMap<NodeId, ClientInfo> = clients.into_iter().collect();
        let nodes_by_client = clients_by_node.iter().map(|(n, i)| (i.id, *n)).collect();
        ThinnerAgent {
            fe,
            server,
            clients_by_node,
            nodes_by_client,
            down_flows: BTreeMap::new(),
            channels: BTreeMap::new(),
            by_flow: BTreeMap::new(),
            states: BTreeMap::new(),
            paid: BTreeMap::new(),
            server_timer: None,
            tick_timer: None,
            alias_of: BTreeMap::new(),
            real_of: BTreeMap::new(),
            next_alias: 1 << 24,
            quantum,
            scratch: Vec::new(),
            flow_scratch: Vec::new(),
            replica: None,
            digest: BidDigest::new(0),
            board: DigestBoard::new(),
            expiry_hint: None,
            failover_at: None,
            rejoin_at: None,
            observe: None,
            window_allocation: Allocation::default(),
            metrics: ThinnerMetrics::default(),
        }
    }

    /// Turn this thinner into one replica of a `--thinners R`
    /// deployment: it will publish a [`BidDigest`] to `replica.peers`
    /// every `replica.sync_period` and re-rate its server slice to its
    /// merged-paid share of `replica.total_capacity`.
    pub fn with_replica(mut self, replica: ReplicaConfig) -> Self {
        self.digest = BidDigest::new(replica.id);
        self.replica = Some(replica);
        self
    }

    /// The latest digests this replica has merged (tests, diagnostics).
    pub fn board(&self) -> &DigestBoard {
        &self.board
    }

    /// This replica's sync epoch so far (0 when unreplicated).
    pub fn sync_epoch(&self) -> u64 {
        self.digest.epoch
    }

    /// When this replica first declared a peer stale, if it ever did
    /// (time-to-failover = this minus the crash instant).
    pub fn failover_at(&self) -> Option<SimTime> {
        self.failover_at
    }

    /// When this replica first re-accepted a stale peer's digest, if
    /// ever (time-to-recovery = this minus the restart instant).
    pub fn rejoin_at(&self) -> Option<SimTime> {
        self.rejoin_at
    }

    /// Tally completions inside `[from, until)` into a separate
    /// [`ThinnerAgent::window_allocation`] counter. The runner points
    /// this at a scheduled fault's outage interval so reports can state
    /// the good-client allocation *during* the outage, not just over the
    /// whole run. Like the cumulative metrics, the window survives a
    /// crash/restart of the hosting node.
    pub fn observe_window(&mut self, from: SimTime, until: SimTime) {
        assert!(from < until, "observation window must be non-empty");
        self.observe = Some((from, until));
    }

    /// Completed requests by class inside the observation window (zero
    /// if no window was set).
    pub fn window_allocation(&self) -> Allocation {
        self.window_allocation.clone()
    }

    /// Read access to the server (utilization, completion counts).
    pub fn server(&self) -> &EmulatedServer {
        &self.server
    }

    /// Read access to the front end (e.g. downcasting for its stats).
    pub fn front_end(&self) -> &dyn FrontEnd {
        self.fe.as_ref()
    }

    fn info(&self, client: ClientId) -> ClientInfo {
        let node = self.nodes_by_client[&client];
        self.clients_by_node[&node]
    }

    /// The key the front end sees for a (real) request: the real key for
    /// honest clients, a per-request fresh identity for spoofers.
    fn fe_key(&mut self, real: RequestKey, spoofs: bool) -> RequestKey {
        if !spoofs {
            return real;
        }
        if let Some(&a) = self.alias_of.get(&real) {
            return a;
        }
        let alias = RequestKey::new(ClientId(self.next_alias), real.req);
        self.next_alias += 1;
        self.alias_of.insert(real, alias);
        self.real_of.insert(alias, real);
        alias
    }

    /// Translate a front-end key back to the real request.
    fn real_key(&self, k: RequestKey) -> RequestKey {
        self.real_of.get(&k).copied().unwrap_or(k)
    }

    fn drop_alias(&mut self, real: RequestKey) {
        if let Some(a) = self.alias_of.remove(&real) {
            self.real_of.remove(&a);
        }
    }

    /// The alias already registered for `real`, or `real` itself.
    fn existing_fe_key(&self, real: RequestKey) -> RequestKey {
        self.alias_of.get(&real).copied().unwrap_or(real)
    }

    fn down_flow(&mut self, ctx: &mut Ctx, client: ClientId) -> FlowId {
        if let Some(&f) = self.down_flows.get(&client) {
            return f;
        }
        let node = self.nodes_by_client[&client];
        let f = ctx.open_default_flow(node);
        self.down_flows.insert(client, f);
        f
    }

    fn tell(&mut self, ctx: &mut Ctx, client: ClientId, kind: Kind, req: RequestKey, bytes: u64) {
        let f = self.down_flow(ctx, client);
        ctx.send(f, bytes, pack(kind, req.req));
    }

    /// Credit any newly delivered bytes on `key`'s channel to the front
    /// end. Returns the delta.
    fn sync_channel(&mut self, ctx: &mut Ctx, key: RequestKey) -> u64 {
        let Some(ch) = self.channels.get_mut(&key) else {
            return 0;
        };
        let delivered = ctx.flow(ch.flow).delivered_bytes();
        let delta = delivered.saturating_sub(ch.seen);
        if delta > 0 {
            ch.seen = delivered;
            *self.paid.entry(key).or_insert(0) += delta;
            self.metrics.payment_bytes_total += delta;
            self.digest.note_payment(delta);
            let now = ctx.now();
            let fe_key = self.existing_fe_key(key);
            let mut out = std::mem::take(&mut self.scratch);
            self.fe.on_payment(now, fe_key, delta, &mut out);
            // Payments never emit directives in auction/quantum mode; the
            // retry mode feeds per-message payments elsewhere. Anything
            // that does arrive is processed all the same.
            if !out.is_empty() {
                self.execute_drain(ctx, &mut out);
            }
            self.scratch = out;
        }
        delta
    }

    /// Credit every channel whose flow delivered new bytes since the
    /// last call. Equivalent to polling every open channel — a sync
    /// with no new bytes is a no-op — but O(flows that moved) instead
    /// of O(open channels). The full scan ran on every server
    /// completion, and completions scale with capacity (itself scaled
    /// to the population), so at crowd scale it made the whole
    /// simulation O(population²) per simulated second.
    fn sync_delivered_channels(&mut self, ctx: &mut Ctx) {
        // Reuse the flow buffer: this runs on every completion and
        // tick, and a fresh Vec per call was measurable allocator churn.
        let mut flows = std::mem::take(&mut self.flow_scratch);
        flows.clear();
        ctx.drain_progress(&mut flows);
        for &f in &flows {
            if let Some(&key) = self.by_flow.get(&f) {
                self.sync_channel(ctx, key);
            }
        }
        self.flow_scratch = flows;
    }

    fn call_fe(
        &mut self,
        ctx: &mut Ctx,
        f: impl FnOnce(&mut dyn FrontEnd, SimTime, &mut Vec<Directive>),
    ) {
        let now = ctx.now();
        let mut out = std::mem::take(&mut self.scratch);
        f(self.fe.as_mut(), now, &mut out);
        self.execute_drain(ctx, &mut out);
        self.scratch = out;
    }

    /// Process and remove every directive in `directives`, leaving the
    /// vector empty but with its capacity intact for the caller to hand
    /// back to `scratch` (the double-`mem::take` this replaces returned
    /// a zero-capacity buffer, costing an allocation per front-end call).
    fn execute_drain(&mut self, ctx: &mut Ctx, directives: &mut Vec<Directive>) {
        for d in directives.drain(..) {
            // Translate any front-end alias back to the real request.
            let d = match d {
                Directive::Admit(k) => Directive::Admit(self.real_key(k)),
                Directive::Encourage(k) => Directive::Encourage(self.real_key(k)),
                Directive::Drop(k) => Directive::Drop(self.real_key(k)),
                Directive::TerminateChannel(k) => Directive::TerminateChannel(self.real_key(k)),
                Directive::Suspend(k) => Directive::Suspend(self.real_key(k)),
                Directive::Resume(k) => Directive::Resume(self.real_key(k)),
                Directive::AbortRequest(k) => Directive::AbortRequest(self.real_key(k)),
            };
            match d {
                Directive::Admit(k) => self.admit(ctx, k),
                Directive::Encourage(k) => {
                    self.states.entry(k).or_insert(ReqState::Contending);
                    self.tell(ctx, k.client, Kind::Encourage, k, sizes::CONTROL);
                }
                Directive::Drop(k) => {
                    self.metrics.drops += 1;
                    self.digest.timeouts += 1;
                    self.cleanup_channel(ctx, k, false);
                    self.states.remove(&k);
                    self.paid.remove(&k);
                    self.drop_alias(k);
                    self.tell(ctx, k.client, Kind::Dropped, k, sizes::CONTROL);
                }
                Directive::TerminateChannel(k) => {
                    self.cleanup_channel(ctx, k, true);
                }
                Directive::Suspend(k) => {
                    let now = ctx.now();
                    self.server.suspend(now, k);
                    if let Some(h) = self.server_timer.take() {
                        ctx.cancel_timer(h);
                    }
                    self.credit_quantum_progress(k);
                }
                Directive::Resume(k) => {
                    let now = ctx.now();
                    let finish = self.server.resume(now, k);
                    self.arm_server_timer(ctx, finish);
                    self.states.insert(k, ReqState::OnServer);
                }
                Directive::AbortRequest(k) => {
                    self.server.abort_suspended(k);
                    self.metrics.drops += 1;
                    self.cleanup_channel(ctx, k, false);
                    self.states.remove(&k);
                    self.paid.remove(&k);
                    self.drop_alias(k);
                    self.tell(ctx, k.client, Kind::Dropped, k, sizes::CONTROL);
                }
            }
        }
    }

    fn admit(&mut self, ctx: &mut Ctx, k: RequestKey) {
        let info = self.info(k.client);
        let now = ctx.now();
        let finish = self.server.start_request(now, k, info.difficulty);
        self.digest.admissions += 1;
        self.arm_server_timer(ctx, finish);
        self.states.insert(k, ReqState::OnServer);
        // Record the price this admission paid.
        let paid = self.paid.get(&k).copied().unwrap_or(0) as f64;
        if info.is_bad {
            self.metrics.price_bad.push(paid);
        } else {
            self.metrics.price_good.push(paid);
        }
    }

    fn arm_server_timer(&mut self, ctx: &mut Ctx, finish: SimTime) {
        if let Some(h) = self.server_timer.take() {
            ctx.cancel_timer(h);
        }
        let delay = finish.saturating_since(ctx.now());
        self.server_timer = Some(ctx.set_timer(delay, TOKEN_SERVER_DONE));
    }

    /// Terminate the transport channel for `k`. `graceful` distinguishes
    /// auction wins (the client learns the outcome from the later
    /// `Response`) from drops.
    fn cleanup_channel(&mut self, ctx: &mut Ctx, k: RequestKey, graceful: bool) {
        let _ = graceful;
        if let Some(ch) = self.channels.remove(&k) {
            ctx.unwatch_flow(ch.flow);
            self.by_flow.remove(&ch.flow);
            ctx.abort_flow(ch.flow);
        }
    }

    /// §5 bookkeeping: count quanta consumed by the request's class.
    fn credit_quantum_progress(&mut self, _k: RequestKey) {
        // Quanta are accounted at completion from total work; nothing to
        // do per-suspension. Kept as a hook for finer-grained accounting.
    }

    fn schedule_tick(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let mut out = std::mem::take(&mut self.scratch);
        let next = self.fe.on_tick(now, &mut out);
        self.expiry_hint = next;
        self.execute_drain(ctx, &mut out);
        self.scratch = out;
        if let Some(h) = self.tick_timer.take() {
            ctx.cancel_timer(h);
        }
        // Fall back to a coarse housekeeping cadence when the front end
        // has no deadline of its own.
        let at = next.unwrap_or(now + SimDuration::from_millis(500));
        let delay = at.saturating_since(now).max(SimDuration::from_millis(1));
        self.tick_timer = Some(ctx.set_timer(delay, TOKEN_TICK));
    }

    fn client_of_flow(&self, ctx: &Ctx, flow: FlowId) -> Option<ClientInfo> {
        let src = ctx.flow(flow).src;
        self.clients_by_node.get(&src).copied()
    }

    /// Stamp the digest's live-auction snapshot, bump the epoch, and
    /// ship it to every peer replica as a control payload (delivered at
    /// path propagation delay, so determinism and the lookahead matrix
    /// hold). The replica's own board merges it immediately.
    fn publish_digest(&mut self, ctx: &mut Ctx) {
        self.digest.epoch += 1;
        self.digest.contenders = self
            .states
            .values()
            .filter(|s| **s == ReqState::Contending)
            .count() as u64;
        self.digest.busy = self.server.is_busy();
        self.digest.going_rate = self.fe.going_rate().unwrap_or(0);
        self.digest.expiry_horizon = self.expiry_hint.map_or(u64::MAX, SimTime::as_nanos);
        // The oracle-facing top-bid fields stay unset in the simulation:
        // replicas coordinate through capacity shares, not a global
        // admission gate (which would serialize them to ~c/R total).
        self.digest.has_top = false;
        let words = self.digest.encode().into_boxed_slice();
        let peers = match &self.replica {
            Some(cfg) => cfg.peers.clone(),
            None => Vec::new(),
        };
        for peer in peers {
            ctx.send_control(peer, words.clone());
        }
        self.board.merge(self.digest);
    }

    /// Re-rate this replica's server slice to its share of the
    /// aggregate capacity, proportional to merged cumulative paid bytes
    /// (with smoothing so pre-payment epochs stay at `1/R`). This is
    /// the paper's DNS-round-robin deployment made adaptive: a replica
    /// whose clients deliver more payment bandwidth serves a matching
    /// share of the server, so the going rate equalizes across
    /// replicas as sync staleness allows.
    ///
    /// Shares are computed over *live* replicas only: a peer declared
    /// stale (see [`ReplicaConfig::stale_after`]) drops out of both the
    /// paid total and the smoothing mass, so the survivors' shares sum
    /// to 1 and the dead replica's capacity slice is absorbed rather
    /// than stranded. With no stale peers — every fault-free run — this
    /// is arithmetic-identical to the all-replicas formula.
    fn rebalance_capacity(&mut self) {
        let Some(cfg) = &self.replica else {
            return;
        };
        let total = self.board.live_total_paid() as f64;
        let mine = self.board.paid_of(cfg.id) as f64;
        let live_n = f64::from(cfg.count) - self.board.stale_count() as f64;
        let share = (mine + SHARE_SMOOTHING_BYTES) / (total + SHARE_SMOOTHING_BYTES * live_n);
        self.server.set_capacity(cfg.total_capacity * share);
    }
}

impl App for ThinnerAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        self.schedule_tick(ctx);
        if let Some(cfg) = &self.replica {
            ctx.set_timer(cfg.sync_period, TOKEN_SYNC);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, flow: FlowId, tag: u64) {
        let (kind, rid) = unpack(tag);
        let Some(info) = self.client_of_flow(ctx, flow) else {
            return; // message from a non-client node (e.g. Fig 9 web traffic)
        };
        let key = RequestKey::new(info.id, rid);
        match kind {
            Kind::Request => {
                self.states.entry(key).or_insert(ReqState::Contending);
                let fe_key = self.fe_key(key, info.spoofs);
                self.call_fe(ctx, |fe, now, out| fe.on_request(now, fe_key, out));
            }
            Kind::PaymentHeader => {
                // Final credit for a previous channel of the same request
                // (re-POST case), then switch to the new flow.
                self.sync_channel(ctx, key);
                let seen = ctx.flow(flow).delivered_bytes();
                if let Some(old) = self.channels.insert(key, Channel { flow, seen }) {
                    ctx.unwatch_flow(old.flow);
                    self.by_flow.remove(&old.flow);
                }
                ctx.watch_flow(flow);
                self.by_flow.insert(flow, key);
            }
            Kind::PaymentChunk => {
                // A full POST arrived. Credit it, then tell the client to
                // keep paying if its request is still in play.
                self.sync_channel(ctx, key);
                let state = self.states.get(&key).copied();
                let keep_paying = match state {
                    Some(ReqState::Contending) => true,
                    // §5: the active request keeps its channel open.
                    Some(ReqState::OnServer) => self.quantum.is_some(),
                    None => false,
                };
                if keep_paying {
                    self.tell(ctx, key.client, Kind::Continue, key, sizes::CONTROL);
                }
            }
            Kind::Retry => {
                // Retries race with admission on a separate flow: a stale
                // retry that lands after its request was served must not
                // resurrect it (cf. §7.3's wasted bytes — they are simply
                // ignored).
                if self.states.get(&key) != Some(&ReqState::Contending) {
                    return;
                }
                self.metrics.payment_bytes_total += sizes::RETRY;
                self.digest.note_payment(sizes::RETRY);
                *self.paid.entry(key).or_insert(0) += sizes::RETRY;
                let fe_key = self.existing_fe_key(key);
                self.call_fe(ctx, |fe, now, out| {
                    fe.on_payment(now, fe_key, sizes::RETRY, out)
                });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            TOKEN_SERVER_DONE => {
                self.server_timer = None;
                let now = ctx.now();
                let key = self.server.complete(now);
                let info = self.info(key.client);
                if info.is_bad {
                    self.metrics.allocation.bad += 1;
                } else {
                    self.metrics.allocation.good += 1;
                }
                if let Some((from, until)) = self.observe {
                    if now >= from && now < until {
                        if info.is_bad {
                            self.window_allocation.bad += 1;
                        } else {
                            self.window_allocation.good += 1;
                        }
                    }
                }
                if let Some(q) = self.quantum {
                    // Work consumed ≈ difficulty/c; count quanta.
                    let quanta = ((info.difficulty / self.server.capacity()) / q.as_secs_f64())
                        .round() as u64;
                    let quanta = quanta.max(1);
                    if info.is_bad {
                        self.metrics.quanta.bad += quanta;
                    } else {
                        self.metrics.quanta.good += quanta;
                    }
                }
                self.states.remove(&key);
                self.paid.remove(&key);
                // In auction mode the channel died at admission; in §5 it
                // is still open and on_server_done will terminate it.
                // Sync other channels so the auction sees fresh bids.
                self.sync_delivered_channels(ctx);
                let fe_key = self.existing_fe_key(key);
                self.drop_alias(key);
                self.call_fe(ctx, |fe, now, out| fe.on_server_done(now, fe_key, out));
                self.tell(ctx, key.client, Kind::Response, key, sizes::RESPONSE);
            }
            TOKEN_TICK => {
                self.tick_timer = None;
                self.sync_delivered_channels(ctx);
                self.schedule_tick(ctx);
            }
            TOKEN_SYNC => {
                // Epoch boundary: credit any fresh payment bytes first
                // so the published digest is current, then publish,
                // check for silent peers, re-rate, and re-arm.
                self.sync_delivered_channels(ctx);
                self.publish_digest(ctx);
                if let Some(cfg) = &self.replica {
                    let newly = self
                        .board
                        .mark_stale(cfg.id, self.digest.epoch, cfg.stale_after);
                    if !newly.is_empty() && self.failover_at.is_none() {
                        self.failover_at = Some(ctx.now());
                    }
                }
                self.rebalance_capacity();
                if let Some(cfg) = &self.replica {
                    ctx.set_timer(cfg.sync_period, TOKEN_SYNC);
                }
            }
            _ => unreachable!("unknown thinner timer token"),
        }
    }

    fn on_flow_aborted(&mut self, ctx: &mut Ctx, flow: FlowId) {
        // A client abandoned a payment flow. Cancel its request's
        // channel registration if it is still ours.
        if let Some(k) = self.by_flow.remove(&flow) {
            ctx.unwatch_flow(flow);
            self.channels.remove(&k);
            let fe_key = self.existing_fe_key(k);
            self.call_fe(ctx, |fe, now, out| fe.on_cancel(now, fe_key, out));
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx, _src: NodeId, payload: &[u64]) {
        // A peer replica's digest. Merge-by-epoch makes delivery order
        // irrelevant; the capacity share follows the freshened board.
        if let Some(d) = BidDigest::decode(payload) {
            let was_stale = self.board.is_stale(d.replica);
            let kept = self.board.merge(d);
            if kept && was_stale && self.rejoin_at.is_none() {
                self.rejoin_at = Some(ctx.now());
            }
            self.rebalance_capacity();
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        // The hosting node crashed and came back: every flow, timer, and
        // watch died with it, and a fresh thinner process holds no
        // in-flight request state. Cumulative metrics survive — they are
        // the harness's measurement apparatus, not process memory.
        self.fe.reset(ctx.now());
        self.server.reset();
        self.down_flows.clear();
        self.channels.clear();
        self.by_flow.clear();
        self.states.clear();
        self.paid.clear();
        self.server_timer = None;
        self.tick_timer = None;
        self.alias_of.clear();
        self.real_of.clear();
        self.expiry_hint = None;
        // The digest epoch restarts from zero — that reset is exactly
        // the re-join signal peers accept past their max-epoch rule —
        // and the board refills from the next round of peer digests.
        let id = self.replica.as_ref().map_or(0, |cfg| cfg.id);
        self.digest = BidDigest::new(id);
        self.board = DigestBoard::new();
        // Come back up exactly like a first boot: housekeeping tick now,
        // first digest publish one sync period from now.
        self.start(ctx);
    }
}
