//! Figures 3, 4 and 5 (§7.2–§7.3): provisioning regimes.
//!
//! One population (25 good + 25 bad, G = B = 50 Mbit/s), three capacities
//! `c` ∈ {50, 100, 200} around `c_id` = 100, speak-up ON and OFF.
//! Prints:
//!   * Fig 3 — allocation to good/bad and fraction of good demand served;
//!   * Fig 4 — mean and 90th-percentile time spent uploading dummy bytes;
//!   * Fig 5 — average price (payment per served request) vs the
//!     `(G+B)/c` upper bound.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, kbytes, secs, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::fig3;

fn main() {
    let opt = Options::from_args(600);
    let cs = [50.0, 100.0, 200.0];
    let mut scens = Vec::new();
    for &c in &cs {
        for mode in [Mode::Off, Mode::Auction] {
            scens.push(fig3(c, mode).duration(opt.duration).seed(opt.seed));
        }
    }
    eprintln!(
        "fig3/4/5: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    // ---------- Figure 3 ----------
    let mut rows = Vec::new();
    for (i, &c) in cs.iter().enumerate() {
        let off = &reports[2 * i];
        let on = &reports[2 * i + 1];
        for (label, r) in [("OFF", off), ("ON", on)] {
            rows.push(vec![
                format!("{c:.0},{label}"),
                frac(r.good_fraction()),
                frac(1.0 - r.good_fraction()),
                frac(r.good_served_fraction()),
            ]);
        }
    }
    println!("\nFigure 3: allocation and good service by capacity (G=B=50 Mbit/s, c_id=100)");
    println!(
        "{}",
        table(&["c,mode", "alloc good", "alloc bad", "good served"], &rows)
    );

    // ---------- Figure 4 ----------
    let mut rows = Vec::new();
    for (i, &c) in cs.iter().enumerate() {
        let on = &reports[2 * i + 1];
        let mut t = on.good.payment_time.clone();
        rows.push(vec![
            format!("{c:.0}"),
            secs(t.mean()),
            secs(t.percentile(90.0)),
        ]);
    }
    println!("\nFigure 4: time uploading dummy bytes, served good requests (speak-up ON)");
    println!("{}", table(&["c", "mean", "90th pct"], &rows));

    // ---------- Figure 5 ----------
    let mut rows = Vec::new();
    for (i, &c) in cs.iter().enumerate() {
        let on = &reports[2 * i + 1];
        let ub = scens[2 * i + 1].price_upper_bound();
        rows.push(vec![
            format!("{c:.0}"),
            kbytes(ub),
            kbytes(on.price_good.mean()),
            kbytes(on.price_bad.mean()),
        ]);
    }
    println!("\nFigure 5: average price (payment bytes per served request, speak-up ON)");
    println!(
        "{}",
        table(&["c", "upper bound (G+B)/c", "good", "bad"], &rows)
    );
    println!(
        "paper shape: overloaded (c=50,100) prices approach but stay below the\n\
         bound (clients cannot use every last bit of bandwidth); at c=200 the\n\
         server is lightly loaded relative to demand and prices collapse."
    );
}
