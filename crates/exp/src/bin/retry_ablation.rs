//! Ablation: §3.2 (random drops + aggressive retries) vs §3.3 (payment
//! channel + virtual auction) on the Figure 3 population.
//!
//! The paper implements and evaluates only §3.3; this run shows the §3.2
//! variant also approaches bandwidth-proportional allocation, along with
//! the price it charges in *retries* (`r = 1/p`).

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::fig3;

fn main() {
    let opt = Options::from_args(600);
    let cs = [50.0, 100.0, 200.0];
    let mut scens = Vec::new();
    for &c in &cs {
        for mode in [Mode::Auction, Mode::Retry] {
            scens.push(fig3(c, mode).duration(opt.duration).seed(opt.seed));
        }
    }
    eprintln!(
        "retry_ablation: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for (i, &c) in cs.iter().enumerate() {
        let auction = &reports[2 * i];
        let retry = &reports[2 * i + 1];
        rows.push(vec![
            format!("{c:.0}"),
            frac(auction.good_fraction()),
            frac(retry.good_fraction()),
            frac(auction.good_served_fraction()),
            frac(retry.good_served_fraction()),
        ]);
    }
    println!("\nAblation: auction (3.3) vs aggressive retries (3.2), G=B, ideal good share 0.5");
    println!(
        "{}",
        table(
            &[
                "c",
                "alloc good (auction)",
                "alloc good (retry)",
                "served (auction)",
                "served (retry)",
            ],
            &rows
        )
    );
    println!(
        "both mechanisms allocate roughly in proportion to bandwidth; the\n\
         auction needs no admission-probability estimate, which is the\n\
         paper's argument for preferring it (3.3 'Comparison')."
    );
}
