//! §7.1 / Table 1: thinner capacity, as a standalone measurement.
//!
//! The paper measures its thinner sinking payment traffic at 1451 Mbit/s
//! (1500-byte packets) and 379 Mbit/s (120-byte packets) at 90% CPU on a
//! 3 GHz Xeon. We measure the equivalent in-process path — incremental
//! HTTP parsing of POST bodies plus auction payment accounting — for both
//! frame sizes. Criterion's statistically rigorous version lives in
//! `speakup-bench` (`--bench capacity`); this binary prints one quick
//! wall-clock table.

use speakup_core::thinner::{AuctionConfig, AuctionFrontEnd, FrontEnd};
use speakup_core::types::{ClientId, RequestId, RequestKey};
use speakup_exp::report::table;
use speakup_net::time::SimTime;
use speakup_proto::http::{ParseEvent, RequestParser};
use speakup_proto::message::encode_payment_head;
use std::time::Instant;

fn sink(total: u64, frame: usize) -> f64 {
    let mut fe = AuctionFrontEnd::new(AuctionConfig::default());
    let mut out = Vec::new();
    let t0 = SimTime::ZERO;
    fe.on_request(t0, RequestKey::new(ClientId(0), RequestId(0)), &mut out);
    let key = RequestKey::new(ClientId(1), RequestId(1));
    fe.on_request(t0, key, &mut out);
    out.clear();

    let mut parser = RequestParser::new();
    parser.push(&encode_payment_head(1, total));
    while let Ok(Some(ev)) = parser.next_event() {
        if matches!(ev, ParseEvent::Head(_)) {
            break;
        }
    }
    let chunk = vec![0x5au8; frame];
    let started = Instant::now();
    let mut sent = 0u64;
    while sent < total {
        let n = (total - sent).min(frame as u64);
        parser.push(&chunk[..n as usize]);
        sent += n;
        while let Ok(Some(ev)) = parser.next_event() {
            match ev {
                ParseEvent::BodyChunk(b) => fe.on_payment(t0, key, b, &mut out),
                _ => break,
            }
        }
    }
    assert_eq!(fe.bid_of(key), Some(total));
    let secs = started.elapsed().as_secs_f64();
    total as f64 * 8.0 / secs / 1e6 // Mbit/s
}

fn main() {
    let total: u64 = 256 << 20; // 256 MB per measurement
    println!("Section 7.1: payment-sink throughput (parse + credit), {total} bytes each\n");
    let mut rows = Vec::new();
    for frame in [1500usize, 120] {
        let mbps = sink(total, frame);
        rows.push(vec![
            format!("{frame}"),
            format!("{:.0} Mbit/s", mbps),
            match frame {
                1500 => "1451 Mbit/s".to_string(),
                _ => "379 Mbit/s".to_string(),
            },
        ]);
    }
    println!(
        "{}",
        table(&["frame bytes", "measured (this host)", "paper (2006 Xeon + NIC)"], &rows)
    );
    println!(
        "shape to check: large frames sink several times faster than small\n\
         ones — per-packet (here per-chunk) costs dominate, as in the paper."
    );
}
