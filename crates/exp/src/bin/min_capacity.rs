//! §7.4: the empirical adversarial advantage.
//!
//! Sweep `c` upward from `c_id` = 100 and report the fraction of good
//! demand served, to locate the smallest capacity at which (nearly) all
//! good demand is satisfied. The paper finds `c` = 115 — bad clients can
//! cheat the proportional-allocation mechanism, but only to a limited
//! extent. Our bad clients are somewhat stronger than the paper's (they
//! never waste bytes on orphan channels), so expect the threshold a bit
//! higher; see EXPERIMENTS.md.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::min_capacity_sweep;

fn main() {
    let opt = Options::from_args(600);
    let cs = [100.0, 110.0, 115.0, 125.0, 140.0, 160.0, 180.0, 200.0];
    let scens: Vec<_> = min_capacity_sweep(Mode::Auction, &cs)
        .into_iter()
        .map(|s| s.duration(opt.duration).seed(opt.seed))
        .collect();
    eprintln!(
        "min_capacity: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    let mut threshold: Option<f64> = None;
    for (r, &c) in reports.iter().zip(&cs) {
        let served = r.good_served_fraction();
        // "Satisfied" up to simulation-edge censoring (~λ·w in-flight at
        // the cutoff) and stochastic backlog blips.
        if served >= 0.99 && threshold.is_none() {
            threshold = Some(c);
        }
        rows.push(vec![
            format!("{c:.0}"),
            frac(served),
            frac(r.good_fraction()),
            format!("{:.0}%", (c / 100.0 - 1.0) * 100.0),
        ]);
    }
    println!("\nSection 7.4: provisioning needed to satisfy all good demand (c_id = 100)");
    println!(
        "{}",
        table(&["c", "good served", "alloc good", "over c_id"], &rows)
    );
    match threshold {
        Some(c) => println!(
            "good demand (essentially) fully served at c = {c:.0} — {:.0}% above the\n\
             bandwidth-proportional ideal (paper: 15%).",
            (c / 100.0 - 1.0) * 100.0
        ),
        None => println!("good demand not fully served in the swept range."),
    }
}
