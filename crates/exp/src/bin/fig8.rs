//! Figure 8 (§7.6): good and bad clients sharing a bottleneck link.
//!
//! 30 clients behind a 40 Mbit/s link `l` (they could generate 60), plus
//! 10 good and 10 bad clients connected directly; `c` = 50. Sweep the
//! good/bad split behind `l` over {5/25, 15/15, 25/5}. Reports, as the
//! paper's bars do: how the "bottleneck service" (the server share
//! captured by clients behind `l`) divides between good and bad, vs the
//! headcount ideal, and the fraction of bottlenecked good demand served.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenarios::fig8;

fn main() {
    let opt = Options::from_args(600);
    let splits = [5usize, 15, 25];
    let scens: Vec<_> = splits
        .iter()
        .map(|&n| fig8(n).duration(opt.duration).seed(opt.seed))
        .collect();
    eprintln!(
        "fig8: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for (r, &n_good) in reports.iter().zip(&splits) {
        let (mut bg, mut bb, mut bg_gen) = (0u64, 0u64, 0u64);
        let mut direct = 0u64;
        for pc in &r.per_client {
            if pc.behind_bottleneck {
                if pc.is_bad {
                    bb += pc.served;
                } else {
                    bg += pc.served;
                    bg_gen += pc.generated;
                }
            } else {
                direct += pc.served;
            }
        }
        let behind = bg + bb;
        rows.push(vec![
            format!("{n_good} good, {} bad", 30 - n_good),
            frac(behind as f64 / (behind + direct).max(1) as f64),
            frac(bg as f64 / behind.max(1) as f64),
            frac(n_good as f64 / 30.0),
            frac(bg as f64 / bg_gen.max(1) as f64),
        ]);
    }
    println!("\nFigure 8: good and bad clients sharing a 40 Mbit/s bottleneck (c=50)");
    println!(
        "{}",
        table(
            &[
                "behind l",
                "l's server share",
                "good share of it",
                "ideal good share",
                "bottl. good served",
            ],
            &rows
        )
    );
    println!(
        "paper shape: clients behind l capture ~half the server, but *within*\n\
         that share the good clients get far less than their headcount ideal —\n\
         bad clients hog l with concurrent connections (and would with or\n\
         without speak-up)."
    );
}
