//! §3.4 / Theorem 3.1: how badly can the auction be gamed?
//!
//! Plays the regular-interval auction game against four adversarial
//! spending schedules and compares the ε-bidder's win fraction to the
//! theorem's `ε/(2−ε) ≥ ε/2` floor. Also validates the §3.2/§3.3 retry
//! variant empirically via the simulator in `fig3`-style runs (see the
//! `retry_ablation` binary).

use speakup_core::analysis::{play_auction_game, theorem_bound, AdversaryStrategy, GameOutcome};
use speakup_exp::report::{frac, table};

fn main() {
    let rounds = 500_000;
    let strategies: [(&str, AdversaryStrategy); 4] = [
        ("uniform", AdversaryStrategy::Uniform),
        ("just-enough", AdversaryStrategy::JustEnough),
        ("bursty(10)", AdversaryStrategy::Bursty { period: 10 }),
        ("random", AdversaryStrategy::Random { seed: 7 }),
    ];
    let epsilons = [0.05, 0.1, 0.2, 0.3, 0.5];

    let mut rows = Vec::new();
    for &eps in &epsilons {
        let mut row = vec![format!("{eps:.2}"), frac(theorem_bound(eps))];
        for (_, strat) in &strategies {
            let o: GameOutcome = play_auction_game(eps, rounds, strat);
            row.push(frac(o.x_fraction));
        }
        rows.push(row);
    }
    println!("\nTheorem 3.1: win fraction of a continuous eps-bidder vs adversarial schedules");
    println!("({rounds} auctions per cell; floor = eps/(2-eps) >= eps/2)");
    println!(
        "{}",
        table(
            &[
                "eps",
                "floor",
                "uniform",
                "just-enough",
                "bursty(10)",
                "random"
            ],
            &rows
        )
    );
    println!(
        "expected: every column is at or above the floor; 'just-enough' (the\n\
         proof's pessimal, implausibly informed adversary) pins the bidder\n\
         closest to it, while naive schedules leave the bidder near its full\n\
         proportional share eps."
    );
}
