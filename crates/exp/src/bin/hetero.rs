//! §5: heterogeneous requests — the per-quantum auction at work.
//!
//! Good clients send difficulty-1 requests; attackers send only
//! difficulty-5 requests (the threat model lets them know request cost).
//! Under the plain §3.3 auction every request pays the same emergent
//! price, so attackers extract 5× the server time per byte of payment.
//! The §5 quantum auction charges per quantum of server time, restoring
//! bandwidth-proportional allocation of *work*.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::heterogeneous_requests;
use speakup_net::time::SimDuration;

fn main() {
    let opt = Options::from_args(600);
    let hard = 5.0;
    let scens = vec![
        heterogeneous_requests(Mode::Auction, hard)
            .duration(opt.duration)
            .seed(opt.seed),
        heterogeneous_requests(
            Mode::Quantum {
                quantum: SimDuration::from_millis(10),
            },
            hard,
        )
        .duration(opt.duration)
        .seed(opt.seed),
    ];
    eprintln!(
        "hetero: 2 runs x {}s simulated ...",
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for r in &reports {
        // Work share: requests weighted by difficulty.
        let good_work = r.allocation.good as f64;
        let bad_work = r.allocation.bad as f64 * hard;
        rows.push(vec![
            r.mode.clone(),
            format!("{}", r.allocation.good),
            format!("{}", r.allocation.bad),
            frac(good_work / (good_work + bad_work)),
            frac(0.5),
        ]);
    }
    println!("\nSection 5: equal-bandwidth good vs bad clients; bad requests are 5x harder");
    println!(
        "{}",
        table(
            &[
                "front end",
                "good served",
                "bad served",
                "good share of WORK",
                "ideal",
            ],
            &rows
        )
    );
    println!(
        "expected: the plain auction under-serves good clients by ~the\n\
         difficulty factor; the quantum auction pulls the work share back\n\
         toward the bandwidth-proportional ideal."
    );
}
