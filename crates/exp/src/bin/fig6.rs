//! Figure 6 (§7.5): heterogeneous client bandwidths.
//!
//! 50 good LAN clients in five categories — category `i` has 10 clients
//! with `0.5·i` Mbit/s — and a `c` = 10 req/s server. Speak-up should
//! allocate each category a share close to its bandwidth share `i/15`.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::scenarios::fig6;

fn main() {
    let opt = Options::from_args(600);
    let s = fig6().duration(opt.duration).seed(opt.seed);
    eprintln!(
        "fig6: 1 run x {}s simulated ...",
        opt.duration.as_secs_f64()
    );
    let r = speakup_exp::run(&s);

    let mut served = [0u64; 5];
    for (i, pc) in r.per_client.iter().enumerate() {
        served[i / 10] += pc.served;
    }
    let total: u64 = served.iter().sum();
    let mut rows = Vec::new();
    for (i, &cat) in served.iter().enumerate() {
        let bw_mbps = 0.5 * (i as f64 + 1.0);
        rows.push(vec![
            format!("{bw_mbps:.1}"),
            frac(cat as f64 / total as f64),
            frac((i as f64 + 1.0) / 15.0),
        ]);
    }
    println!("\nFigure 6: allocation by client bandwidth (all good, c=10)");
    println!(
        "{}",
        table(
            &["bandwidth Mbit/s", "observed share", "ideal share"],
            &rows
        )
    );
    println!("paper shape: observed tracks the bandwidth-proportional ideal.");
}
