//! §8.1 comparison: detect-and-block (profiling) vs speak-up, with and
//! without spoofing attackers.
//!
//! The paper's argument for the currency approach: profiling blocks naive
//! bots outright (better than speak-up!), but "schemes that rate-limit
//! clients by IP address can err with ... spoofing (a small number of
//! clients can get a large piece of the server)". Speak-up never asks who
//! you are — only what you can pay — so spoofing buys the attacker
//! nothing.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::profiling_comparison;

fn main() {
    let opt = Options::from_args(300);
    // A generous profile: 3 req/s per identity (good clients need 2).
    let profile = Mode::Profile { allowed_rate: 3.0 };
    let scens = vec![
        profiling_comparison(profile, false)
            .duration(opt.duration)
            .seed(opt.seed),
        profiling_comparison(profile, true)
            .duration(opt.duration)
            .seed(opt.seed),
        profiling_comparison(Mode::Auction, false)
            .duration(opt.duration)
            .seed(opt.seed),
        profiling_comparison(Mode::Auction, true)
            .duration(opt.duration)
            .seed(opt.seed),
    ];
    eprintln!(
        "profiling: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for (r, label) in reports.iter().zip([
        "profiling, honest bots",
        "profiling, spoofing bots",
        "speak-up, honest bots",
        "speak-up, spoofing bots",
    ]) {
        rows.push(vec![
            label.to_string(),
            frac(r.good_fraction()),
            frac(r.good_served_fraction()),
            format!("{}", r.thinner_drops),
        ]);
    }
    println!("\nSection 8.1: identity-keyed defense vs bandwidth tax (5 good vs 5 bad, c=20)");
    println!(
        "{}",
        table(
            &[
                "defense / attack",
                "alloc good",
                "good served",
                "blocked+dropped"
            ],
            &rows
        )
    );
    println!(
        "expected: profiling wins big against fixed identities and collapses\n\
         against spoofing; speak-up's allocation barely moves — the auction\n\
         charges requests, not identities."
    );
}
