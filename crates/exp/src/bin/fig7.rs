//! Figure 7 (§7.5): heterogeneous RTTs.
//!
//! Two experiments with 50 clients in five RTT categories (category `i`:
//! RTT = 100·i ms), all clients good in one run and all bad in the other,
//! `c` = 10. The paper's hypothesis, confirmed: long RTTs hurt *good*
//! clients (slow start per POST plus a per-POST quiescent period scale
//! with RTT) but barely affect *bad* clients, whose concurrent requests
//! hide the idle time.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenarios::fig7;

fn main() {
    let opt = Options::from_args(600);
    let scens = vec![
        fig7(false).duration(opt.duration).seed(opt.seed),
        fig7(true).duration(opt.duration).seed(opt.seed),
    ];
    eprintln!(
        "fig7: 2 runs x {}s simulated ...",
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let shares = |r: &speakup_exp::RunReport| -> [f64; 5] {
        let mut served = [0u64; 5];
        for (i, pc) in r.per_client.iter().enumerate() {
            served[i / 10] += pc.served;
        }
        let total: u64 = served.iter().sum::<u64>().max(1);
        let mut out = [0.0; 5];
        for i in 0..5 {
            out[i] = served[i] as f64 / total as f64;
        }
        out
    };
    let good = shares(&reports[0]);
    let bad = shares(&reports[1]);

    let mut rows = Vec::new();
    for i in 0..5 {
        rows.push(vec![
            format!("{}", 100 * (i + 1)),
            frac(good[i]),
            frac(bad[i]),
            frac(0.2),
        ]);
    }
    println!("\nFigure 7: allocation by client RTT (c=10; separate all-good and all-bad runs)");
    println!(
        "{}",
        table(
            &["RTT ms", "all-good share", "all-bad share", "ideal"],
            &rows
        )
    );
    println!(
        "paper shape: good clients' share falls with RTT (no more than ~2x off\n\
         ideal at the extremes); bad clients' share is flat — RTT doesn't matter\n\
         when you keep many concurrent requests outstanding."
    );
}
