//! Figure 9 (§7.7): speak-up's impact on other traffic.
//!
//! An HTTP client `H` shares a 1 Mbit/s, 100 ms one-way bottleneck with 10
//! speak-up clients paying toward a `c` = 2 thinner. `H` downloads a file
//! from a separate web server 100 times per size; we report mean ± stddev
//! of the end-to-end latency with and without the speak-up traffic, for
//! sizes on a log scale — the paper's 1 KB…100 KB sweep.

use speakup_exp::cli::Options;
use speakup_exp::report::table;
use speakup_exp::runner::run_all;
use speakup_exp::scenarios::fig9;

fn main() {
    let opt = Options::from_args(600);
    let sizes: [u64; 5] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 100 << 10];
    let mut scens = Vec::new();
    for &size in &sizes {
        for on in [false, true] {
            scens.push(fig9(size, on).duration(opt.duration).seed(opt.seed));
        }
    }
    eprintln!(
        "fig9: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let off = reports[2 * i].wget_latencies.clone().expect("wget data");
        let on = reports[2 * i + 1]
            .wget_latencies
            .clone()
            .expect("wget data");
        let inflation = if off.mean() > 0.0 {
            on.mean() / off.mean()
        } else {
            0.0
        };
        rows.push(vec![
            format!("{}", size >> 10),
            format!("{:.3} ± {:.3} (n={})", off.mean(), off.stddev(), off.len()),
            format!("{:.3} ± {:.3} (n={})", on.mean(), on.stddev(), on.len()),
            format!("{inflation:.1}x"),
        ]);
    }
    println!("\nFigure 9: HTTP download latency sharing a bottleneck with speak-up traffic");
    println!(
        "{}",
        table(
            &[
                "size KB",
                "without speak-up (s)",
                "with speak-up (s)",
                "inflation"
            ],
            &rows
        )
    );
    println!(
        "paper shape: multi-x inflation across sizes (theirs: ~6x at 1 KB,\n\
         ~4.5x at 64 KB) — significant collateral damage on a restrictive link,\n\
         with the caveat that the experiment is deliberately pessimistic."
    );
}
