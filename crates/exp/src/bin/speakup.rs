//! The unified experiment CLI: `speakup list`, `speakup run <name>...`.
//!
//! All logic lives in [`speakup_exp::driver`] so tests exercise the same
//! code path; this binary only wires argv, stdout, and stderr together.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match speakup_exp::driver::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("speakup: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut out = std::io::stdout().lock();
    let mut progress = std::io::stderr().lock();
    match speakup_exp::driver::dispatch(&cmd, &mut out, &mut progress) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("speakup: {e}");
            ExitCode::FAILURE
        }
    }
}
