//! Figure 2 (§7.2): fraction of the server allocated to good clients as a
//! function of their fraction of total bandwidth, with and without
//! speak-up, against the proportional ideal.
//!
//! Paper setup: 50 clients × 2 Mbit/s on a LAN, `c` = 100 requests/s,
//! `f` ∈ {0.1, 0.3, 0.5, 0.7, 0.9}, 600 s per run.

use speakup_exp::cli::Options;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::fig2;

fn main() {
    let opt = Options::from_args(600);
    let fs = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut scens = Vec::new();
    for &f in &fs {
        for mode in [Mode::Auction, Mode::Off] {
            scens.push(fig2(f, mode).duration(opt.duration).seed(opt.seed));
        }
    }
    eprintln!(
        "fig2: {} runs x {}s simulated ...",
        scens.len(),
        opt.duration.as_secs_f64()
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for (i, &f) in fs.iter().enumerate() {
        let with = &reports[2 * i];
        let without = &reports[2 * i + 1];
        rows.push(vec![
            format!("{f:.1}"),
            frac(with.good_fraction()),
            frac(without.good_fraction()),
            frac(f), // ideal = G/(G+B) = f in this homogeneous setting
        ]);
    }
    println!("\nFigure 2: server allocation to good clients vs their bandwidth fraction (c=100)");
    println!(
        "{}",
        table(&["f=G/(G+B)", "with speak-up", "without", "ideal"], &rows)
    );
    println!(
        "paper shape: 'with' tracks the ideal line closely (slightly below);\n\
         'without' stays far below it because bad clients out-request good ones."
    );
}
