//! # speakup-exp — the evaluation harness (§7)
//!
//! Reconstructs every experiment of the paper's evaluation on top of
//! `speakup-net` (the Emulab stand-in) and `speakup-core` (the system):
//!
//! * [`scenario`] — declarative run descriptions (clients, links, mode);
//! * [`agents`] — the thinner, client, and web-bystander applications;
//! * [`runner`] — build, run, and measure one scenario;
//! * [`scenarios`] — ready-made builders for Figures 2–9 and §7.4;
//! * [`report`] — text tables and ideal-line computations.
//!
//! Each paper figure has a binary (`fig2` … `fig9`, `min_capacity`) that
//! prints the regenerated series; Criterion benches in `speakup-bench`
//! run reduced versions of the same scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod cli;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod tags;

pub use runner::{run, run_all, RunReport};
pub use scenario::{BottleneckSpec, ClientSpec, Mode, Scenario, WebSpec};
