//! # speakup-exp — the evaluation harness (§7)
//!
//! Reconstructs every experiment of the paper's evaluation on top of
//! `speakup-net` (the Emulab stand-in) and `speakup-core` (the system):
//!
//! * [`scenario`] — declarative run descriptions (clients, links, mode);
//! * [`agents`] — the thinner, client, and web-bystander applications;
//! * [`runner`] — build, run, and measure one scenario;
//! * [`scenarios`] — ready-made builders for Figures 2–9 and §7.4;
//! * [`registry`] — every experiment as a named entry: paper section,
//!   default duration, parameter grid, and table renderer;
//! * [`driver`] — the `speakup` CLI (`list`, `run`) over the registry,
//!   with parallel seed replicates and JSON reports;
//! * [`report`] — text tables and ideal-line computations;
//! * [`json`] — a dependency-free JSON builder for the reports.
//!
//! One binary, `speakup`, drives everything: `speakup list` names the
//! experiments; `speakup run fig3 --secs 600 --seeds 8 --json`
//! regenerates a figure. Criterion benches in `speakup-bench` run
//! reduced versions of the same scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod compare;
pub mod driver;
pub mod json;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod tags;

pub use registry::{Entry, RunOptions};
pub use runner::{run, run_all, run_all_pooled, run_sharded, RunReport};
pub use scenario::{BottleneckSpec, ClientSpec, Mode, Scenario, WebSpec};
