//! Plain-text report formatting: aligned tables and the paper's ideal
//! lines, so the `speakup` driver prints rows directly comparable to the
//! published plots.

use crate::runner::RunReport;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Format a fraction as `0.xxx`.
pub fn frac(v: f64) -> String {
    format!("{v:.3}")
}

/// Format seconds with millisecond precision.
pub fn secs(v: f64) -> String {
    format!("{v:.3}s")
}

/// Format a byte count in KB with one decimal.
pub fn kbytes(v: f64) -> String {
    format!("{:.1}KB", v / 1000.0)
}

/// One-line summary of a run, used by `quickstart` and tests.
pub fn summarize(r: &RunReport) -> String {
    format!(
        "{name}: mode={mode} good_alloc={ga:.3} good_served={gs:.3} util={u:.2} drops={d}",
        name = r.name,
        mode = r.mode,
        ga = r.good_fraction(),
        gs = r.good_served_fraction(),
        u = r.server_utilization,
        d = r.thinner_drops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["f", "with", "without"],
            &[
                vec!["0.1".into(), "0.093".into(), "0.011".into()],
                vec!["0.5".into(), "0.489".into(), "0.091".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("without"));
        assert!(lines[1].starts_with('-'));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(frac(0.5), "0.500");
        assert_eq!(secs(1.25), "1.250s");
        assert_eq!(kbytes(125_000.0), "125.0KB");
    }
}
