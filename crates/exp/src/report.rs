//! Plain-text report formatting: aligned tables and the paper's ideal
//! lines, so the `speakup` driver prints rows directly comparable to the
//! published plots.

use crate::runner::RunReport;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// A point estimate with an optional 95% confidence half-width (absent
/// for single-replicate runs).
#[derive(Clone, Copy, Debug)]
pub struct Est {
    /// Mean across replicates.
    pub mean: f64,
    /// 95% CI half-width (Student's t), when at least two replicates.
    pub ci95: Option<f64>,
}

/// Two-sided 97.5% Student-t quantiles for df = 1..=30; 1.96 beyond.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

impl Est {
    /// Mean ± 95% CI of a replicate sample (CI absent when n < 2).
    pub fn from_values(vs: &[f64]) -> Est {
        let n = vs.len();
        if n == 0 {
            return Est {
                mean: 0.0,
                ci95: None,
            };
        }
        let mean = vs.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Est { mean, ci95: None };
        }
        let var = vs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        let t = T95.get(n - 2).copied().unwrap_or(1.96);
        Est {
            mean,
            ci95: Some(t * (var / n as f64).sqrt()),
        }
    }
}

/// All seed replicates of one grid point, base seed first.
#[derive(Clone, Copy)]
pub struct Reps<'a>(pub &'a [RunReport]);

impl<'a> Reps<'a> {
    /// The base-seed replicate.
    pub fn base(&self) -> &'a RunReport {
        &self.0[0]
    }

    /// Number of replicates.
    pub fn n(&self) -> usize {
        self.0.len()
    }

    /// Mean ± 95% CI of a per-run metric across the replicates.
    pub fn est(&self, f: impl Fn(&RunReport) -> f64) -> Est {
        let vs: Vec<f64> = self.0.iter().map(f).collect();
        Est::from_values(&vs)
    }
}

/// Format a fraction as `0.xxx`.
pub fn frac(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a fraction estimate: `0.xxx` or `0.xxx±0.yyy`.
pub fn frac_est(e: Est) -> String {
    match e.ci95 {
        None => frac(e.mean),
        Some(ci) => format!("{:.3}±{ci:.3}", e.mean),
    }
}

/// Format a seconds estimate: `x.xxxs` or `x.xxxs±y.yyy`.
pub fn secs_est(e: Est) -> String {
    match e.ci95 {
        None => secs(e.mean),
        Some(ci) => format!("{:.3}s±{ci:.3}", e.mean),
    }
}

/// Format a kilobyte estimate: `x.xKB` or `x.xKB±y.y`.
pub fn kbytes_est(e: Est) -> String {
    match e.ci95 {
        None => kbytes(e.mean),
        Some(ci) => format!("{}±{:.1}", kbytes(e.mean), ci / 1000.0),
    }
}

/// Format a count estimate: `n` or `n±m`.
pub fn count_est(e: Est) -> String {
    match e.ci95 {
        None => format!("{:.0}", e.mean),
        Some(ci) => format!("{:.0}±{ci:.0}", e.mean),
    }
}

/// Format seconds with millisecond precision.
pub fn secs(v: f64) -> String {
    format!("{v:.3}s")
}

/// Format a byte count in KB with one decimal.
pub fn kbytes(v: f64) -> String {
    format!("{:.1}KB", v / 1000.0)
}

/// One-line summary of a run, used by `quickstart` and tests.
pub fn summarize(r: &RunReport) -> String {
    format!(
        "{name}: mode={mode} good_alloc={ga:.3} good_served={gs:.3} util={u:.2} drops={d}",
        name = r.name,
        mode = r.mode,
        ga = r.good_fraction(),
        gs = r.good_served_fraction(),
        u = r.server_utilization,
        d = r.thinner_drops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["f", "with", "without"],
            &[
                vec!["0.1".into(), "0.093".into(), "0.011".into()],
                vec!["0.5".into(), "0.489".into(), "0.091".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("without"));
        assert!(lines[1].starts_with('-'));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(frac(0.5), "0.500");
        assert_eq!(secs(1.25), "1.250s");
        assert_eq!(kbytes(125_000.0), "125.0KB");
    }

    #[test]
    fn single_replicate_estimates_format_like_plain_values() {
        let e = Est::from_values(&[0.5]);
        assert_eq!(frac_est(e), "0.500");
        assert_eq!(secs_est(e), "0.500s");
        assert!(e.ci95.is_none());
        assert_eq!(Est::from_values(&[]).mean, 0.0);
    }

    #[test]
    fn multi_replicate_estimates_carry_a_t_interval() {
        // n=3, sd=1: half-width = t(df=2) * 1/sqrt(3).
        let e = Est::from_values(&[1.0, 2.0, 3.0]);
        assert!((e.mean - 2.0).abs() < 1e-12);
        let ci = e.ci95.expect("ci for n=3");
        assert!((ci - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(frac_est(e), format!("2.000±{ci:.3}"));
        assert_eq!(count_est(e), format!("2±{ci:.0}"));
    }
}
