//! `speakup compare`: diff a fresh run against a committed golden report.
//!
//! A golden file is simply a saved `speakup run <name> --json` document
//! (see `golden/` at the repo root). `compare` re-runs the experiment
//! with the options recorded in the document (duration, base seed,
//! replicate count), then walks both JSON trees leaf by leaf:
//!
//! * strings, booleans, and structure must match exactly;
//! * numbers must agree within a per-metric tolerance chosen by the leaf
//!   path (counts tighter than sample statistics, tail percentiles and
//!   spreads loosest, wall-clock measurements ignored).
//!
//! The engine is deterministic, so on the commit that produced a golden
//! the diff is empty; the tolerances define how much *intentional* drift
//! a later change may introduce before CI demands the goldens be
//! regenerated and the change justified.

use crate::driver::{entry_json, execute};
use crate::json::Json;
use crate::registry::{self, RunOptions};
use crate::scenario::FaultSpec;
use speakup_net::time::{SimDuration, SimTime};
use std::io::Write;

/// One numeric disagreement between golden and fresh reports.
#[derive(Debug)]
pub struct Breach {
    /// JSON path of the leaf (e.g. `runs[3].good.served`).
    pub path: String,
    /// Value in the golden file.
    pub golden: String,
    /// Value in the fresh run.
    pub fresh: String,
    /// The tolerance that was exceeded, rendered for the report.
    pub allowed: String,
}

/// Relative/absolute tolerance for a metric, selected by path substring.
/// First match wins; `None` means the leaf is not checked at all.
fn tolerance_for(path: &str) -> Option<(f64, f64)> {
    // Sample counts (`latency_s.n`, `price_good_bytes.n`, ...) are
    // counters even though their parent key matches a statistics rule.
    if path.ends_with(".n") {
        return Some((0.02, 0.5));
    }
    const RULES: &[(&str, Option<(f64, f64)>)] = &[
        // Host wall-clock measurements (§7.1 payment sink) are not
        // reproducible across machines.
        ("measured_mbps", None),
        // Replica fairness divergence: an absolute band around zero (the
        // generic catch-all's ±0.5 would vacuously pass a share delta).
        ("delta_vs_r1", Some((0.0, 0.02))),
        // Failover timing is quantized by the digest sync cadence: a
        // legitimate change can shift detection or re-join by a whole
        // sync period, so these get a much wider band than fairness.
        ("time_to_", Some((0.20, 0.25))),
        // The outage-window allocation share is estimated from the few
        // seconds a replica is down — twice the steady-state share band.
        // (Must precede the generic "fraction" rule.)
        ("outage_good_fraction", Some((0.0, 0.04))),
        // Spreads and tail statistics drift hardest under small changes.
        ("stddev", Some((0.25, 1e-6))),
        ("p90", Some((0.10, 1e-6))),
        ("max", Some((0.10, 1e-6))),
        ("min", Some((0.10, 1e-6))),
        // Sample means, fractions, prices, times.
        ("mean", Some((0.05, 1e-3))),
        ("fraction", Some((0.0, 0.02))),
        ("utilization", Some((0.0, 0.02))),
        ("latency", Some((0.05, 1e-3))),
        ("price", Some((0.05, 1e-3))),
        ("payment", Some((0.05, 1e-3))),
        // Everything else (counters, config echoes) must agree closely.
        ("", Some((0.02, 0.5))),
    ];
    for (pat, tol) in RULES {
        if pat.is_empty() || path.contains(pat) {
            return *tol;
        }
    }
    unreachable!("the catch-all rule matches everything")
}

fn walk(path: &str, golden: &Json, fresh: &Json, tol_scale: f64, out: &mut Vec<Breach>) {
    // Numbers (Num and UInt compare by value).
    if let (Some(g), Some(f)) = (golden.as_f64(), fresh.as_f64()) {
        let Some((rel, abs)) = tolerance_for(path) else {
            return;
        };
        let allowed = (abs + rel * g.abs().max(f.abs())) * tol_scale;
        if (g - f).abs() > allowed {
            out.push(Breach {
                path: path.to_string(),
                golden: format!("{g}"),
                fresh: format!("{f}"),
                allowed: format!("±{allowed:.6}"),
            });
        }
        return;
    }
    match (golden, fresh) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(g), Json::Bool(f)) if g == f => {}
        (Json::Str(g), Json::Str(f)) if g == f => {}
        (Json::Arr(g), Json::Arr(f)) => {
            if g.len() != f.len() {
                out.push(Breach {
                    path: path.to_string(),
                    golden: format!("array of {}", g.len()),
                    fresh: format!("array of {}", f.len()),
                    allowed: "equal lengths".to_string(),
                });
                return;
            }
            for (i, (gi, fi)) in g.iter().zip(f).enumerate() {
                walk(&format!("{path}[{i}]"), gi, fi, tol_scale, out);
            }
        }
        (Json::Obj(g), Json::Obj(f)) => {
            for (k, gv) in g {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match fresh.get(k) {
                    Some(fv) => walk(&sub, gv, fv, tol_scale, out),
                    None => out.push(Breach {
                        path: sub,
                        golden: "present".to_string(),
                        fresh: "missing".to_string(),
                        allowed: "field exists".to_string(),
                    }),
                }
            }
            for (k, _) in f {
                if golden.get(k).is_none() {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    out.push(Breach {
                        path: sub,
                        golden: "missing".to_string(),
                        fresh: "present".to_string(),
                        allowed: "field exists".to_string(),
                    });
                }
            }
        }
        _ => out.push(Breach {
            path: path.to_string(),
            golden: type_name(golden).to_string(),
            fresh: type_name(fresh).to_string(),
            allowed: "same type and value".to_string(),
        }),
    }
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) | Json::UInt(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// Compare a golden document against a freshly generated one. Returns
/// the list of breaches (empty means the reports agree).
pub fn diff(golden: &Json, fresh: &Json, tol_scale: f64) -> Vec<Breach> {
    let mut out = Vec::new();
    walk("", golden, fresh, tol_scale, &mut out);
    out
}

/// The run options a golden document was produced with.
pub fn options_of(golden: &Json) -> Result<(&'static registry::Entry, RunOptions), String> {
    let name = golden
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("golden file has no \"experiment\" field")?;
    let entry =
        registry::find(name).ok_or_else(|| format!("unknown experiment {name:?} in golden"))?;
    let duration = golden
        .get("duration_s")
        .and_then(Json::as_f64)
        .filter(|d| d.is_finite() && *d > 0.0)
        .ok_or("golden file needs a positive \"duration_s\" (zero-length runs have NaN rates)")?;
    let seed = golden
        .get("base_seed")
        .and_then(Json::as_u64)
        .ok_or("golden file has no \"base_seed\"")?;
    let seeds = golden
        .get("seeds")
        .and_then(Json::as_u64)
        .filter(|&k| k >= 1)
        .ok_or("golden file needs \"seeds\" >= 1")?
        .min(u32::MAX as u64) as u32;
    // Replica overrides are optional header fields (absent on goldens
    // produced without `--thinners` / `--sync-period`); when present the
    // re-run must apply them or every run diverges from the golden.
    let thinners = match golden.get("thinners_override") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&t| (1..=u32::MAX as u64).contains(&t))
                .ok_or("golden file's \"thinners_override\" must be a positive integer")?
                as u32,
        ),
    };
    let sync_period = match golden.get("sync_period_override_ms") {
        None => None,
        Some(v) => Some(SimDuration::from_nanos(
            v.as_u64()
                .filter(|&ms| ms >= 1 && ms.checked_mul(1_000_000).is_some())
                .ok_or("golden file's \"sync_period_override_ms\" must be a positive integer")?
                * 1_000_000,
        )),
    };
    // Fault overrides round-trip in nanoseconds so the re-run schedules
    // byte-identical fault events (seconds would lose precision through
    // the f64 path).
    let faults = match golden.get("faults_override") {
        None => Vec::new(),
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(fault_of(item)?);
            }
            out
        }
        Some(_) => return Err("golden file's \"faults_override\" must be an array".to_string()),
    };
    Ok((
        entry,
        RunOptions {
            duration: Some(SimDuration::from_secs_f64(duration)),
            seed,
            seeds,
            jobs: None,
            shards: 1,
            thinners,
            sync_period,
            faults,
        },
    ))
}

/// Parse one `faults_override` entry back into the [`FaultSpec`] it was
/// rendered from (see `driver::fault_json`).
fn fault_of(item: &Json) -> Result<FaultSpec, String> {
    let kind = item
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("fault override entry has no \"kind\"")?;
    let ns = |field: &str| -> Result<u64, String> {
        item.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault override entry needs a u64 {field:?}"))
    };
    match kind {
        "replica_crash" => {
            let replica = ns("replica")?;
            if replica > u32::MAX as u64 {
                return Err("fault override \"replica\" is out of range".to_string());
            }
            Ok(FaultSpec::ReplicaCrash {
                replica: replica as u32,
                at: SimTime::from_nanos(ns("at_ns")?),
                down_for: SimDuration::from_nanos(
                    ns("down_for_ns")?.max(1), // zero would panic in the builder path
                ),
            })
        }
        "link_flaps" => Ok(FaultSpec::LinkFlaps {
            seed: ns("seed")?,
            mean_every: SimDuration::from_nanos(ns("mean_every_ns")?.max(1)),
            mean_down: SimDuration::from_nanos(ns("mean_down_ns")?.max(1)),
        }),
        other => Err(format!("unknown fault override kind {other:?}")),
    }
}

/// The number of numeric leaves in `doc` that [`tolerance_for`] would
/// actually check. A golden whose metrics are all missing (e.g. an
/// empty `runs` array, or a document reduced to its header) would diff
/// vacuously clean against *any* fresh run; [`compare_file`] rejects
/// such files outright.
pub fn checked_metric_count(doc: &Json) -> usize {
    fn count(path: &str, v: &Json, out: &mut usize) {
        if v.as_f64().is_some() {
            if tolerance_for(path).is_some() {
                *out += 1;
            }
            return;
        }
        match v {
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    count(&format!("{path}[{i}]"), item, out);
                }
            }
            Json::Obj(fields) => {
                for (k, fv) in fields {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    count(&sub, fv, out);
                }
            }
            _ => {}
        }
    }
    // Only measurement payloads count — header echoes (duration_s,
    // base_seed, seeds) are inputs, not results.
    let mut n = 0;
    for payload in ["runs", "analysis", "fairness", "failover"] {
        if let Some(v) = doc.get(payload) {
            count(payload, v, &mut n);
        }
    }
    n
}

/// Load `path`, re-run its experiment, and report the diff on `out`.
/// Returns `Ok(true)` when the reports agree within tolerance.
pub fn compare_file(
    path: &str,
    tol_scale: f64,
    jobs: Option<usize>,
    shards: u32,
    out: &mut dyn Write,
    progress: &mut dyn Write,
) -> std::io::Result<bool> {
    let text = std::fs::read_to_string(path)?;
    let mut golden = Json::parse(&text).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{path}: not valid JSON: {e}"),
        )
    })?;
    // `speakup run --json` appends a host-dependent `perf` section
    // (wall-clock rates) after the deterministic payload; the re-run
    // below rebuilds only the payload, so a golden saved straight from
    // the CLI would otherwise always breach on the extra field.
    if let Json::Obj(fields) = &mut golden {
        fields.retain(|(k, _)| k != "perf");
    }
    let (entry, mut opts) =
        options_of(&golden).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if checked_metric_count(&golden) == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{path}: golden has no checked metrics (empty or header-only \
                 \"runs\"); it would compare clean against anything — \
                 regenerate it with `speakup run {} --json`",
                entry.name
            ),
        ));
    }
    opts.jobs = jobs;
    opts.shards = shards;
    writeln!(
        progress,
        "compare {path}: re-running {} ({} x {}s, seed {:#x}) ...",
        entry.name,
        entry.build_grid().len() * opts.seeds as usize,
        opts.duration_for(entry).as_secs_f64(),
        opts.seed,
    )?;
    let run = execute(entry, &opts);
    let fresh = entry_json(&run, &opts);
    let breaches = diff(&golden, &fresh, tol_scale);
    if breaches.is_empty() {
        writeln!(out, "{path}: OK ({} within tolerance)", entry.name)?;
        return Ok(true);
    }
    writeln!(
        out,
        "{path}: {} metric(s) outside tolerance for {}:",
        breaches.len(),
        entry.name
    )?;
    for b in breaches.iter().take(50) {
        writeln!(
            out,
            "  {}: golden {} vs fresh {} (allowed {})",
            b.path, b.golden, b.fresh, b.allowed
        )?;
    }
    if breaches.len() > 50 {
        writeln!(out, "  ... and {} more", breaches.len() - 50)?;
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_no_breaches() {
        let doc = Json::obj()
            .field("experiment", "fig2")
            .field("runs", vec![Json::obj().field("good", 10u64)]);
        assert!(diff(&doc, &doc.clone(), 1.0).is_empty());
    }

    #[test]
    fn counters_breach_outside_two_percent() {
        let golden = Json::obj().field("served", 100u64);
        let close = Json::obj().field("served", 101u64);
        let far = Json::obj().field("served", 110u64);
        assert!(diff(&golden, &close, 1.0).is_empty());
        let breaches = diff(&golden, &far, 1.0);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].path, "served");
    }

    #[test]
    fn fractions_use_absolute_tolerance() {
        let golden = Json::obj().field("good_fraction", 0.50);
        let close = Json::obj().field("good_fraction", 0.515);
        let far = Json::obj().field("good_fraction", 0.54);
        assert!(diff(&golden, &close, 1.0).is_empty());
        assert_eq!(diff(&golden, &far, 1.0).len(), 1);
        // A larger scale admits the drift.
        assert!(diff(&golden, &far, 3.0).is_empty());
    }

    #[test]
    fn sample_counts_use_the_counter_tolerance() {
        let stats = |n: u64, mean: f64| {
            Json::obj().field("latency_s", Json::obj().field("n", n).field("mean", mean))
        };
        // 4% drift: fine for the mean (5% statistics rule), a breach for
        // the sample count (2% counter rule) despite the `latency` key.
        let breaches = diff(&stats(1000, 1.0), &stats(1040, 1.04), 1.0);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].path, "latency_s.n");
    }

    #[test]
    fn wall_clock_measurements_are_ignored() {
        let golden = Json::obj().field("measured_mbps", 1000.0);
        let fresh = Json::obj().field("measured_mbps", 250.0);
        assert!(diff(&golden, &fresh, 1.0).is_empty());
    }

    #[test]
    fn structure_mismatches_are_breaches() {
        let golden = Json::obj().field("a", 1u64).field("b", "x");
        let missing = Json::obj().field("a", 1u64);
        let wrong_type = Json::obj().field("a", 1u64).field("b", true);
        assert_eq!(diff(&golden, &missing, 1.0).len(), 1);
        assert_eq!(diff(&golden, &wrong_type, 1.0).len(), 1);
        let short = Json::obj().field("r", vec![Json::UInt(1)]);
        let long = Json::obj().field("r", vec![Json::UInt(1), Json::UInt(2)]);
        assert_eq!(diff(&short, &long, 1.0).len(), 1);
    }

    #[test]
    fn options_round_trip_from_golden_header() {
        let golden = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 30.0)
            .field("base_seed", 0x5ea4u64)
            .field("seeds", 1u32);
        let (entry, opts) = options_of(&golden).expect("valid header");
        assert_eq!(entry.name, "fig2");
        assert_eq!(opts.duration, Some(SimDuration::from_secs(30)));
        assert_eq!(opts.seed, 0x5ea4);
        assert_eq!(opts.seeds, 1);
        assert!(options_of(&Json::obj().field("experiment", "nope")).is_err());
        // Corrupt replicate counts must error, not panic downstream.
        let zero_seeds = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 30.0)
            .field("base_seed", 1u64)
            .field("seeds", 0u64);
        assert!(options_of(&zero_seeds).is_err());
        // A zero (or negative, or NaN-parsed-as-null) duration would
        // re-run a rate-less experiment; reject it at load time.
        for bad in [0.0, -5.0] {
            let doc = Json::obj()
                .field("experiment", "fig2")
                .field("duration_s", bad)
                .field("base_seed", 1u64)
                .field("seeds", 1u64);
            let err = options_of(&doc).err().expect("zero duration accepted");
            assert!(err.contains("positive"), "got: {err}");
        }
    }

    #[test]
    fn replica_overrides_round_trip_from_golden_header() {
        let golden = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 10.0)
            .field("base_seed", 0x5ea4u64)
            .field("seeds", 1u32)
            .field("thinners_override", 4u64)
            .field("sync_period_override_ms", 10u64);
        let (_, opts) = options_of(&golden).expect("valid header");
        assert_eq!(opts.thinners, Some(4));
        assert_eq!(opts.sync_period, Some(SimDuration::from_millis(10)));
        // Absent overrides stay unset (the classic header shape).
        let plain = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 10.0)
            .field("base_seed", 1u64)
            .field("seeds", 1u32);
        let (_, opts) = options_of(&plain).expect("valid header");
        assert_eq!(opts.thinners, None);
        assert_eq!(opts.sync_period, None);
        // Corrupt overrides error instead of silently re-running the
        // wrong configuration against the golden.
        for (k, v) in [
            ("thinners_override", 0u64),
            ("sync_period_override_ms", 0u64),
            ("thinners_override", u64::from(u32::MAX) + 1),
            ("sync_period_override_ms", u64::MAX / 2),
        ] {
            let doc = Json::obj()
                .field("experiment", "fig2")
                .field("duration_s", 10.0)
                .field("base_seed", 1u64)
                .field("seeds", 1u32)
                .field(k, v);
            let err = options_of(&doc).err().unwrap_or_else(|| {
                panic!("corrupt {k} = {v} accepted");
            });
            assert!(err.contains(k), "got: {err}");
        }
    }

    #[test]
    fn checked_metrics_count_only_payload_leaves() {
        // Header echoes alone count for nothing...
        let header_only = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 10.0)
            .field("base_seed", 1u64)
            .field("seeds", 1u32);
        assert_eq!(checked_metric_count(&header_only), 0);
        // ...as does a structurally present but empty runs array...
        let empty_runs = header_only.clone().field("runs", Vec::<Json>::new());
        assert_eq!(checked_metric_count(&empty_runs), 0);
        // ...or runs whose members carry only unchecked (wall-clock)
        // numbers.
        let perf_only = header_only.clone().field(
            "runs",
            vec![Json::obj().field("payment_sink", Json::obj().field("measured_mbps", 612.5))],
        );
        assert_eq!(checked_metric_count(&perf_only), 0);
        // A real metric in any payload section counts.
        let with_metric = header_only.clone().field(
            "runs",
            vec![Json::obj().field("allocation", Json::obj().field("good", 140u64))],
        );
        assert_eq!(checked_metric_count(&with_metric), 1);
        let with_fairness = header_only
            .clone()
            .field("fairness", Json::obj().field("band", 0.05));
        assert_eq!(checked_metric_count(&with_fairness), 1);
        // The failover section is a payload too: a fault golden whose
        // runs were stripped must still be caught as checkable-or-reject.
        let with_failover = header_only.field(
            "failover",
            Json::obj().field(
                "runs",
                vec![Json::obj().field("outage_good_fraction", 0.48)],
            ),
        );
        assert_eq!(checked_metric_count(&with_failover), 1);
    }

    #[test]
    fn failover_timing_uses_a_wider_band_than_fairness() {
        // Failover detection is quantized by the sync cadence, so the
        // timing rule admits drift that would fail every fairness band.
        let golden = Json::obj().field("time_to_failover_s", 1.0);
        let close = Json::obj().field("time_to_failover_s", 1.4);
        let far = Json::obj().field("time_to_failover_s", 2.0);
        assert!(diff(&golden, &close, 1.0).is_empty());
        assert_eq!(diff(&golden, &far, 1.0).len(), 1);
        // Recovery timing shares the rule via the "time_to_" prefix.
        let golden = Json::obj().field("time_to_recovery_s", 0.1);
        let close = Json::obj().field("time_to_recovery_s", 0.3);
        assert!(diff(&golden, &close, 1.0).is_empty());
    }

    #[test]
    fn outage_share_band_is_wider_than_fairness_but_still_absolute() {
        let golden = Json::obj().field("outage_good_fraction", 0.50);
        // 0.03 off: inside the ±0.04 outage band, but outside the ±0.02
        // the generic "fraction" rule would impose — proving the more
        // specific rule matches first.
        let close = Json::obj().field("outage_good_fraction", 0.53);
        let far = Json::obj().field("outage_good_fraction", 0.56);
        assert!(diff(&golden, &close, 1.0).is_empty());
        assert_eq!(diff(&golden, &far, 1.0).len(), 1);
        // A timing event that vanished (null vs number) is structure
        // drift, not numeric drift — always reported.
        let golden = Json::obj().field("time_to_failover_s", 0.5);
        let gone = Json::obj().field("time_to_failover_s", Json::Null);
        assert_eq!(diff(&golden, &gone, 1.0).len(), 1);
    }

    #[test]
    fn fault_overrides_round_trip_from_golden_header() {
        let faults = vec![
            FaultSpec::ReplicaCrash {
                replica: 1,
                at: SimTime::from_secs(15),
                down_for: SimDuration::from_secs(10),
            },
            FaultSpec::LinkFlaps {
                seed: 9,
                mean_every: SimDuration::from_secs(10),
                mean_down: SimDuration::from_millis(200),
            },
        ];
        let golden = Json::obj()
            .field("experiment", "fig2_faults")
            .field("duration_s", 60.0)
            .field("base_seed", 0x5ea4u64)
            .field("seeds", 1u32)
            .field(
                "faults_override",
                faults
                    .iter()
                    .map(crate::driver::fault_json)
                    .collect::<Vec<_>>(),
            );
        let (entry, opts) = options_of(&golden).expect("valid fault header");
        assert_eq!(entry.name, "fig2_faults");
        assert_eq!(opts.faults, faults);
        // Absent override: no faults (every pre-fault golden).
        let plain = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 10.0)
            .field("base_seed", 1u64)
            .field("seeds", 1u32);
        let (_, opts) = options_of(&plain).expect("valid header");
        assert!(opts.faults.is_empty());
        // Corrupt shapes error instead of silently re-running fault-free.
        for bad in [
            Json::Str("replica=1@15+10".to_string()),
            Json::Arr(vec![Json::obj().field("kind", "meteor_strike")]),
            Json::Arr(vec![Json::obj()
                .field("kind", "replica_crash")
                .field("replica", 1u64)]),
        ] {
            let doc = Json::obj()
                .field("experiment", "fig2")
                .field("duration_s", 10.0)
                .field("base_seed", 1u64)
                .field("seeds", 1u32)
                .field("faults_override", bad);
            assert!(
                options_of(&doc).is_err(),
                "corrupt faults_override accepted"
            );
        }
    }

    #[test]
    fn compare_rejects_a_golden_with_no_checked_metrics() {
        // A golden reduced to its header (e.g. a bad merge or a
        // truncated regeneration) must be a hard error: it would diff
        // clean against any fresh run and rot silently. The check runs
        // before the re-run, so this test never executes a simulation.
        let doc = Json::obj()
            .field("experiment", "fig2")
            .field("duration_s", 10.0)
            .field("base_seed", 0x5ea4u64)
            .field("seeds", 1u32)
            .field("runs", Vec::<Json>::new());
        let path = std::env::temp_dir().join("speakup_empty_golden_test.json");
        std::fs::write(&path, doc.pretty()).expect("write temp golden");
        let mut out = Vec::new();
        let mut progress = Vec::new();
        let err = compare_file(
            path.to_str().expect("utf-8 temp path"),
            1.0,
            None,
            1,
            &mut out,
            &mut progress,
        )
        .expect_err("header-only golden accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("no checked metrics"), "got: {msg}");
        assert!(msg.contains("regenerate"), "got: {msg}");
        std::fs::remove_file(&path).ok();
    }
}
