//! Tiny argument parsing shared by the `fig*` binaries: `--secs N`,
//! `--seed N`, with the paper's defaults.

use speakup_net::time::SimDuration;

/// Common experiment options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Simulated duration (paper: 600 s).
    pub duration: SimDuration,
    /// Base RNG seed.
    pub seed: u64,
}

impl Options {
    /// Parse `--secs N` and `--seed N` from `std::env::args`, with the
    /// given default duration.
    pub fn from_args(default_secs: u64) -> Options {
        let args: Vec<String> = std::env::args().collect();
        let mut duration = SimDuration::from_secs(default_secs);
        let mut seed = 0x5ea4;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--secs" => {
                    let v = args
                        .get(i + 1)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| usage());
                    duration = SimDuration::from_secs(v);
                    i += 2;
                }
                "--seed" => {
                    let v = args
                        .get(i + 1)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| usage());
                    seed = v;
                    i += 2;
                }
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown argument: {other}");
                    usage()
                }
            }
        }
        Options { duration, seed }
    }
}

fn usage() -> ! {
    eprintln!("usage: <bin> [--secs N] [--seed N]");
    std::process::exit(2)
}
