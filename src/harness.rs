//! The harness package has no library of its own: it exists to own the
//! workspace-level integration tests (`tests/`) and examples
//! (`examples/`), which exercise every crate together.
#![forbid(unsafe_code)]
