//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a cargo registry, so
//! the workspace vendors the subset of proptest its property tests use:
//! the [`proptest!`] macro, integer/float range strategies, tuples,
//! [`collection::vec`], [`Strategy`] and `any::<T>()`, plus the
//! `prop_assert*` family. Generation is deterministic (seeded from the
//! test name) and there is **no shrinking** — a failing case panics with
//! the case number so it can be replayed. Swap the workspace dependency
//! back to crates.io `proptest = "1"` when a registry is reachable.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Run configuration: how many random cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob the stub supports).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the property name.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift: adequate uniformity for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The stub has no shrinking: `generate` is all there is.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// Strategy producing any value of a primitive type.
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the full range of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` of `elem`-generated values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Re-exports matching `proptest::prelude::*` for the supported subset.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Mirror of `proptest::test_runner` for the pieces the macro touches.
pub mod test_runner {
    pub use crate::{ProptestConfig as Config, TestRng};
}

/// Define property tests. Supports the real macro's common form:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are `pat in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let __ran = std::panic::AssertUnwindSafe(|| {
                        $crate::__proptest_case!(__rng; $body; $($args)*);
                    });
                    if let Err(payload) = std::panic::catch_unwind(__ran) {
                        eprintln!(
                            "proptest stub: property {} failed at case {}/{}",
                            stringify!($name), __case + 1, __cfg.cases,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: bind one `pat in strategy`
/// argument at a time, then run the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; $body:block;) => { $body };
    ($rng:ident; $body:block; $x:pat in $s:expr) => {{
        let $x = $crate::Strategy::generate(&($s), &mut $rng);
        $body
    }};
    ($rng:ident; $body:block; $x:pat in $s:expr, $($rest:tt)*) => {{
        let $x = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_case!($rng; $body; $($rest)*)
    }};
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// The stub counts a skipped case as run.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vecs_obey_length(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_mut_bindings(
            (a, b) in (0u32..5, 10u32..20),
            mut v in crate::collection::vec(0usize..100, 0..4),
        ) {
            prop_assert!(a < 5 && (10..20).contains(&b));
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
