//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to a cargo registry, so
//! the workspace vendors the narrow subset of `bytes` it actually uses:
//! [`Bytes`] (an immutable, cheaply clonable byte buffer) and
//! [`BytesMut`] (a growable buffer with front consumption via
//! [`BytesMut::split_to`]). Semantics match the real crate for this
//! subset; swap the workspace dependency back to crates.io `bytes = "1"`
//! when a registry is reachable and nothing else changes.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable byte buffer; clones share the underlying allocation.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Split off and return the first `at` bytes, sharing the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", self.escape_ascii())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that supports consuming from the front.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    /// Bytes live at `data[start..]`; `start` advances on `split_to` and
    /// the prefix is reclaimed opportunistically.
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes at the back.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.reclaim();
        self.data.extend_from_slice(src);
    }

    /// Remove and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        self.reclaim();
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.reclaim_now();
        Bytes::from(self.data)
    }

    /// Copy the contents out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Drop the consumed prefix once it dominates the allocation, keeping
    /// `split_to` amortized O(1) per byte.
    fn reclaim(&mut self) {
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.reclaim_now();
        }
    }

    fn reclaim_now(&mut self) {
        if self.start > 0 {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            data: v.to_vec(),
            start: 0,
        }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", self.as_slice().escape_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_consumes_front() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        b.extend_from_slice(b"!");
        assert_eq!(&b[..], b" world!");
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut b = BytesMut::with_capacity(16);
        b.extend_from_slice(b"abc");
        let _ = b.split_to(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"bc");
        let clone = frozen.clone();
        assert_eq!(&clone[..], b"bc");
    }

    #[test]
    fn bytes_split_to_shares() {
        let mut b = Bytes::from(b"abcdef".to_vec());
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn reclaim_keeps_contents() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![7u8; 10_000]);
        let _ = b.split_to(9_000);
        b.extend_from_slice(b"tail");
        assert_eq!(b.len(), 1_004);
        assert_eq!(&b[1_000..], b"tail");
    }
}
